"""Resource-sharing analysis (paper Section 7, outlook).

The paper's Longnail "constructs fully spatial data paths" but is designed
to grow resource sharing "both within instructions itself and across
instruction boundaries", with "automated design space exploration ... to
provide multiple trade-off points" between area and performance.  This
module implements that analysis on scheduled modules:

* **within an instruction** — operator instances of the same kind and shape
  that execute in *different* time steps can time-multiplex one physical
  unit.  The floor is the maximum number of simultaneously active instances
  in any step; sharing below an initiation interval (II) of 1 additionally
  trades throughput (the unit is busy for several cycles per instruction).
* **across instructions** — instructions of one ISAX are issued one at a
  time in the MCU-class hosts, so same-shaped units in *different*
  instruction modules can also be pooled (the paper's packed-SIMD example).

The result is an area/II trade-off curve; the spatial point (II = 1, no
sharing) is what the generator currently emits, the other points are the
design-space the paper's outlook describes.  Sharing adds input-mux and
control overhead, which the estimate charges using the technology library.
"""

from __future__ import annotations

import dataclasses
import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.dialects.hw import HWModule
from repro.eval.tech import TechLibrary
from repro.hls.longnail import FunctionalityArtifact, IsaxArtifact
from repro.ir.core import Operation

#: Operation kinds worth sharing: real arithmetic operators.  Wiring, muxes
#: and bitwise gates are cheaper than the sharing muxes they would need.
SHAREABLE_OPS = (
    "comb.add", "comb.sub", "comb.mul",
    "comb.divu", "comb.divs", "comb.modu", "comb.mods",
    "comb.icmp",
)


def _shape_of(op: Operation) -> Tuple:
    """Grouping key: operator kind plus its operand/result widths (two
    differently-sized adders cannot share a unit)."""
    widths = tuple(o.width for o in op.operands)
    mul_widths = op.attr("op_widths")
    if mul_widths:
        widths = tuple(mul_widths)
    result = op.results[0].width if op.results else 0
    return (op.name, widths, result)


@dataclasses.dataclass
class OperatorGroup:
    """All instances of one operator shape inside one scheduled module."""

    kind: str
    shape: Tuple
    instances: int
    per_step: Dict[int, int]
    unit_area: float
    input_bits: int

    @property
    def max_concurrent(self) -> int:
        return max(self.per_step.values(), default=0)

    def units_needed(self, initiation_interval: int) -> int:
        """Physical units needed when each step's work may be spread over
        ``initiation_interval`` cycles."""
        per_window = self.max_concurrent
        if initiation_interval > 1:
            per_window = math.ceil(self.max_concurrent / initiation_interval)
        return max(1, per_window) if self.instances else 0

    def shared_area(self, initiation_interval: int,
                    tech: TechLibrary) -> float:
        """Unit area plus the input muxes steering operands to the shared
        units."""
        units = self.units_needed(initiation_interval)
        if units == 0:
            return 0.0
        area = units * self.unit_area
        ways = math.ceil(self.instances / units)
        if ways > 1:
            mux_per_bit = tech.glue_area_per_bit["mux"]
            area += (ways - 1) * self.input_bits * mux_per_bit
        return area

    @property
    def spatial_area(self) -> float:
        return self.instances * self.unit_area


@dataclasses.dataclass
class SharingPoint:
    """One point of the area/performance trade-off curve."""

    initiation_interval: int
    area_um2: float
    units: Dict[str, int]
    controller_area_um2: float

    @property
    def total_area_um2(self) -> float:
        return self.area_um2 + self.controller_area_um2


@dataclasses.dataclass
class SharingReport:
    """Sharing analysis of one module (or a pooled set of modules)."""

    name: str
    groups: List[OperatorGroup]
    points: List[SharingPoint]
    other_area_um2: float

    @property
    def spatial_point(self) -> SharingPoint:
        return self.points[0]

    def point(self, initiation_interval: int) -> SharingPoint:
        for candidate in self.points:
            if candidate.initiation_interval == initiation_interval:
                return candidate
        raise KeyError(f"no II={initiation_interval} point computed")

    def saving_pct(self, initiation_interval: int) -> float:
        """Datapath area saved vs the fully spatial design."""
        spatial = self.spatial_point.total_area_um2 + self.other_area_um2
        shared = (self.point(initiation_interval).total_area_um2
                  + self.other_area_um2)
        if spatial <= 0:
            return 0.0
        return 100.0 * (1.0 - shared / spatial)

    def best_point(self) -> SharingPoint:
        return min(self.points, key=lambda p: p.total_area_um2)


def _collect_groups(views: List[Tuple[object, Dict[Operation, int]]],
                    tech: TechLibrary) -> Tuple[List[OperatorGroup], float]:
    """Group the scheduled shareable operators of the given
    (graph, op -> time step) views by shape."""
    grouped: Dict[Tuple, Dict] = {}
    for _graph, steps in views:
        for op, step in steps.items():
            key = _shape_of(op)
            entry = grouped.setdefault(
                key, {"instances": 0, "per_step": defaultdict(int),
                      "area": tech.area_um2(op),
                      "input_bits": sum(o.width for o in op.operands)},
            )
            entry["instances"] += 1
            entry["per_step"][step] += 1
    groups = [
        OperatorGroup(
            kind=key[0], shape=key, instances=entry["instances"],
            per_step=dict(entry["per_step"]), unit_area=entry["area"],
            input_bits=entry["input_bits"],
        )
        for key, entry in grouped.items()
    ]
    groups.sort(key=lambda g: -g.spatial_area)
    return groups, 0.0


def _controller_area(groups: List[OperatorGroup], initiation_interval: int,
                     tech: TechLibrary) -> float:
    """ISAX-local controller for multiplexing shared datapaths (Section 7:
    'Longnail will then also infer ISAX-local controller circuits')."""
    if initiation_interval <= 1:
        return 0.0
    shared_groups = sum(
        1 for g in groups if g.units_needed(initiation_interval) < g.instances
    )
    if not shared_groups:
        return 0.0
    counter_bits = max(1, math.ceil(math.log2(initiation_interval + 1)))
    storage = tech.glue_area_per_bit["storage"]
    return counter_bits * storage + shared_groups * 4 * tech.gate_area * 8


def _functionality_view(functionality: FunctionalityArtifact,
                        tech: TechLibrary) -> Tuple[
                            "HWModule", Dict[Operation, int], float]:
    """(scheduled shareable ops + stages, other area) for one module.

    Shareable operators appear exactly once in the scheduled lil graph and
    once in the generated module (hardware generation never duplicates or
    removes them), so the graph carries both their stage and their shape;
    the rest of the module (wiring, muxes, pipeline registers, ROMs) is
    accounted as non-shareable area.
    """
    steps = {
        op: functionality.schedule.stage_of(op)
        for op in functionality.graph.operations
        if op.name in SHAREABLE_OPS
    }
    shareable_area = sum(tech.area_um2(op) for op in steps)
    module_area_total = sum(
        tech.area_um2(op) for op in functionality.module.body.operations
    )
    other = max(0.0, module_area_total - shareable_area)
    return functionality.graph, steps, other  # type: ignore[return-value]


def analyze_functionality(functionality: FunctionalityArtifact,
                          tech: Optional[TechLibrary] = None,
                          max_ii: int = 8) -> SharingReport:
    """Within-instruction sharing trade-off for one scheduled module."""
    tech = tech or TechLibrary()
    graph, steps, other = _functionality_view(functionality, tech)
    groups, _ = _collect_groups([(graph, steps)], tech)
    points = _tradeoff(groups, tech, max_ii)
    return SharingReport(functionality.name, groups, points, other)


def analyze_isax(artifact: IsaxArtifact,
                 tech: Optional[TechLibrary] = None,
                 max_ii: int = 8) -> SharingReport:
    """Cross-instruction sharing: pool same-shaped units over all
    instruction modules of one ISAX (instructions issue one at a time on
    the MCU-class hosts, Section 7's packed-SIMD argument)."""
    tech = tech or TechLibrary()
    views = []
    other_total = 0.0
    for functionality in artifact.functionalities.values():
        if functionality.kind != "instruction":
            continue
        graph, steps, other = _functionality_view(functionality, tech)
        views.append((graph, steps))
        other_total += other
    groups, _ = _collect_groups(views, tech)
    points = _tradeoff(groups, tech, max_ii)
    return SharingReport(artifact.name, groups, points, other_total)


def _tradeoff(groups: List[OperatorGroup], tech: TechLibrary,
              max_ii: int) -> List[SharingPoint]:
    points = []
    for initiation_interval in range(1, max_ii + 1):
        if initiation_interval == 1:
            area = sum(g.spatial_area for g in groups)
            units = {g.kind: g.instances for g in groups}
            controller = 0.0
        else:
            area = sum(g.shared_area(initiation_interval, tech)
                       for g in groups)
            units = {g.kind: g.units_needed(initiation_interval)
                     for g in groups}
            controller = _controller_area(groups, initiation_interval, tech)
        points.append(SharingPoint(
            initiation_interval=initiation_interval,
            area_um2=area, units=units, controller_area_um2=controller,
        ))
    return points


def shared_unit_assignments(artifact: IsaxArtifact) -> Dict[str, List[Tuple[str, str]]]:
    """Cross-ISAX unit assignments written by the optimizer's ``share``
    pass (:func:`repro.opt.share.pool_cross_isax`).

    Returns ``unit id -> [(functionality, op kind), ...]``: every entry
    with more than one functionality is a physical unit time-shared across
    mutually exclusive instructions.  Empty when the artifact was compiled
    without the ``share`` pass.
    """
    assignments: Dict[str, List[Tuple[str, str]]] = {}
    for name, functionality in artifact.functionalities.items():
        for op in functionality.graph.operations:
            unit = op.attr("shared_unit")
            if unit is not None:
                assignments.setdefault(unit, []).append((name, op.name))
    return {unit: sorted(users) for unit, users in
            sorted(assignments.items())}


def render_tradeoff(report: SharingReport) -> str:
    """Human-readable area/II curve for one report."""
    lines = [f"resource-sharing trade-off for '{report.name}' "
             f"(non-shareable datapath: {report.other_area_um2:.0f} um2)"]
    lines.append(f"{'II':>4} {'datapath um2':>13} {'ctrl um2':>9} "
                 f"{'saving':>8}  units")
    for point in report.points:
        units = ", ".join(f"{k.split('.')[1]}x{v}"
                          for k, v in sorted(point.units.items()))
        lines.append(
            f"{point.initiation_interval:>4} {point.area_um2:>13.0f} "
            f"{point.controller_area_um2:>9.0f} "
            f"{report.saving_pct(point.initiation_interval):>7.1f}%  {units}"
        )
    return "\n".join(lines)
