"""SystemVerilog export for hw modules (paper Section 4.1d / Figure 5d).

Emits idiomatic, synthesizable SystemVerilog: one module per ISAX
instruction/always-block, combinational logic as ``assign`` statements,
stallable pipeline registers as ``always_ff`` processes gated by the
per-stage stall inputs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dialects.hw import HWModule
from repro.ir.core import IRError, Operation, Value

_BINARY_SV = {
    "comb.add": "+", "comb.sub": "-", "comb.mul": "*",
    "comb.divu": "/", "comb.modu": "%",
    "comb.and": "&", "comb.or": "|", "comb.xor": "^",
    "comb.shl": "<<", "comb.shru": ">>",
}

_ICMP_SV = {
    "eq": "==", "ne": "!=",
    "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
    "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
}


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


class _VerilogPrinter:
    def __init__(self, module: HWModule):
        self.module = module
        self.names: Dict[Value, str] = {}
        self.counter = 0
        self.decls: List[str] = []
        self.assigns: List[str] = []
        self.registers: List[str] = []
        self.localparams: List[str] = []

    def name_of(self, value: Value) -> str:
        name = self.names.get(value)
        if name is None:
            self.counter += 1
            name = f"w{self.counter}"
            self.names[value] = name
            self.decls.append(f"  logic {_width_decl(value.width)}{name};")
        return name

    def expr(self, op: Operation) -> str:
        name = op.name
        operands = [self.name_of(o) for o in op.operands]
        width = op.results[0].width if op.results else 0
        if name in _BINARY_SV:
            return f"{operands[0]} {_BINARY_SV[name]} {operands[1]}"
        if name == "comb.divs":
            return f"$signed({operands[0]}) / $signed({operands[1]})"
        if name == "comb.mods":
            return f"$signed({operands[0]}) % $signed({operands[1]})"
        if name == "comb.shrs":
            return f"$signed({operands[0]}) >>> {operands[1]}"
        if name == "comb.not":
            return f"~{operands[0]}"
        if name == "comb.icmp":
            pred = op.attr("predicate")
            sv_op = _ICMP_SV[pred]
            if pred.startswith("s"):
                return (f"$signed({operands[0]}) {sv_op} "
                        f"$signed({operands[1]})")
            return f"{operands[0]} {sv_op} {operands[1]}"
        if name == "comb.mux":
            return f"{operands[0]} ? {operands[1]} : {operands[2]}"
        if name == "comb.extract":
            low = op.attr("low")
            high = low + width - 1
            if op.operands[0].width == 1 and low == 0:
                return operands[0]
            if high == low:
                return f"{operands[0]}[{low}]"
            return f"{operands[0]}[{high}:{low}]"
        if name == "comb.concat":
            return "{" + ", ".join(operands) + "}"
        if name == "comb.replicate":
            times = width // op.operands[0].width
            return "{" + f"{{{times}{{{operands[0]}}}}}" + "}"
        if name == "comb.constant":
            return f"{width}'d{op.attr('value')}"
        raise IRError(f"no SystemVerilog lowering for '{name}'")

    def emit(self) -> str:
        module = self.module
        has_registers = bool(module.registers())
        port_lines: List[str] = []
        if has_registers:
            port_lines.append("  input  logic clk")
            port_lines.append("  input  logic rst")
        # Pre-name input ports.
        for op in module.body.topological_order():
            if op.name == "hw.input":
                port = module.port(op.attr("name"))
                self.names[op.result] = port.name
                port_lines.append(
                    f"  input  logic {_width_decl(port.width)}{port.name}"
                )
        for port in module.outputs:
            port_lines.append(
                f"  output logic {_width_decl(port.width)}{port.name}"
            )

        for op in module.body.topological_order():
            if op.name == "hw.input":
                continue
            if op.name == "hw.output":
                self.assigns.append(
                    f"  assign {op.attr('name')} = "
                    f"{self.name_of(op.operands[0])};"
                )
                continue
            if op.name == "seq.compreg":
                reg_name = _sanitize(op.attr("name"))
                self.names[op.result] = reg_name
                self.decls.append(
                    f"  logic {_width_decl(op.result.width)}{reg_name};"
                )
                data = self.name_of(op.operands[0])
                if len(op.operands) == 2:
                    enable = self.name_of(op.operands[1])
                    self.registers.append(
                        f"  always_ff @(posedge clk)\n"
                        f"    {reg_name} <= {enable} ? {data} : {reg_name};"
                    )
                else:
                    self.registers.append(
                        f"  always_ff @(posedge clk)\n"
                        f"    {reg_name} <= {data};"
                    )
                continue
            if op.name == "comb.rom":
                rom_name = f"rom_{_sanitize(op.attr('name') or 'table')}"
                values = op.attr("values")
                width = op.results[0].width
                items = ", ".join(f"{width}'d{v}" for v in values)
                self.localparams.append(
                    f"  localparam logic {_width_decl(width)}{rom_name} "
                    f"[0:{len(values) - 1}] = '{{{items}}};"
                )
                result = self.name_of(op.results[0])
                index = self.name_of(op.operands[0])
                self.assigns.append(f"  assign {result} = {rom_name}[{index}];")
                continue
            result = self.name_of(op.results[0])
            self.assigns.append(f"  assign {result} = {self.expr(op)};")

        lines = [f"module {_sanitize(module.name)}("]
        lines.append(",\n".join(port_lines))
        lines.append(");")
        lines.extend(self.localparams)
        lines.extend(self.decls)
        lines.extend(self.assigns)
        lines.extend(self.registers)
        lines.append("endmodule")
        return "\n".join(lines) + "\n"


def _width_decl(width: int) -> str:
    return "" if width == 1 else f"[{width - 1}:0] "


def emit_module(module: HWModule) -> str:
    """Emit one hw module as SystemVerilog text."""
    return _VerilogPrinter(module).emit()


def emit_modules(modules: List[HWModule]) -> str:
    """Emit several modules into one compilation unit."""
    return "\n".join(emit_module(m) for m in modules)
