"""Longnail: the domain-specific HLS flow (paper Section 4).

End-to-end driver: CoreDSL text -> elaborated ISA -> coredsl IR -> lil CDFG
-> scheduled problem -> pipelined hardware module -> SystemVerilog +
SCAIE-V configuration file.
"""

from repro.hls.longnail import IsaxArtifact, compile_isax, compile_isax_set
from repro.hls.hwgen import generate_module
from repro.hls.sharing import SharingReport, analyze_functionality, analyze_isax
from repro.hls.verilog import emit_module, emit_modules

__all__ = [
    "IsaxArtifact",
    "compile_isax",
    "compile_isax_set",
    "generate_module",
    "SharingReport",
    "analyze_functionality",
    "analyze_isax",
    "emit_module",
    "emit_modules",
]
