"""Hardware generation: scheduled lil graph -> pipelined hw module
(paper Section 4.5).

For each lil graph Longnail constructs an individual hardware module in
which the graph's interface operations become input/output ports, with
numerical suffixes indicating the stage each port is active in (Figure 5d).
Stallable pipeline registers for intermediate results are inserted into the
data path where needed.  No controller circuit is inferred: the
SCAIE-V-generated logic tracks the progress of custom instructions in the
pipeline and commits their results at the appropriate time.
"""

from __future__ import annotations

from typing import Dict

from repro.dialects import lil
from repro.dialects.hw import HWModule
from repro.ir.core import Graph, IRError, Operation, Value
from repro.scheduling.scheduler import ScheduleResult


class _ValueInfo:
    """Tracks one SSA value across pipeline stages."""

    def __init__(self, value: Value, avail_stage: int, is_constant: bool):
        self.at_stage: Dict[int, Value] = {avail_stage: value}
        self.avail_stage = avail_stage
        self.is_constant = is_constant

    def base(self) -> Value:
        return self.at_stage[self.avail_stage]


class _Recipe:
    """A wiring-only operation (extract/concat/replicate) that is
    re-materialized in whatever stage its consumers live, so only its
    (narrower) source operands are piped across cycle boundaries."""

    def __init__(self, op: Operation):
        self.op = op
        self.instances: Dict[int, Value] = {}


#: Zero-cost operations that are pure wiring in hardware.
_FREE_OPS = ("comb.extract", "comb.concat", "comb.replicate")


class _ModuleBuilder:
    def __init__(self, graph: Graph, schedule: ScheduleResult):
        self.graph = graph
        self.schedule = schedule
        self.module = HWModule(graph.name)
        self.values: Dict[Value, _ValueInfo] = {}
        self.recipes: Dict[Value, _Recipe] = {}
        self.stall_inputs: Dict[int, Value] = {}
        self.enables: Dict[int, Value] = {}
        self.reg_counter = 0

    # ------------------------------------------------------------- plumbing
    def _append(self, name: str, operands, result_types, attrs=None) -> Operation:
        op = Operation(name, operands, result_types, attrs or {})
        self.module.body.append(op)
        return op

    def enable_for(self, stage: int) -> Value:
        """Register enable between ``stage`` and ``stage+1``: not stalled."""
        enable = self.enables.get(stage)
        if enable is not None:
            return enable
        stall = self.module.add_input(f"stall_in_{stage}", 1, stage=stage,
                                      role="stall")
        enable = self._append("comb.not", [stall], [(1, None)]).result
        self.stall_inputs[stage] = stall
        self.enables[stage] = enable
        return enable

    def pipe_to(self, info: _ValueInfo, stage: int) -> Value:
        """Return ``info``'s value as seen in ``stage``, inserting stallable
        pipeline registers across each crossed cycle boundary."""
        if info.is_constant:
            return info.base()
        if stage < info.avail_stage:
            raise IRError(
                f"module '{self.module.name}': value consumed in stage "
                f"{stage} before it is available in stage {info.avail_stage}"
            )
        cached = info.at_stage.get(stage)
        if cached is not None:
            return cached
        previous = self.pipe_to(info, stage - 1)
        enable = self.enable_for(stage - 1)
        self.reg_counter += 1
        reg = self._append(
            "seq.compreg", [previous, enable], [(previous.width, None)],
            {"name": f"pipe_{self.reg_counter}_{stage}"},
        ).result
        info.at_stage[stage] = reg
        return reg

    def operand_at(self, operand: Value, stage: int) -> Value:
        recipe = self.recipes.get(operand)
        if recipe is not None:
            return self.materialize(recipe, stage)
        info = self.values.get(operand)
        if info is None:
            raise IRError("operand has no recorded value info")
        return self.pipe_to(info, stage)

    def materialize(self, recipe: _Recipe, stage: int) -> Value:
        cached = recipe.instances.get(stage)
        if cached is not None:
            return cached
        operands = [self.operand_at(o, stage) for o in recipe.op.operands]
        new = self._append(
            recipe.op.name, operands,
            [(r.width, None) for r in recipe.op.results],
            dict(recipe.op.attributes),
        )
        recipe.instances[stage] = new.result
        return new.result

    def record(self, old: Value, new: Value, avail_stage: int,
               is_constant: bool = False) -> None:
        self.values[old] = _ValueInfo(new, avail_stage, is_constant)

    # ---------------------------------------------------------- conversion
    def convert(self) -> HWModule:
        order = self.graph.topological_order()
        for op in order:
            if op.name == "lil.sink":
                continue
            stage = self.schedule.stage_of(op)
            if lil.is_interface_op(op):
                self.convert_interface(op, stage)
            elif op.name == "comb.constant":
                new = self._append(
                    "comb.constant", [], [(op.result.width, None)],
                    dict(op.attributes),
                )
                self.record(op.result, new.result, stage, is_constant=True)
            elif op.name in _FREE_OPS:
                # Pure wiring: re-materialize per consuming stage so only
                # the source operands are registered across boundaries.
                self.recipes[op.result] = _Recipe(op)
            elif op.name == "lil.rom":
                index = self.operand_at(op.operands[0], stage)
                rom_attrs = {"values": op.attr("values"),
                             "name": op.attr("reg")}
                if op.attr("shared_unit") is not None:
                    rom_attrs["shared_unit"] = op.attr("shared_unit")
                new = self._append(
                    "comb.rom", [index], [(op.result.width, None)],
                    rom_attrs,
                )
                self.record(op.result, new.result, stage)
            else:
                operands = [self.operand_at(o, stage) for o in op.operands]
                new = self._append(
                    op.name, operands,
                    [(r.width, None) for r in op.results],
                    dict(op.attributes),
                )
                for old, fresh in zip(op.results, new.results):
                    self.record(old, fresh, stage)
        self.module.attributes["makespan"] = self.schedule.makespan
        self.module.attributes["pipeline_registers"] = self.reg_counter
        self.module.verify()
        return self.module

    def convert_interface(self, op: Operation, stage: int) -> None:
        name = op.name
        if name == "lil.instr_word":
            value = self.module.add_input(
                f"instr_word_{stage}", 32, stage=stage, role="RdInstr"
            )
            self.record(op.result, value, stage)
        elif name in ("lil.read_rs1", "lil.read_rs2", "lil.read_pc"):
            port = {"lil.read_rs1": "rs1_data", "lil.read_rs2": "rs2_data",
                    "lil.read_pc": "pc_data"}[name]
            role = lil.INTERFACE_OF[name]
            value = self.module.add_input(
                f"{port}_{stage}", 32, stage=stage, role=role
            )
            self.record(op.result, value, stage)
        elif name == "lil.read_mem":
            addr = self.operand_at(op.operands[0], stage)
            pred = self.operand_at(op.operands[1], stage)
            self.module.add_output(f"mem_raddr_{stage}", addr, stage=stage,
                                   role="RdMem")
            self.module.add_output(f"mem_rvalid_{stage}", pred, stage=stage,
                                   role="RdMem")
            latency = self.schedule.problem.linked_operator_type(op).latency
            avail = stage + latency
            data = self.module.add_input(
                f"mem_rdata_{avail}", op.result.width, stage=avail,
                role="RdMem",
            )
            self.record(op.result, data, avail)
        elif name == "lil.write_rd":
            value = self.operand_at(op.operands[0], stage)
            pred = self.operand_at(op.operands[1], stage)
            self.module.add_output(f"wrrd_data_{stage}", value, stage=stage,
                                   role="WrRD")
            self.module.add_output(f"wrrd_valid_{stage}", pred, stage=stage,
                                   role="WrRD")
        elif name == "lil.write_pc":
            value = self.operand_at(op.operands[0], stage)
            pred = self.operand_at(op.operands[1], stage)
            self.module.add_output(f"wrpc_data_{stage}", value, stage=stage,
                                   role="WrPC")
            self.module.add_output(f"wrpc_valid_{stage}", pred, stage=stage,
                                   role="WrPC")
        elif name == "lil.write_mem":
            addr = self.operand_at(op.operands[0], stage)
            value = self.operand_at(op.operands[1], stage)
            pred = self.operand_at(op.operands[2], stage)
            self.module.add_output(f"mem_waddr_{stage}", addr, stage=stage,
                                   role="WrMem")
            self.module.add_output(f"mem_wdata_{stage}", value, stage=stage,
                                   role="WrMem")
            self.module.add_output(f"mem_wvalid_{stage}", pred, stage=stage,
                                   role="WrMem")
        elif name == "lil.read_custreg":
            reg = op.attr("reg")
            operands = list(op.operands)
            if op.attr("has_index"):
                index = self.operand_at(operands[0], stage)
                self.module.add_output(f"rd{reg}_addr_{stage}", index,
                                       stage=stage, role=f"Rd{reg}")
            latency = self.schedule.problem.linked_operator_type(op).latency
            avail = stage + latency
            data = self.module.add_input(
                f"rd{reg}_data_{avail}", op.result.width, stage=avail,
                role=f"Rd{reg}",
            )
            self.record(op.result, data, avail)
        elif name == "lil.write_custreg":
            reg = op.attr("reg")
            operands = list(op.operands)
            cursor = 0
            if op.attr("has_index"):
                index = self.operand_at(operands[0], stage)
                self.module.add_output(f"wr{reg}_addr_{stage}", index,
                                       stage=stage, role=f"Wr{reg}.addr")
                cursor = 1
            value = self.operand_at(operands[cursor], stage)
            pred = self.operand_at(operands[cursor + 1], stage)
            self.module.add_output(f"wr{reg}_data_{stage}", value,
                                   stage=stage, role=f"Wr{reg}.data")
            self.module.add_output(f"wr{reg}_valid_{stage}", pred,
                                   stage=stage, role=f"Wr{reg}.data")
        else:  # pragma: no cover
            raise IRError(f"unhandled interface operation '{name}'")


def generate_module(graph: Graph, schedule: ScheduleResult) -> HWModule:
    """Generate the pipelined hardware module for one scheduled lil graph."""
    return _ModuleBuilder(graph, schedule).convert()
