"""The end-to-end Longnail driver (paper Figure 9).

``compile_isax`` runs the full flow for one CoreDSL InstructionSet against
one host core:

1. frontend: parse + elaborate + type-check (Section 2),
2. lower to the coredsl IR and then to lil CDFGs (Section 4.1),
3. read the core's virtual datasheet and schedule each graph (Sections
   4.2/4.3), selecting the execution mode of every interface use
   (Section 3.2 / 4.3),
4. generate the pipelined hardware modules and SystemVerilog (Section 4.5),
5. emit the SCAIE-V configuration file (Section 4.6).
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.lint import run_lints
from repro.analysis.verifier import (
    ir_verify_enabled,
    require_valid,
    verify_graph,
    verify_module,
    verify_schedule,
)
from repro.dialects import lil
from repro.dialects.hw import HWModule
from repro.frontend.elaboration import ElaboratedISA, elaborate
from repro.hls.hwgen import generate_module
from repro.hls.verilog import emit_modules
from repro.ir.core import Graph
from repro.lowering import convert_to_lil, lower_isa
from repro.opt.pipeline import OptimizerReport, OptOptions, optimize_graphs
from repro.scaiev.config import (
    Functionality,
    IsaxConfig,
    RegisterRequest,
    ScheduleEntry,
)
from repro.scaiev.cores import core_datasheet
from repro.scaiev.datasheet import VirtualDatasheet
from repro.scaiev.modes import ExecutionMode, select_mode
from repro.scheduling.scheduler import (
    DelayModel,
    LongnailScheduler,
    ScheduleResult,
)
from repro.utils.diagnostics import Diagnostic


#: Called with ``(phase, seconds)`` every time the driver finishes a chunk of
#: work in one of the :data:`PHASES`; a phase may be reported several times
#: (once per functionality) and observers are expected to accumulate.
PhaseHook = Callable[[str, float], None]

#: The compilation phases, in flow order (paper Figure 9 left-to-right).
#: ``lint`` (frontend lint rules) and ``verify`` (the IR verifier under
#: ``REPRO_IR_VERIFY=1``) are instrumentation phases of the static
#: analysis subsystem; both may report zero time when disabled.  ``opt``
#: is the CDFG optimizer pipeline (:mod:`repro.opt`), active at -O1/-O2.
PHASES = ("parse", "lint", "lower", "opt", "schedule", "hwgen", "verify",
          "emit")


@contextlib.contextmanager
def _timed(phase: str, hook: Optional[PhaseHook]) -> Iterator[None]:
    if hook is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        hook(phase, time.perf_counter() - start)


@dataclasses.dataclass
class FunctionalityArtifact:
    """Everything Longnail produced for one instruction or always-block."""

    name: str
    kind: str                       # "instruction" | "always"
    graph: Graph
    schedule: ScheduleResult
    module: HWModule
    functionality: Functionality

    @property
    def mode(self) -> ExecutionMode:
        """Overall execution mode: the 'strongest' mode of any write."""
        modes = [entry.mode for entry in self.functionality.schedule]
        for candidate in ("always", "decoupled", "tightly_coupled"):
            if candidate in modes:
                return ExecutionMode(candidate)
        return ExecutionMode.IN_PIPELINE


@dataclasses.dataclass
class IsaxArtifact:
    """The complete result of compiling one ISAX for one core."""

    isa: ElaboratedISA
    datasheet: VirtualDatasheet
    functionalities: Dict[str, FunctionalityArtifact]
    config: IsaxConfig
    #: Frontend lint findings (never fail the compile; see ``--werror`` in
    #: the CLI for a strict mode).
    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    #: Per-pass optimizer accounting (None when compiled at -O0).
    optimizer: Optional[OptimizerReport] = None

    @property
    def name(self) -> str:
        return self.isa.name

    @property
    def core_name(self) -> str:
        return self.datasheet.core_name

    @property
    def modules(self) -> List[HWModule]:
        return [f.module for f in self.functionalities.values()]

    @property
    def verilog(self) -> str:
        return emit_modules(self.modules)

    @property
    def config_yaml(self) -> str:
        return self.config.to_yaml()

    def artifact(self, name: str) -> FunctionalityArtifact:
        return self.functionalities[name]


def _schedule_entries(graph: Graph, schedule: ScheduleResult,
                      datasheet: VirtualDatasheet,
                      is_always: bool) -> List[ScheduleEntry]:
    entries: List[ScheduleEntry] = []
    for op in graph.operations:
        interface = lil.interface_name(op)
        if interface is None:
            continue
        stage = schedule.stage_of(op)
        mode = select_mode(op, stage, datasheet, in_always=is_always)
        has_valid = False
        if op.name in lil.WRITE_OPS:
            # State updates carry their predicate as an explicit valid bit;
            # mandatory for always-blocks (Section 3.2).
            has_valid = True
        if op.name == "lil.read_mem":
            has_valid = True
        if op.name == "lil.write_custreg":
            # Figure 8: writes to custom registers submit the index first
            # (Wr<NAME>.addr), then the data (Wr<NAME>.data).  For registers
            # with a single element the .addr entry only provides stage
            # information for the hazard-handling mechanism.
            entries.append(ScheduleEntry(
                interface=f"{interface}.addr", stage=stage,
                has_valid=False, mode=str(mode),
            ))
            entries.append(ScheduleEntry(
                interface=f"{interface}.data", stage=stage,
                has_valid=True, mode=str(mode),
            ))
            continue
        entries.append(ScheduleEntry(
            interface=interface, stage=stage, has_valid=has_valid,
            mode=str(mode),
        ))
    entries.sort(key=lambda e: (e.stage, e.interface))
    return entries


def compile_isax(
    source: Union[str, ElaboratedISA],
    core: Union[str, VirtualDatasheet] = "VexRiscv",
    top: Optional[str] = None,
    engine: str = "auto",
    delay_model: Optional[DelayModel] = None,
    cycle_time_ns: Optional[float] = None,
    extra_sources: Optional[Dict[str, str]] = None,
    phase_hook: Optional[PhaseHook] = None,
    schedule_cache=None,
    lint: bool = True,
    verify_ir: Optional[bool] = None,
    opt: Union[OptOptions, int, None] = None,
) -> IsaxArtifact:
    """Compile a CoreDSL description (text or elaborated ISA) for a core.

    ``phase_hook`` (if given) receives ``(phase, seconds)`` wall-time
    samples for the parse/lower/schedule/hwgen phases; the batch service
    (:mod:`repro.service`) uses it for per-phase instrumentation.
    ``schedule_cache`` is forwarded to the scheduler: a
    :class:`repro.scheduling.ScheduleCache`, ``None`` (the process-wide
    default) or ``False`` (no cross-sweep caching).

    ``lint`` runs the frontend lint rules and stores their findings as
    ``artifact.diagnostics``; lint findings never fail the compile.
    ``verify_ir`` runs the IR verifier after the lower/schedule/hwgen
    phases and raises :class:`repro.analysis.IRVerifyError` on any
    violated invariant; ``None`` defers to the ``REPRO_IR_VERIFY``
    environment variable.

    ``opt`` selects the CDFG optimizer configuration: an
    :class:`repro.opt.OptOptions`, a bare -O level int, or ``None``
    (-O0, no optimization — byte-identical to the historical flow).  The
    per-pass accounting lands on ``artifact.optimizer``; with the verifier
    enabled, every pass application is IV-checked individually.
    """
    if isinstance(source, ElaboratedISA):
        isa = source
    else:
        with _timed("parse", phase_hook):
            isa = elaborate(source, top=top, extra_sources=extra_sources)
    datasheet = core_datasheet(core) if isinstance(core, str) else core

    diagnostics: List[Diagnostic] = []
    if lint:
        with _timed("lint", phase_hook):
            diagnostics = run_lints(isa)
    verify = ir_verify_enabled() if verify_ir is None else verify_ir

    opt_options = OptOptions.coerce(opt)
    opt_pipeline = opt_options.pipeline()

    with _timed("lower", phase_hook):
        lowered = lower_isa(isa)
    scheduler = LongnailScheduler(
        datasheet, delay_model=delay_model, cycle_time_ns=cycle_time_ns,
        engine=engine, schedule_cache=schedule_cache,
        # Optimized graphs may hash to the same delay-insensitive
        # fingerprint as their unoptimized siblings only by accident; the
        # salt keeps cached schedules from crossing -O configurations.
        fingerprint_salt=opt_options.fingerprint() if opt_pipeline else "",
    )

    functionalities: Dict[str, FunctionalityArtifact] = {}
    config_functionalities: List[Functionality] = []

    def _verified(stage: str, check: Callable[[], List[Diagnostic]]) -> None:
        if not verify:
            return
        with _timed("verify", phase_hook):
            require_valid(stage, check())

    converted: List[Tuple[str, str, Graph]] = []
    for name, container in lowered.instructions.items():
        with _timed("lower", phase_hook):
            graph = convert_to_lil(isa, container)
        _verified(f"lower:{name}", lambda: verify_graph(graph))
        converted.append((name, "instruction", graph))
    for name, container in lowered.always_blocks.items():
        with _timed("lower", phase_hook):
            graph = convert_to_lil(isa, container)
        _verified(f"lower:{name}", lambda: verify_graph(graph))
        converted.append((name, "always", graph))

    optimizer_report: Optional[OptimizerReport] = None
    if opt_pipeline:
        with _timed("opt", phase_hook):
            optimizer_report = optimize_graphs(
                converted, opt_options, verify=verify)

    for name, kind, graph in converted:
        with _timed("schedule", phase_hook):
            schedule = scheduler.schedule(graph)
        _verified(f"schedule:{name}", lambda: verify_schedule(schedule))
        with _timed("hwgen", phase_hook):
            module = generate_module(graph, schedule)
        _verified(f"hwgen:{name}", lambda: verify_module(module))
        if kind == "instruction":
            functionality = Functionality(
                kind="instruction",
                name=name,
                mask=isa.instructions[name].encoding.pattern,
                schedule=_schedule_entries(graph, schedule, datasheet,
                                           False),
            )
        else:
            functionality = Functionality(
                kind="always",
                name=name,
                schedule=_schedule_entries(graph, schedule, datasheet, True),
            )
        config_functionalities.append(functionality)
        functionalities[name] = FunctionalityArtifact(
            name=name, kind=kind, graph=graph, schedule=schedule,
            module=module, functionality=functionality,
        )

    registers = [
        RegisterRequest(info.name, info.element.width, info.size or 1)
        for info in isa.custom_state()
        if info.kind in ("scalar_reg", "array_reg")
    ]
    config = IsaxConfig(
        name=isa.name,
        registers=registers,
        functionalities=config_functionalities,
    )
    return IsaxArtifact(
        isa=isa,
        datasheet=datasheet,
        functionalities=functionalities,
        config=config,
        diagnostics=diagnostics,
        optimizer=optimizer_report,
    )


def compile_isax_set(
    sources: List[Union[str, ElaboratedISA]],
    core: Union[str, VirtualDatasheet] = "VexRiscv",
    **kwargs,
) -> List[IsaxArtifact]:
    """Compile several ISAXes for the same core (e.g. the autoinc+zol
    combination of Section 5.1); integration is handled by
    :func:`repro.scaiev.integrate.integrate`."""
    datasheet = core_datasheet(core) if isinstance(core, str) else core
    return [compile_isax(src, datasheet, **kwargs) for src in sources]
