"""A small YAML subset used for the Longnail <-> SCAIE-V metadata exchange.

The paper (Section 4.6, Figures 8 and 9) exchanges two kinds of YAML files
between Longnail and SCAIE-V: the core's *virtual datasheet* and the ISAX
*configuration file*.  PyYAML is not a dependency of this reproduction, so we
implement the subset actually needed:

* block mappings (``key: value``) with nesting by 2-space indentation,
* block sequences (``- item``),
* flow mappings (``{interface: RdPC, stage: 1}``) and flow sequences,
* scalars: integers, floats, booleans, ``null`` and plain/quoted strings.

``dumps``/``loads`` round-trip every structure this project produces.
"""

from __future__ import annotations

import re
from typing import Any, List, Tuple

#: Strings that would be re-parsed as numbers must be quoted on emission, and
#: only strings matching this shape are *parsed* as numbers.
_NUMERIC_RE = re.compile(
    r"[+-]?(\d[\d_]*|0[xX][0-9a-fA-F]+|0[bB][01]+|\d*\.\d+([eE][+-]?\d+)?"
    r"|\d+\.?([eE][+-]?\d+)?)$"
)


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

def _scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value == float("inf"):
            return ".inf"
        return repr(value)
    text = str(value)
    specials = set(":{}[],#&*!|>'\"%@`")
    if (
        text == ""
        or text.strip() != text
        or any(c in specials for c in text)
        or text.lower() in {"true", "false", "null", "yes", "no", ".inf"}
        or _NUMERIC_RE.match(text)
        or text == "-"
        or text.startswith("- ")
    ):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


def _flow(value: Any) -> str:
    if isinstance(value, dict):
        items = ", ".join(f"{_scalar(k)}: {_flow(v)}" for k, v in value.items())
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_flow(v) for v in value) + "]"
    return _scalar(value)


def _is_flat(value: Any) -> bool:
    """Mappings whose values are all scalars are emitted in flow style, which
    matches the ``{interface: RdPC, stage: 1}`` entries of Figure 8."""
    if isinstance(value, dict):
        return all(not isinstance(v, (dict, list, tuple)) for v in value.values())
    return not isinstance(value, (dict, list, tuple))


def _dump(value: Any, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        if not value:
            lines.append(pad + "{}")
            return
        for key, val in value.items():
            if isinstance(val, dict) and val and not _is_flat(val):
                lines.append(f"{pad}{_scalar(key)}:")
                _dump(val, indent + 1, lines)
            elif isinstance(val, dict) and val:
                lines.append(f"{pad}{_scalar(key)}: {_flow(val)}")
            elif isinstance(val, (list, tuple)) and len(val) > 0:
                lines.append(f"{pad}{_scalar(key)}:")
                _dump(list(val), indent + 1, lines)
            else:
                lines.append(f"{pad}{_scalar(key)}: {_flow(val)}")
    elif isinstance(value, list):
        if not value:
            lines.append(pad + "[]")
            return
        for item in value:
            if isinstance(item, (dict, list, tuple)) and not _is_flat(item):
                lines.append(pad + "-")
                _dump(item, indent + 1, lines)
            else:
                lines.append(f"{pad}- {_flow(item)}")
    else:
        lines.append(pad + _scalar(value))


def dumps(value: Any) -> str:
    """Serialize ``value`` (dict/list/scalars) to a YAML string."""
    lines: List[str] = []
    _dump(value, 0, lines)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text in ("null", "~", ""):
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if text == ".inf":
        return float("inf")
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    if _NUMERIC_RE.match(text):
        try:
            return int(text, 0)
        except ValueError:
            return float(text)
    return text


def _split_flow(text: str) -> List[str]:
    """Split a flow body on commas at depth 0."""
    parts, depth, start, in_str = [], 0, 0, False
    for i, ch in enumerate(text):
        if in_str:
            if ch == '"' and text[i - 1] != "\\":
                in_str = False
            continue
        if ch == '"':
            in_str = True
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    tail = text[start:]
    if tail.strip():
        parts.append(tail)
    return parts


def _split_key(text: str) -> Tuple[str, str]:
    """Split ``key: value`` at the first depth-0 colon."""
    depth, in_str = 0, False
    for i, ch in enumerate(text):
        if in_str:
            if ch == '"' and text[i - 1] != "\\":
                in_str = False
            continue
        if ch == '"':
            in_str = True
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        elif ch == ":" and depth == 0:
            if i + 1 >= len(text) or text[i + 1] in " \t" or i + 1 == len(text.rstrip()):
                return text[:i], text[i + 1:]
    raise ValueError(f"not a mapping entry: {text!r}")


def _parse_value(text: str) -> Any:
    text = text.strip()
    if text.startswith("{"):
        if not text.endswith("}"):
            raise ValueError(f"unterminated flow mapping: {text!r}")
        body = text[1:-1].strip()
        out = {}
        if body:
            for part in _split_flow(body):
                key, val = _split_key(part.strip())
                out[_parse_scalar(key)] = _parse_value(val)
        return out
    if text.startswith("["):
        if not text.endswith("]"):
            raise ValueError(f"unterminated flow sequence: {text!r}")
        body = text[1:-1].strip()
        if not body:
            return []
        return [_parse_value(p.strip()) for p in _split_flow(body)]
    return _parse_scalar(text)


class _Parser:
    def __init__(self, lines: List[Tuple[int, str]]):
        self.lines = lines
        self.pos = 0

    def peek(self) -> Tuple[int, str]:
        return self.lines[self.pos]

    def at_end(self) -> bool:
        return self.pos >= len(self.lines)

    def parse_block(self, indent: int) -> Any:
        if self.at_end():
            return None
        ind, text = self.peek()
        if text.startswith("- ") or text == "-":
            return self.parse_sequence(ind)
        try:
            _split_key(text)
        except ValueError:
            # A bare scalar document.
            self.pos += 1
            return _parse_value(text)
        return self.parse_mapping(ind)

    def parse_sequence(self, indent: int) -> List[Any]:
        items: List[Any] = []
        while not self.at_end():
            ind, text = self.peek()
            if ind != indent or not (text.startswith("- ") or text == "-"):
                break
            self.pos += 1
            rest = text[1:].strip()
            if rest:
                items.append(_parse_value(rest))
            else:
                if not self.at_end() and self.peek()[0] > indent:
                    items.append(self.parse_block(self.peek()[0]))
                else:
                    items.append(None)
        return items

    def parse_mapping(self, indent: int) -> dict:
        out: dict = {}
        while not self.at_end():
            ind, text = self.peek()
            if ind != indent:
                break
            key_text, val_text = _split_key(text)
            self.pos += 1
            key = _parse_scalar(key_text)
            val_text = val_text.strip()
            if val_text:
                out[key] = _parse_value(val_text)
            else:
                if not self.at_end() and self.peek()[0] > indent:
                    out[key] = self.parse_block(self.peek()[0])
                elif not self.at_end() and self.peek()[0] == indent and (
                    self.peek()[1].startswith("- ") or self.peek()[1] == "-"
                ):
                    out[key] = self.parse_sequence(indent)
                else:
                    out[key] = None
        return out


def loads(text: str) -> Any:
    """Parse the YAML subset produced by :func:`dumps`."""
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        stripped = raw.split("#", 1)[0] if not raw.lstrip().startswith('"') else raw
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip())
        lines.append((indent, stripped.strip()))
    if not lines:
        return None
    parser = _Parser(lines)
    result = parser.parse_block(lines[0][0])
    if not parser.at_end():
        raise ValueError(f"trailing content at line {parser.pos}")
    return result
