"""Shared low-level utilities: bit manipulation, YAML subset, diagnostics."""

from repro.utils.bits import (
    bit_length_unsigned,
    bit_length_signed,
    mask,
    sign_extend,
    to_signed,
    to_unsigned,
    truncate,
    extract_bits,
    replicate_bits,
    concat_bits,
)
from repro.utils.diagnostics import (
    SourceLocation,
    CoreDSLError,
    Diagnostic,
    DiagnosticEngine,
    Note,
    Severity,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "bit_length_unsigned",
    "bit_length_signed",
    "mask",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "truncate",
    "extract_bits",
    "replicate_bits",
    "concat_bits",
    "SourceLocation",
    "CoreDSLError",
    "Diagnostic",
    "DiagnosticEngine",
    "Note",
    "Severity",
    "render_json",
    "render_sarif",
    "render_text",
]
