"""Source locations and error reporting for the CoreDSL frontend."""

from __future__ import annotations

import dataclasses
from typing import List, Optional


@dataclasses.dataclass(frozen=True)
class SourceLocation:
    """A position in a CoreDSL source file (1-based line/column)."""

    filename: str = "<input>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class CoreDSLError(Exception):
    """An error raised by any stage of the CoreDSL → RTL flow.

    Carries an optional :class:`SourceLocation` so frontends can point the
    user at the offending source construct.
    """

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.message = message
        self.loc = loc
        super().__init__(f"{loc}: {message}" if loc else message)


class DiagnosticEngine:
    """Collects non-fatal diagnostics (warnings, notes) during compilation."""

    def __init__(self) -> None:
        self.warnings: List[str] = []
        self.notes: List[str] = []

    def warn(self, message: str, loc: Optional[SourceLocation] = None) -> None:
        self.warnings.append(f"{loc}: {message}" if loc else message)

    def note(self, message: str, loc: Optional[SourceLocation] = None) -> None:
        self.notes.append(f"{loc}: {message}" if loc else message)

    def error(self, message: str, loc: Optional[SourceLocation] = None) -> None:
        raise CoreDSLError(message, loc)
