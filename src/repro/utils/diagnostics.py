"""Source locations and structured diagnostics for the whole flow.

Every finding the toolchain reports — frontend lints (``LNxxx``), IR
verifier failures (``IVxxx``), and hard compile errors — is a
:class:`Diagnostic` record: a stable code, a :class:`Severity`, a message,
an optional :class:`SourceLocation`, attached notes and an optional
fix-hint.  Lists of diagnostics render as human-readable text
(:func:`render_text`), JSON (:func:`render_json`) and SARIF 2.1.0
(:func:`render_sarif`) so editors and CI systems can consume them.

:class:`DiagnosticEngine` collects diagnostics during a run.  By default
``error()`` raises :class:`CoreDSLError` immediately (the historical
fail-fast contract the compilation pipeline relies on); constructed with
``collect_errors=True`` it accumulates up to ``max_errors`` errors so the
linter can report many findings per run.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any, Dict, List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class SourceLocation:
    """A position in a CoreDSL source file (1-based line/column)."""

    filename: str = "<input>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class CoreDSLError(Exception):
    """An error raised by any stage of the CoreDSL → RTL flow.

    Carries an optional :class:`SourceLocation` so frontends can point the
    user at the offending source construct.
    """

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.message = message
        self.loc = loc
        super().__init__(f"{loc}: {message}" if loc else message)


class Severity(enum.Enum):
    """Diagnostic severity, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Note:
    """A secondary message attached to a :class:`Diagnostic`."""

    message: str
    loc: Optional[SourceLocation] = None

    def render(self) -> str:
        prefix = f"{self.loc}: " if self.loc and self.loc.line else ""
        return f"{prefix}note: {self.message}"


@dataclasses.dataclass
class Diagnostic:
    """One structured finding.

    ``code`` is a stable identifier (``LN001``, ``IV003``, ...); ``rule``
    is the human-readable rule slug (``implicit-truncation``).  ``fix_hint``
    is a one-line suggestion of how to silence/resolve the finding.
    """

    code: str
    severity: Severity
    message: str
    loc: Optional[SourceLocation] = None
    rule: str = ""
    notes: List[Note] = dataclasses.field(default_factory=list)
    fix_hint: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def with_note(self, message: str,
                  loc: Optional[SourceLocation] = None) -> "Diagnostic":
        self.notes.append(Note(message, loc))
        return self

    def render(self) -> str:
        """One-finding text rendering: ``file:line:col: severity: msg [code]``."""
        prefix = f"{self.loc}: " if self.loc and self.loc.line else ""
        tag = f" [{self.code}]" if self.code else ""
        lines = [f"{prefix}{self.severity}: {self.message}{tag}"]
        for note in self.notes:
            lines.append("  " + note.render())
        if self.fix_hint:
            lines.append(f"  hint: {self.fix_hint}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.rule:
            doc["rule"] = self.rule
        if self.loc is not None:
            doc["location"] = {
                "file": self.loc.filename,
                "line": self.loc.line,
                "column": self.loc.column,
            }
        if self.notes:
            doc["notes"] = [
                {"message": n.message,
                 **({"file": n.loc.filename, "line": n.loc.line,
                     "column": n.loc.column} if n.loc else {})}
                for n in self.notes
            ]
        if self.fix_hint:
            doc["fix_hint"] = self.fix_hint
        return doc

    def __str__(self) -> str:
        return self.render()


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Stable order: by file, line, column, then severity, then code."""
    return sorted(
        diagnostics,
        key=lambda d: (
            d.loc.filename if d.loc else "",
            d.loc.line if d.loc else 0,
            d.loc.column if d.loc else 0,
            d.severity.rank,
            d.code,
        ),
    )


def count_by_severity(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0, "note": 0}
    for diag in diagnostics:
        counts[str(diag.severity)] += 1
    return counts


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------

def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Human-readable rendering with a trailing severity summary."""
    ordered = sort_diagnostics(diagnostics)
    lines = [diag.render() for diag in ordered]
    counts = count_by_severity(ordered)
    summary = ", ".join(f"{n} {sev}{'s' if n != 1 else ''}"
                        for sev, n in counts.items() if n)
    lines.append(summary if summary else "no findings")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], indent: int = 2) -> str:
    doc = {
        "diagnostics": [d.to_dict() for d in sort_diagnostics(diagnostics)],
        "counts": count_by_severity(diagnostics),
    }
    return json.dumps(doc, indent=indent)


#: SARIF severity levels for each :class:`Severity`.
_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning",
                Severity.NOTE: "note"}


def render_sarif(diagnostics: Sequence[Diagnostic],
                 tool_name: str = "repro-longnail",
                 tool_version: str = "1.0.0",
                 indent: int = 2) -> str:
    """Render as a SARIF 2.1.0 log (one run, one result per diagnostic)."""
    ordered = sort_diagnostics(diagnostics)
    rules: Dict[str, Dict[str, Any]] = {}
    results: List[Dict[str, Any]] = []
    for diag in ordered:
        rule_id = diag.code or "UNCODED"
        if rule_id not in rules:
            rules[rule_id] = {
                "id": rule_id,
                "name": diag.rule or rule_id,
                "shortDescription": {"text": diag.rule or diag.message},
            }
        result: Dict[str, Any] = {
            "ruleId": rule_id,
            "level": _SARIF_LEVEL[diag.severity],
            "message": {"text": diag.message},
        }
        if diag.loc is not None and diag.loc.line:
            result["locations"] = [{
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.loc.filename},
                    "region": {
                        "startLine": diag.loc.line,
                        "startColumn": max(1, diag.loc.column),
                    },
                },
            }]
        results.append(result)
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "version": tool_version,
                "informationUri": "https://github.com/Minres/CoreDSL",
                "rules": list(rules.values()),
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=indent)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class DiagnosticEngine:
    """Collects :class:`Diagnostic` records during compilation or linting.

    ``error()`` raises :class:`CoreDSLError` immediately unless the engine
    was constructed with ``collect_errors=True``, in which case errors are
    recorded like any other diagnostic until ``max_errors`` of them have
    been seen — the cap then raises to stop a runaway rule.
    """

    def __init__(self, collect_errors: bool = False,
                 max_errors: int = 25) -> None:
        if max_errors < 1:
            raise ValueError("max_errors must be >= 1")
        self.collect_errors = collect_errors
        self.max_errors = max_errors
        self.diagnostics: List[Diagnostic] = []

    # -- emission -----------------------------------------------------------
    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def warn(self, message: str, loc: Optional[SourceLocation] = None,
             code: str = "", rule: str = "",
             fix_hint: Optional[str] = None) -> Diagnostic:
        return self.emit(Diagnostic(code, Severity.WARNING, message, loc,
                                    rule=rule, fix_hint=fix_hint))

    def note(self, message: str, loc: Optional[SourceLocation] = None,
             code: str = "", rule: str = "") -> Diagnostic:
        return self.emit(Diagnostic(code, Severity.NOTE, message, loc,
                                    rule=rule))

    def error(self, message: str, loc: Optional[SourceLocation] = None,
              code: str = "", rule: str = "",
              fix_hint: Optional[str] = None) -> Diagnostic:
        """Report an error.

        Fail-fast mode (the default) raises :class:`CoreDSLError`.  In
        collection mode the error is recorded and returned; once
        ``max_errors`` errors have accumulated the cap raises so callers
        cannot loop forever on a pathological input.
        """
        if not self.collect_errors:
            raise CoreDSLError(message, loc)
        diagnostic = self.emit(Diagnostic(code, Severity.ERROR, message, loc,
                                          rule=rule, fix_hint=fix_hint))
        if self.error_count >= self.max_errors:
            raise CoreDSLError(
                f"too many errors ({self.max_errors}); aborting", loc
            )
        return diagnostic

    # -- accessors ----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[str]:
        """Rendered warning strings (backwards-compatible view)."""
        return [d.render() for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def notes(self) -> List[str]:
        """Rendered note strings (backwards-compatible view)."""
        return [d.render() for d in self.diagnostics
                if d.severity is Severity.NOTE]

    @property
    def error_count(self) -> int:
        return len(self.errors)

    @property
    def has_errors(self) -> bool:
        return self.error_count > 0
