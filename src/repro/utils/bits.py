"""Two's-complement bit-manipulation helpers.

All hardware values in the reproduction are carried around as Python ints in
*unsigned* representation (i.e. ``0 <= v < 2**width``).  These helpers convert
between signed/unsigned views, slice bit ranges, and concatenate fields, which
is the arithmetic substrate for the CoreDSL interpreter, the RTL simulator,
and the constant folder.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return a bit mask with the ``width`` least-significant bits set."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (unsigned result)."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as a two's-complement
    signed number and return the Python int."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    value = truncate(value, width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int) -> int:
    """Return the unsigned (bit-pattern) representation of ``value`` in
    ``width`` bits.  Accepts negative Python ints."""
    return truncate(value, width)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the low ``from_width`` bits of ``value`` to ``to_width``
    bits; returns the unsigned representation."""
    if to_width < from_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} to narrower {to_width}"
        )
    return to_unsigned(to_signed(value, from_width), to_width)


def bit_length_unsigned(value: int) -> int:
    """Minimal width of an unsigned type able to hold ``value`` (>= 1)."""
    if value < 0:
        raise ValueError("unsigned literal cannot be negative")
    return max(1, value.bit_length())


def bit_length_signed(value: int) -> int:
    """Minimal width of a signed type able to hold ``value`` (>= 1)."""
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def extract_bits(value: int, hi: int, lo: int) -> int:
    """Return bits ``[hi:lo]`` of ``value`` (inclusive, hi >= lo)."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & mask(hi - lo + 1)


def replicate_bits(value: int, width: int, times: int) -> int:
    """Concatenate ``times`` copies of the ``width``-bit ``value``."""
    value = truncate(value, width)
    out = 0
    for _ in range(times):
        out = (out << width) | value
    return out


def concat_bits(*pairs: tuple) -> int:
    """Concatenate ``(value, width)`` pairs, first pair most significant."""
    out = 0
    for value, width in pairs:
        out = (out << width) | truncate(value, width)
    return out
