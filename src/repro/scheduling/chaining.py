"""Operator-chaining support (paper Section 4.2/4.3).

Zero-latency operator types let arbitrarily long combinational chains end up
in one time step.  Following CIRCT's utilities, we (1) pre-compute
*chain-breaker* edges that force over-long chains apart (consumed by the
ILP's C5 constraints), and (2) post-compute the ``startTimeInCycle``
property for a solved problem.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.scheduling.problem import ChainingProblem, Problem, ScheduleError


def _adjacency(problem: Problem) -> Dict[Hashable, List[Hashable]]:
    preds: Dict[Hashable, List[Hashable]] = {op: [] for op in problem.operations}
    for dep in problem.dependences:
        if not dep.is_chain_breaker:
            preds[dep.target].append(dep.source)
    return preds


def _topological(problem: Problem) -> List[Hashable]:
    preds = _adjacency(problem)
    state: Dict[Hashable, int] = {}
    order: List[Hashable] = []

    def visit(op: Hashable) -> None:
        mark = state.get(op, 0)
        if mark == 2:
            return
        if mark == 1:
            raise ScheduleError("cycle in dependence graph")
        state[op] = 1
        for pred in preds[op]:
            visit(pred)
        state[op] = 2
        order.append(op)

    for op in problem.operations:
        visit(op)
    return order


def compute_chain_breakers(problem: ChainingProblem,
                           cycle_time: float) -> List[Tuple[Hashable, Hashable]]:
    """Determine edges that must be separated by at least one time step so
    no combinational path exceeds ``cycle_time``.

    Performs an ASAP-with-chaining pass: every operation is provisionally
    placed in a (cycle, in-cycle finish time) slot; an operation whose chain
    would overrun the cycle time moves to the next cycle.  Every
    zero-latency dependence that crosses a provisional cycle boundary
    becomes a chain-breaker edge (the ILP's C5 constraints), which keeps the
    heuristic placement feasible for the exact solver while bounding the
    combinational depth of every time step.
    """
    preds = _adjacency(problem)
    cycle: Dict[Hashable, int] = {}
    finish: Dict[Hashable, float] = {}
    for op in _topological(problem):
        lot = problem.linked_operator_type(op)
        delay = lot.incoming_delay
        if delay > cycle_time:
            raise ScheduleError(
                f"operator type '{lot.name}' delay {delay} ns exceeds the "
                f"cycle time {cycle_time} ns"
            )
        c, t = 0, 0.0
        for pred in preds[op]:
            pred_lot = problem.linked_operator_type(pred)
            if pred_lot.latency > 0:
                # Result comes out of a register at the start of the cycle
                # after the predecessor finishes.
                pc = cycle[pred] + pred_lot.latency
                pt = pred_lot.outgoing_delay
            else:
                pc = cycle[pred]
                pt = finish[pred]
            if pc > c:
                c, t = pc, pt
            elif pc == c:
                t = max(t, pt)
        if t + delay > cycle_time:
            c, t = c + 1, 0.0
        cycle[op] = c
        finish[op] = t + delay
    breakers: List[Tuple[Hashable, Hashable]] = []
    for dep in problem.dependences:
        if dep.is_chain_breaker:
            continue
        pred_lot = problem.linked_operator_type(dep.source)
        if pred_lot.latency == 0 and cycle[dep.target] > cycle[dep.source]:
            breakers.append((dep.source, dep.target))
    return breakers


def compute_start_times_in_cycle(problem: ChainingProblem) -> None:
    """Fill the ``startTimeInCycle`` property for a problem whose
    ``startTime`` values are already computed (CIRCT utility equivalent)."""
    preds = _adjacency(problem)
    for op in _topological(problem):
        lot = problem.linked_operator_type(op)
        start = 0.0
        for pred in preds[op]:
            pred_lot = problem.linked_operator_type(pred)
            if pred_lot.latency == 0:
                if problem.start_time[pred] == problem.start_time[op]:
                    start = max(
                        start,
                        problem.start_time_in_cycle[pred]
                        + pred_lot.outgoing_delay,
                    )
            elif (problem.start_time[pred] + pred_lot.latency
                  == problem.start_time[op]):
                start = max(start, pred_lot.outgoing_delay)
        problem.start_time_in_cycle[op] = start


def critical_path_per_step(problem: ChainingProblem) -> Dict[int, float]:
    """Longest combinational path (ns) in each time step of a solved
    problem; used by the evaluation's static timing analysis."""
    depth: Dict[int, float] = {}
    for op in problem.operations:
        lot = problem.linked_operator_type(op)
        step = problem.start_time[op]
        finish = problem.start_time_in_cycle[op] + (
            lot.outgoing_delay if lot.latency == 0 else lot.incoming_delay
        )
        depth[step] = max(depth.get(step, 0.0), finish)
    return depth
