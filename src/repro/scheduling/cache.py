"""Cross-sweep schedule cache.

A DSE sweep re-schedules the *same* CDFG once per (core, cycle-time)
candidate, but the scheduling problem only changes when a candidate's
virtual-datasheet windows, operator latencies, or chain-breaker set
actually change.  :func:`schedule_fingerprint` canonicalizes everything
the exact engines' solution depends on — component structure, per-op
``(latency, earliest, latest, lifetime weight)`` and the dependence
multiset with its chain-breaker flags — into one digest, deliberately
*excluding* propagation delays and operator-type names: two problems with
identical fingerprints have identical optimal start times, even if they
were built for different cycle times.

:class:`ScheduleCache` maps fingerprints to solved start-time vectors
(aligned with the component's operation order) with LRU eviction and
hit/miss accounting.  A process-wide instance backs every
:class:`repro.scheduling.scheduler.LongnailScheduler` by default, so grid
sweeps within one process (the batch executor's in-process mode, the DSE
default path, and each pool worker) share solved components.  Set
``REPRO_SCHED_CACHE=0`` to disable the default instance.

Only the exact engines (``fastpath``/``milp``) use the cache: both solve
to the same objective, and the fast path's canonical earliest-optimal
solutions make entries deterministic.
"""

from __future__ import annotations

import collections
import hashlib
import threading
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.scheduling.fastpath import scaled_weight
from repro.scheduling.problem import INFINITY, LongnailProblem


def schedule_fingerprint(problem: LongnailProblem, salt: str = "") -> str:
    """Canonical digest of everything the exact solution depends on.

    ``salt`` partitions the cache namespace: callers whose problems embed
    configuration that the structural fingerprint cannot see (the -O
    optimizer pipeline rewrites graphs *before* scheduling) pass their
    config fingerprint so entries never cross configurations.
    """
    index: Dict[Hashable, int] = {
        op: i for i, op in enumerate(problem.operations)
    }
    op_parts: List[Tuple[int, int, int, int]] = []
    for op in problem.operations:
        lot = problem.linked_operator_type(op)
        latest = -1 if lot.latest == INFINITY else int(lot.latest)
        op_parts.append(
            (lot.latency, lot.earliest, latest, scaled_weight(op))
        )
    dep_parts = sorted(
        (index[d.source], index[d.target], 1 if d.is_chain_breaker else 0)
        for d in problem.dependences
    )
    blob = repr((op_parts, dep_parts, salt)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class ScheduleCache:
    """LRU map: component fingerprint -> solved start-time vector."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "collections.OrderedDict[str, Tuple[int, ...]]" = \
            collections.OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Tuple[int, ...]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, start_times: Sequence[int]) -> None:
        with self._lock:
            self._entries[key] = tuple(int(t) for t in start_times)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


#: The process-wide default cache (see module docstring).
GLOBAL_SCHEDULE_CACHE = ScheduleCache()


def global_schedule_cache() -> ScheduleCache:
    return GLOBAL_SCHEDULE_CACHE
