"""The extensible scheduling problem model (paper Table 2).

Following CIRCT's design, *problems* are comprised of *operations*,
*operator types* and *dependences*.  Concrete problem classes differ only in
their *properties* and in the *input/solution constraints* they check:

=================  ==========================  ======================
problem            operation properties         operator-type properties
=================  ==========================  ======================
Problem            linkedOperatorType,          latency
                   startTime
ChainingProblem    startTimeInCycle             incomingDelay, outgoingDelay
LongnailProblem    --                           earliest, latest
=================  ==========================  ======================

The solution constraints implemented in :meth:`verify` are the formulas of
Table 2 verbatim.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List

INFINITY = float("inf")


class ScheduleError(Exception):
    """Raised when a problem instance is malformed or a solution violates
    the problem's constraints."""


@dataclasses.dataclass(frozen=True)
class OperatorType:
    """Characteristics of the hardware executing operations of this type.

    ``latency`` is in cycles; the propagation delays (in ns) model operator
    chaining; ``earliest``/``latest`` are the LongnailProblem's interface
    constraints from the virtual datasheet (Section 4.2): non-interface
    operator types use the defaults earliest=0, latest=inf.
    """

    name: str
    latency: int = 0
    incoming_delay: float = 0.0
    outgoing_delay: float = 0.0
    earliest: int = 0
    latest: float = INFINITY

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ScheduleError(f"operator '{self.name}': negative latency")
        if self.incoming_delay < 0 or self.outgoing_delay < 0:
            raise ScheduleError(f"operator '{self.name}': negative delay")
        if self.latency == 0 and self.incoming_delay != self.outgoing_delay:
            # For combinational operators CIRCT requires a single delay.
            raise ScheduleError(
                f"operator '{self.name}': zero-latency operators need equal "
                "incoming/outgoing delays"
            )
        if self.earliest < 0 or self.latest < self.earliest:
            raise ScheduleError(
                f"operator '{self.name}': invalid window "
                f"[{self.earliest}, {self.latest}]"
            )


@dataclasses.dataclass(frozen=True)
class Dependence:
    """An edge in the dependence graph.  ``is_chain_breaker`` marks the
    auxiliary edges used to split over-long combinational chains
    (Section 4.3, constraint C5)."""

    source: Hashable
    target: Hashable
    is_chain_breaker: bool = False


class Problem:
    """Acyclic scheduling problem without operator sharing."""

    def __init__(self) -> None:
        self.operations: List[Hashable] = []
        self.dependences: List[Dependence] = []
        self.operator_types: Dict[str, OperatorType] = {}
        self._linked: Dict[Hashable, str] = {}
        self.start_time: Dict[Hashable, int] = {}

    # -- construction --------------------------------------------------------
    def add_operator_type(self, operator_type: OperatorType) -> OperatorType:
        existing = self.operator_types.get(operator_type.name)
        if existing is not None and existing != operator_type:
            raise ScheduleError(
                f"conflicting redefinition of operator type "
                f"'{operator_type.name}'"
            )
        self.operator_types[operator_type.name] = operator_type
        return operator_type

    def add_operation(self, operation: Hashable, operator_type: str) -> None:
        if operator_type not in self.operator_types:
            raise ScheduleError(f"unknown operator type '{operator_type}'")
        if operation in self._linked:
            raise ScheduleError("operation registered twice")
        self.operations.append(operation)
        self._linked[operation] = operator_type

    def add_dependence(self, source: Hashable, target: Hashable,
                       is_chain_breaker: bool = False) -> None:
        self.dependences.append(Dependence(source, target, is_chain_breaker))

    # -- properties ---------------------------------------------------------------
    def linked_operator_type(self, operation: Hashable) -> OperatorType:
        return self.operator_types[self._linked[operation]]

    def latency(self, operation: Hashable) -> int:
        return self.linked_operator_type(operation).latency

    # -- input constraints ------------------------------------------------------
    def check(self) -> None:
        """Input constraints: every operation has a linked operator type and
        every dependence endpoint is registered."""
        registered = set(self._linked)
        for dep in self.dependences:
            if dep.source not in registered or dep.target not in registered:
                raise ScheduleError("dependence endpoint is not registered")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        succs: Dict[Hashable, List[Hashable]] = {op: [] for op in self.operations}
        indeg: Dict[Hashable, int] = {op: 0 for op in self.operations}
        for dep in self.dependences:
            succs[dep.source].append(dep.target)
            indeg[dep.target] += 1
        stack = [op for op, d in indeg.items() if d == 0]
        seen = 0
        while stack:
            op = stack.pop()
            seen += 1
            for nxt in succs[op]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    stack.append(nxt)
        if seen != len(self.operations):
            raise ScheduleError("dependence graph contains a cycle")

    # -- solution constraints -----------------------------------------------------
    def verify(self) -> None:
        for op in self.operations:
            if op not in self.start_time:
                raise ScheduleError("operation has no start time")
        for dep in self.dependences:
            i, j = dep.source, dep.target
            lhs = self.start_time[i] + self.latency(i)
            if dep.is_chain_breaker:
                lhs += 1
            if lhs > self.start_time[j]:
                raise ScheduleError(
                    f"precedence violated: {i} finishes at {lhs}, "
                    f"{j} starts at {self.start_time[j]}"
                )


class ChainingProblem(Problem):
    """Adds physical propagation delays and in-cycle start times."""

    def __init__(self) -> None:
        super().__init__()
        self.start_time_in_cycle: Dict[Hashable, float] = {}

    def verify(self) -> None:
        super().verify()
        for op in self.operations:
            if op not in self.start_time_in_cycle:
                raise ScheduleError("operation has no start time in cycle")
            if self.start_time_in_cycle[op] < 0:
                raise ScheduleError("negative start time in cycle")
        for dep in self.dependences:
            if dep.is_chain_breaker:
                continue
            i, j = dep.source, dep.target
            lot_i = self.linked_operator_type(i)
            # Combinational predecessor in the same cycle.
            if lot_i.latency == 0 and self.start_time[i] == self.start_time[j]:
                if (self.start_time_in_cycle[i] + lot_i.outgoing_delay
                        > self.start_time_in_cycle[j] + 1e-9):
                    raise ScheduleError(
                        f"chaining violated between {i} and {j}"
                    )
            # Sequential predecessor finishing exactly when j starts.
            if (lot_i.latency > 0
                    and self.start_time[i] + lot_i.latency == self.start_time[j]):
                if lot_i.outgoing_delay > self.start_time_in_cycle[j] + 1e-9:
                    raise ScheduleError(
                        f"chaining violated at cycle boundary between {i} "
                        f"and {j}"
                    )


class LongnailProblem(ChainingProblem):
    """Adds the interface window constraints from the virtual datasheet:
    ``earliest <= startTime <= latest`` for every operation (Table 2)."""

    def verify(self) -> None:
        super().verify()
        for op in self.operations:
            lot = self.linked_operator_type(op)
            start = self.start_time[op]
            if not lot.earliest <= start <= lot.latest:
                raise ScheduleError(
                    f"interface constraint violated: {op} scheduled at "
                    f"{start}, window is [{lot.earliest}, {lot.latest}]"
                )

    # -- helpers used by the scheduler and the hardware generator ------------
    def makespan(self) -> int:
        """Last finish time over all operations."""
        return max(
            (self.start_time[op] + self.latency(op) for op in self.operations),
            default=0,
        )

    def predecessors(self, operation: Hashable) -> List[Hashable]:
        return [d.source for d in self.dependences if d.target is operation]
