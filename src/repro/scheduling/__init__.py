"""Static scheduling infrastructure (paper Section 4.2/4.3).

Reimplements the relevant slice of CIRCT's scheduling infrastructure: the
extensible problem model (``Problem`` -> ``ChainingProblem`` ->
``LongnailProblem``, Table 2), chain-breaker computation, and three solver
engines for the Figure 7 formulation:

* ``fastpath`` (the default behind ``engine="auto"``) — an LP-free exact
  engine (:mod:`repro.scheduling.fastpath`) built on the observation that
  the Figure 7 constraint matrix is an integral difference-constraint
  network,
* ``milp`` — the literal Figure 7 ILP via ``scipy.optimize.milp``
  (HiGHS), kept as the verification oracle (``REPRO_SCHED_VERIFY=1``),
* ``asap`` — the heuristic longest-path baseline for the ablations.

Problems are decomposed into weakly connected components
(:func:`repro.scheduling.scheduler.decompose`) and solved through a
cross-sweep schedule cache (:mod:`repro.scheduling.cache`).
"""

from repro.scheduling.problem import (
    ChainingProblem,
    Dependence,
    LongnailProblem,
    OperatorType,
    Problem,
    ScheduleError,
)
from repro.scheduling.chaining import compute_chain_breakers, compute_start_times_in_cycle
from repro.scheduling.cache import (
    ScheduleCache,
    global_schedule_cache,
    schedule_fingerprint,
)
from repro.scheduling.fastpath import solve_fastpath
from repro.scheduling.scheduler import (
    LongnailScheduler,
    ScheduleResult,
    SolveStats,
    build_problem,
    decompose,
    default_delay_model,
    solve_problem,
    uniform_delay_model,
)

__all__ = [
    "Problem",
    "ChainingProblem",
    "LongnailProblem",
    "OperatorType",
    "Dependence",
    "ScheduleError",
    "ScheduleCache",
    "SolveStats",
    "compute_chain_breakers",
    "compute_start_times_in_cycle",
    "decompose",
    "global_schedule_cache",
    "schedule_fingerprint",
    "solve_fastpath",
    "solve_problem",
    "LongnailScheduler",
    "ScheduleResult",
    "build_problem",
    "default_delay_model",
    "uniform_delay_model",
]
