"""Static scheduling infrastructure (paper Section 4.2/4.3).

Reimplements the relevant slice of CIRCT's scheduling infrastructure: the
extensible problem model (``Problem`` -> ``ChainingProblem`` ->
``LongnailProblem``, Table 2), chain-breaker computation, and the ILP
formulation of Figure 7 with exact (``scipy.optimize.milp``) and heuristic
(ASAP longest-path) solver engines.
"""

from repro.scheduling.problem import (
    ChainingProblem,
    Dependence,
    LongnailProblem,
    OperatorType,
    Problem,
    ScheduleError,
)
from repro.scheduling.chaining import compute_chain_breakers, compute_start_times_in_cycle
from repro.scheduling.scheduler import (
    LongnailScheduler,
    ScheduleResult,
    build_problem,
    default_delay_model,
    uniform_delay_model,
)

__all__ = [
    "Problem",
    "ChainingProblem",
    "LongnailProblem",
    "OperatorType",
    "Dependence",
    "ScheduleError",
    "compute_chain_breakers",
    "compute_start_times_in_cycle",
    "LongnailScheduler",
    "ScheduleResult",
    "build_problem",
    "default_delay_model",
    "uniform_delay_model",
]
