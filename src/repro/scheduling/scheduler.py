"""The Longnail scheduler: lil graph + virtual datasheet -> solved
LongnailProblem (paper Sections 4.2-4.4).

Building the problem:

* every lil interface operation is linked to an operator type whose
  ``earliest``/``latest``/``latency`` come from the core's virtual
  datasheet.  For the WrRD, RdMem and WrMem operator types ``latest`` is
  lifted to infinity, which is what later unlocks the tightly-coupled or
  decoupled variants (Section 4.2),
* non-interface (comb) operations get default windows [0, inf) and
  zero latency with propagation delays from a delay model (by default the
  paper's "uniform delays" assumption),
* chain-breaker edges computed against the core's cycle time split overly
  long combinational chains (Section 4.2),
* for always-blocks, all interface constraints are pinned to stage 0, so
  solving merely checks the behavior executes in a single clock cycle
  (Section 4.4).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.dialects import lil
from repro.ir.core import Graph, Operation
from repro.scaiev.datasheet import INFINITY, VirtualDatasheet
from repro.scheduling import ilp
from repro.scheduling.chaining import (
    compute_chain_breakers,
    compute_start_times_in_cycle,
)
from repro.scheduling.problem import (
    LongnailProblem,
    OperatorType,
    ScheduleError,
)

DelayModel = Callable[[Operation], float]

#: Sub-interfaces whose 'latest' is lifted to infinity so the scheduler may
#: push them past their native window (Section 4.2).
LIFTED_INTERFACES = ("WrRD", "RdMem", "WrMem")

#: Operations that cost (essentially) no logic: wiring only.
FREE_OPS = ("comb.constant", "comb.extract", "comb.concat", "comb.replicate")

#: Clock-to-Q plus setup margin reserved out of every cycle (ns); matches
#: the sequential overhead the evaluation's timing analysis charges.
CLOCK_MARGIN_NS = 0.08


def uniform_delay_model(delay_ns: float = 1.25) -> DelayModel:
    """The paper's current simplification: uniform delays for logic and
    non-combinational sub-interface operations (Section 4.2)."""

    def model(op: Operation) -> float:
        if op.name in FREE_OPS or op.name == "lil.sink":
            return 0.0
        return delay_ns

    return model


def default_delay_model() -> DelayModel:
    """Real technology delays (the library Section 4.2 says Longnail is
    intended to consume); the default for the scheduler and the driver."""
    from repro.eval.tech import TechLibrary  # deferred: avoids an import cycle

    return TechLibrary().delay_model()


@dataclasses.dataclass
class ScheduleResult:
    """A solved schedule for one lil graph."""

    graph: Graph
    problem: LongnailProblem
    engine: str
    cycle_time_ns: float
    chain_breakers: int

    @property
    def start_times(self) -> Dict[Operation, int]:
        return self.problem.start_time

    def stage_of(self, op: Operation) -> int:
        return self.problem.start_time[op]

    @property
    def makespan(self) -> int:
        return self.problem.makespan()

    @property
    def objective(self) -> int:
        return ilp.objective_value(self.problem)

    def interface_schedule(self) -> List[tuple]:
        """(interface name, operation, stage) for every interface op."""
        entries = []
        for op in self.graph.operations:
            name = lil.interface_name(op)
            if name is not None:
                entries.append((name, op, self.problem.start_time[op]))
        return entries


def _interface_operator_type(op: Operation, datasheet: VirtualDatasheet,
                             delay: float, always: bool) -> OperatorType:
    interface = lil.interface_name(op)
    assert interface is not None
    if op.name in ("lil.read_custreg", "lil.write_custreg"):
        timing = datasheet.custom_register_timing(
            write=op.name == "lil.write_custreg"
        )
    else:
        timing = datasheet.timing(interface)
    earliest, latest, latency = timing.earliest, timing.latest, timing.latency
    base = lil.INTERFACE_OF.get(op.name)
    if base in LIFTED_INTERFACES or op.name == "lil.write_custreg":
        latest = INFINITY
    if op.attr("spawn"):
        # Decoupled operations commit whenever they are ready.
        latest = INFINITY
    if always:
        # Always-blocks execute continuously in a single cycle (Section 4.4).
        earliest, latest, latency = 0, 0, 0
    return OperatorType(
        name=f"iface_{interface}_{op.name}",
        latency=latency,
        incoming_delay=delay if latency > 0 else delay,
        outgoing_delay=delay,
        earliest=earliest,
        latest=latest,
    )


def build_problem(graph: Graph, datasheet: VirtualDatasheet,
                  delay_model: Optional[DelayModel] = None,
                  cycle_time_ns: Optional[float] = None) -> LongnailProblem:
    """Construct the LongnailProblem for a lil graph (Table 2 modeling)."""
    delay_model = delay_model or default_delay_model()
    cycle_time = cycle_time_ns or datasheet.cycle_time_ns
    # Reserve the sequential overhead so scheduled stages meet timing.
    cycle_time = max(0.1, cycle_time - CLOCK_MARGIN_NS)
    always = graph.attributes.get("kind") == lil.KIND_ALWAYS
    problem = LongnailProblem()

    for op in graph.operations:
        if op.name == "lil.sink":
            continue
        delay = min(delay_model(op), cycle_time)
        if lil.is_interface_op(op):
            lot = _interface_operator_type(op, datasheet, delay, always)
        else:
            earliest, latest = (0, 0) if always else (0, INFINITY)
            lot = OperatorType(
                name=f"{op.name}_{op.results[0].width if op.results else 0}"
                     f"_d{delay:g}",
                latency=0,
                incoming_delay=delay,
                outgoing_delay=delay,
                earliest=earliest,
                latest=latest,
            )
        problem.add_operator_type(lot)
        problem.add_operation(op, lot.name)

    registered = set(problem.operations)
    for op in graph.operations:
        if op not in registered:
            continue
        for operand in op.operands:
            producer = operand.owner
            if producer is not None and producer in registered:
                problem.add_dependence(producer, op)

    # Serialize a load before a store to the same address space.
    reads = [op for op in graph.operations if op.name == "lil.read_mem"]
    writes = [op for op in graph.operations if op.name == "lil.write_mem"]
    for read in reads:
        for write in writes:
            problem.add_dependence(read, write)

    problem.check()

    breakers = compute_chain_breakers(problem, cycle_time)
    if always:
        # Always-blocks must execute within a single clock cycle; a chain
        # breaker means the combinational path exceeds the cycle time
        # (Section 4.4: solving "merely checks that the behavior can be
        # executed in a single clock cycle").
        if breakers:
            raise ScheduleError(
                f"always-block '{graph.name}': combinational path exceeds "
                f"the cycle time of {cycle_time:g} ns"
            )
    else:
        for src, dst in breakers:
            problem.add_dependence(src, dst, is_chain_breaker=True)
    return problem


class LongnailScheduler:
    """Schedules lil graphs against a core's virtual datasheet."""

    def __init__(self, datasheet: VirtualDatasheet,
                 delay_model: Optional[DelayModel] = None,
                 cycle_time_ns: Optional[float] = None,
                 engine: str = "auto"):
        self.datasheet = datasheet
        self.delay_model = delay_model or default_delay_model()
        self.cycle_time_ns = cycle_time_ns or datasheet.cycle_time_ns
        self.engine = engine

    def schedule(self, graph: Graph) -> ScheduleResult:
        problem = build_problem(
            graph, self.datasheet, self.delay_model, self.cycle_time_ns
        )
        try:
            engine = ilp.solve(problem, self.engine)
        except ScheduleError as err:
            if graph.attributes.get("kind") == lil.KIND_ALWAYS:
                raise ScheduleError(
                    f"always-block '{graph.name}' cannot execute in a single "
                    f"clock cycle of {self.cycle_time_ns:.2f} ns: {err}"
                ) from err
            raise
        compute_start_times_in_cycle(problem)
        problem.verify()
        breakers = sum(1 for d in problem.dependences if d.is_chain_breaker)
        return ScheduleResult(
            graph=graph,
            problem=problem,
            engine=engine,
            cycle_time_ns=self.cycle_time_ns,
            chain_breakers=breakers,
        )
