"""The Longnail scheduler: lil graph + virtual datasheet -> solved
LongnailProblem (paper Sections 4.2-4.4).

Building the problem:

* every lil interface operation is linked to an operator type whose
  ``earliest``/``latest``/``latency`` come from the core's virtual
  datasheet.  For the WrRD, RdMem and WrMem operator types ``latest`` is
  lifted to infinity, which is what later unlocks the tightly-coupled or
  decoupled variants (Section 4.2),
* non-interface (comb) operations get default windows [0, inf) and
  zero latency with propagation delays from a delay model (by default the
  paper's "uniform delays" assumption),
* chain-breaker edges computed against the core's cycle time split overly
  long combinational chains (Section 4.2),
* for always-blocks, all interface constraints are pinned to stage 0, so
  solving merely checks the behavior executes in a single clock cycle
  (Section 4.4).
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro.dialects import lil
from repro.ir.core import Graph, Operation
from repro.scaiev.datasheet import INFINITY, VirtualDatasheet
from repro.scheduling import ilp
from repro.scheduling.cache import (
    ScheduleCache,
    global_schedule_cache,
    schedule_fingerprint,
)
from repro.scheduling.chaining import (
    compute_chain_breakers,
    compute_start_times_in_cycle,
)
from repro.scheduling.fastpath import solve_fastpath
from repro.scheduling.problem import (
    LongnailProblem,
    OperatorType,
    ScheduleError,
)

DelayModel = Callable[[Operation], float]

#: Sub-interfaces whose 'latest' is lifted to infinity so the scheduler may
#: push them past their native window (Section 4.2).
LIFTED_INTERFACES = ("WrRD", "RdMem", "WrMem")

#: Operations that cost (essentially) no logic: wiring only.
FREE_OPS = ("comb.constant", "comb.extract", "comb.concat", "comb.replicate")

#: Clock-to-Q plus setup margin reserved out of every cycle (ns); matches
#: the sequential overhead the evaluation's timing analysis charges.
CLOCK_MARGIN_NS = 0.08


def uniform_delay_model(delay_ns: float = 1.25) -> DelayModel:
    """The paper's current simplification: uniform delays for logic and
    non-combinational sub-interface operations (Section 4.2)."""

    def model(op: Operation) -> float:
        if op.name in FREE_OPS or op.name == "lil.sink":
            return 0.0
        return delay_ns

    return model


def default_delay_model() -> DelayModel:
    """Real technology delays (the library Section 4.2 says Longnail is
    intended to consume); the default for the scheduler and the driver."""
    from repro.eval.tech import TechLibrary  # deferred: avoids an import cycle

    return TechLibrary().delay_model()


@dataclasses.dataclass
class SolveStats:
    """Per-graph solver instrumentation (surfaced in the batch metrics)."""

    engine: str                 # engine that actually ran
    operations: int
    dependences: int
    components: int             # weakly connected components solved
    cache_hits: int = 0         # components served from the schedule cache
    cache_misses: int = 0
    solve_seconds: float = 0.0
    verified: bool = False      # REPRO_SCHED_VERIFY cross-check ran

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "operations": self.operations,
            "dependences": self.dependences,
            "components": self.components,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solve_seconds": round(self.solve_seconds, 6),
            "verified": self.verified,
        }


@dataclasses.dataclass
class ScheduleResult:
    """A solved schedule for one lil graph."""

    graph: Graph
    problem: LongnailProblem
    engine: str
    cycle_time_ns: float
    chain_breakers: int
    stats: Optional[SolveStats] = None

    @property
    def start_times(self) -> Dict[Operation, int]:
        return self.problem.start_time

    def stage_of(self, op: Operation) -> int:
        return self.problem.start_time[op]

    @property
    def makespan(self) -> int:
        return self.problem.makespan()

    @property
    def objective(self) -> int:
        return ilp.objective_value(self.problem)

    def interface_schedule(self) -> List[tuple]:
        """(interface name, operation, stage) for every interface op."""
        entries = []
        for op in self.graph.operations:
            name = lil.interface_name(op)
            if name is not None:
                entries.append((name, op, self.problem.start_time[op]))
        return entries


def _interface_operator_type(op: Operation, datasheet: VirtualDatasheet,
                             delay: float, always: bool) -> OperatorType:
    interface = lil.interface_name(op)
    assert interface is not None
    if op.name in ("lil.read_custreg", "lil.write_custreg"):
        timing = datasheet.custom_register_timing(
            write=op.name == "lil.write_custreg"
        )
    else:
        timing = datasheet.timing(interface)
    earliest, latest, latency = timing.earliest, timing.latest, timing.latency
    base = lil.INTERFACE_OF.get(op.name)
    if base in LIFTED_INTERFACES or op.name == "lil.write_custreg":
        latest = INFINITY
    if op.attr("spawn"):
        # Decoupled operations commit whenever they are ready.
        latest = INFINITY
    if always:
        # Always-blocks execute continuously in a single cycle (Section 4.4).
        earliest, latest, latency = 0, 0, 0
    # Multi-cycle sub-interfaces (RdMem on a pipelined core, custom-register
    # files, ...) latch their request at the pipeline-stage boundary, so
    # they add no combinational depth to the chain computing their
    # operands; the interface's propagation delay is charged where it is
    # physically paid, on the result side.  Combinational sub-interfaces
    # keep the symmetric delay the chaining model requires.
    return OperatorType(
        name=f"iface_{interface}_{op.name}",
        latency=latency,
        incoming_delay=0.0 if latency > 0 else delay,
        outgoing_delay=delay,
        earliest=earliest,
        latest=latest,
    )


def build_problem(graph: Graph, datasheet: VirtualDatasheet,
                  delay_model: Optional[DelayModel] = None,
                  cycle_time_ns: Optional[float] = None) -> LongnailProblem:
    """Construct the LongnailProblem for a lil graph (Table 2 modeling)."""
    delay_model = delay_model or default_delay_model()
    cycle_time = cycle_time_ns or datasheet.cycle_time_ns
    # Reserve the sequential overhead so scheduled stages meet timing.
    cycle_time = max(0.1, cycle_time - CLOCK_MARGIN_NS)
    always = graph.attributes.get("kind") == lil.KIND_ALWAYS
    problem = LongnailProblem()

    for op in graph.operations:
        if op.name == "lil.sink":
            continue
        delay = min(delay_model(op), cycle_time)
        if lil.is_interface_op(op):
            lot = _interface_operator_type(op, datasheet, delay, always)
        else:
            earliest, latest = (0, 0) if always else (0, INFINITY)
            lot = OperatorType(
                name=f"{op.name}_{op.results[0].width if op.results else 0}"
                     f"_d{delay:g}",
                latency=0,
                incoming_delay=delay,
                outgoing_delay=delay,
                earliest=earliest,
                latest=latest,
            )
        problem.add_operator_type(lot)
        problem.add_operation(op, lot.name)

    registered = set(problem.operations)
    for op in graph.operations:
        if op not in registered:
            continue
        for operand in op.operands:
            producer = operand.owner
            if producer is not None and producer in registered:
                problem.add_dependence(producer, op)

    # Serialize loads before subsequent stores to the same address space:
    # each read is ordered before the first write that follows it, and the
    # writes are chained, which preserves the read-before-every-later-write
    # transitive ordering with O(reads + writes) edges instead of the
    # all-pairs O(reads x writes) blowup on memory-heavy ISAXes.
    pending_reads: List[Operation] = []
    previous_write: Optional[Operation] = None
    for op in graph.operations:
        if op.name == "lil.read_mem":
            pending_reads.append(op)
        elif op.name == "lil.write_mem":
            for read in pending_reads:
                problem.add_dependence(read, op)
            pending_reads.clear()
            if previous_write is not None:
                problem.add_dependence(previous_write, op)
            previous_write = op

    problem.check()

    breakers = compute_chain_breakers(problem, cycle_time)
    if always:
        # Always-blocks must execute within a single clock cycle; a chain
        # breaker means the combinational path exceeds the cycle time
        # (Section 4.4: solving "merely checks that the behavior can be
        # executed in a single clock cycle").
        if breakers:
            raise ScheduleError(
                f"always-block '{graph.name}': combinational path exceeds "
                f"the cycle time of {cycle_time:g} ns"
            )
    else:
        for src, dst in breakers:
            problem.add_dependence(src, dst, is_chain_breaker=True)
    return problem


def decompose(problem: LongnailProblem) -> List[LongnailProblem]:
    """Split a problem into its weakly connected components.

    The Figure 7 objective is a sum over operations and dependences, so
    components can be solved independently and merged; a wide CDFG (many
    parallel def-use trees) then pays per-component solver cost instead of
    the whole graph's.  Returns sub-problems preserving operation order;
    a single-component problem is returned as-is (no copy).
    """
    ops = problem.operations
    if not ops:
        return []
    index = {op: i for i, op in enumerate(ops)}
    parent = list(range(len(ops)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for dep in problem.dependences:
        a, b = find(index[dep.source]), find(index[dep.target])
        if a != b:
            parent[a] = b

    roots = {find(i) for i in range(len(ops))}
    if len(roots) == 1:
        return [problem]

    members: Dict[int, List[Hashable]] = {root: [] for root in roots}
    for i, op in enumerate(ops):
        members[find(i)].append(op)
    deps_of: Dict[int, List] = {root: [] for root in roots}
    for dep in problem.dependences:
        deps_of[find(index[dep.source])].append(dep)

    subs: List[LongnailProblem] = []
    for root in sorted(roots):
        sub = LongnailProblem()
        for op in members[root]:
            lot = problem.linked_operator_type(op)
            sub.add_operator_type(lot)
            sub.add_operation(op, lot.name)
        for dep in deps_of[root]:
            sub.add_dependence(dep.source, dep.target,
                               is_chain_breaker=dep.is_chain_breaker)
        subs.append(sub)
    return subs


def _verify_against_oracle(sub: LongnailProblem,
                           start_time: Dict[Hashable, int]) -> bool:
    """REPRO_SCHED_VERIFY=1: cross-check a fast-path (or cached) component
    solution against the MILP objective; raises on any gap."""
    if not ilp.HAVE_MILP:  # pragma: no cover - scipy is baked in
        return False
    oracle = ilp.solve_milp(sub)
    got = ilp.weighted_objective_of(sub, start_time)
    want = ilp.weighted_objective_of(sub, oracle)
    if abs(got - want) > 1e-6:
        raise ScheduleError(
            f"fast-path schedule is not optimal: weighted objective "
            f"{got:.6f}, MILP oracle found {want:.6f}"
        )
    return True


def _resolve_cache(cache: Union[ScheduleCache, None, bool]
                   ) -> Optional[ScheduleCache]:
    if cache is False:
        return None
    if cache is None:
        if os.environ.get("REPRO_SCHED_CACHE", "1") == "0":
            return None
        return global_schedule_cache()
    return cache


def solve_problem(problem: LongnailProblem, engine: str = "auto",
                  cache: Union[ScheduleCache, None, bool] = None,
                  fingerprint_salt: str = ""
                  ) -> SolveStats:
    """Solve a LongnailProblem in place through the full fast-path stack:
    component decomposition, the cross-sweep schedule cache, the selected
    engine, and (with ``REPRO_SCHED_VERIFY=1``) the MILP oracle.

    ``engine="auto"`` prefers the LP-free exact fast path; ``"milp"`` runs
    the Figure 7 formulation per component; ``"asap"`` keeps the heuristic
    baseline (neither decomposed nor cached — it is already linear-time).
    ``cache`` may be a :class:`ScheduleCache`, ``None`` (the process-wide
    default, unless ``REPRO_SCHED_CACHE=0``) or ``False`` (disabled).
    """
    begin = time.perf_counter()
    resolved = "fastpath" if engine == "auto" else engine
    if resolved not in ("fastpath", "milp", "asap"):
        raise ScheduleError(f"unknown scheduler engine {engine!r}")

    components = decompose(problem)
    stats = SolveStats(
        engine=resolved,
        operations=len(problem.operations),
        dependences=len(problem.dependences),
        components=len(components),
    )
    if resolved == "asap":
        ilp.solve(problem, "asap")
        stats.solve_seconds = time.perf_counter() - begin
        return stats

    verify = os.environ.get("REPRO_SCHED_VERIFY", "") == "1"
    live_cache = _resolve_cache(cache)
    merged: Dict[Hashable, int] = {}
    for sub in components:
        key = None
        if live_cache is not None:
            key = schedule_fingerprint(sub, salt=fingerprint_salt)
            hit = live_cache.get(key)
            if hit is not None:
                start_time = dict(zip(sub.operations, hit))
                stats.cache_hits += 1
                if verify:
                    stats.verified |= _verify_against_oracle(sub, start_time)
                merged.update(start_time)
                continue
            stats.cache_misses += 1
        if resolved == "milp":
            start_time = ilp.solve_milp(sub)
        else:
            start_time = solve_fastpath(sub)
            if verify:
                stats.verified |= _verify_against_oracle(sub, start_time)
        if key is not None:
            live_cache.put(key, [start_time[op] for op in sub.operations])
        merged.update(start_time)
    problem.start_time = merged
    stats.solve_seconds = time.perf_counter() - begin
    return stats


class LongnailScheduler:
    """Schedules lil graphs against a core's virtual datasheet."""

    def __init__(self, datasheet: VirtualDatasheet,
                 delay_model: Optional[DelayModel] = None,
                 cycle_time_ns: Optional[float] = None,
                 engine: str = "auto",
                 schedule_cache: Union[ScheduleCache, None, bool] = None,
                 fingerprint_salt: str = ""):
        self.datasheet = datasheet
        self.delay_model = delay_model or default_delay_model()
        self.cycle_time_ns = cycle_time_ns or datasheet.cycle_time_ns
        self.engine = engine
        self.schedule_cache = schedule_cache
        #: Extra cache-key component (e.g. the optimizer config) so cached
        #: schedules never leak across compile configurations.
        self.fingerprint_salt = fingerprint_salt

    def schedule(self, graph: Graph) -> ScheduleResult:
        problem = build_problem(
            graph, self.datasheet, self.delay_model, self.cycle_time_ns
        )
        try:
            stats = solve_problem(problem, self.engine,
                                  cache=self.schedule_cache,
                                  fingerprint_salt=self.fingerprint_salt)
        except ScheduleError as err:
            if graph.attributes.get("kind") == lil.KIND_ALWAYS:
                raise ScheduleError(
                    f"always-block '{graph.name}' cannot execute in a single "
                    f"clock cycle of {self.cycle_time_ns:.2f} ns: {err}"
                ) from err
            raise
        compute_start_times_in_cycle(problem)
        problem.verify()
        breakers = sum(1 for d in problem.dependences if d.is_chain_breaker)
        return ScheduleResult(
            graph=graph,
            problem=problem,
            engine=stats.engine,
            cycle_time_ns=self.cycle_time_ns,
            chain_breakers=breakers,
            stats=stats,
        )
