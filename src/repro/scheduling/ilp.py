"""The ILP formulation of the LongnailProblem (paper Figure 7).

Decision variables: a start time ``t_i`` per operation and a lifetime
``l_ij`` per dependence edge.  The multi-criteria objective minimizes the sum
of all start times (overall latency) plus all lifetimes (pipeline registers
in the ISAX module):

    minimize    sum_i t_i  +  sum_{i->j} l_ij
    subject to  t_i + latency_i          <= t_j      (C1, precedence)
                l_ij                     >= t_j - t_i (C2, lifetimes)
                earliest_i <= t_i <= latest_i         (C3, interfaces)
                t_i, l_ij integer, >= 0               (C4, domains)
                t_i + latency_i + 1      <= t_j      (C5, chain breakers)

The paper solves this with Cbc via OR-Tools; we use ``scipy.optimize.milp``
(HiGHS).  Because the constraint matrix is a network (difference-constraint)
matrix, the LP relaxation is integral, so any exact solver produces the same
optimum.  A pure-Python ASAP longest-path engine is provided as a fallback
and as the heuristic baseline for the scheduler ablation bench.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.scheduling.problem import (
    INFINITY,
    LongnailProblem,
    ScheduleError,
)

try:
    import numpy as np
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import lil_matrix

    HAVE_MILP = True
except ImportError:  # pragma: no cover - scipy is an install requirement
    HAVE_MILP = False


def _lifetime_weight(source: Hashable) -> float:
    """Width-proportional weight of a dependence edge's lifetime (bits
    carried across a cycle boundary), normalized to a 32-bit word."""
    results = getattr(source, "results", None)
    if results:
        return max(0.03125, results[0].width / 32.0)
    return 1.0


def solve_asap(problem: LongnailProblem) -> Dict[Hashable, int]:
    """Heuristic engine: as-soon-as-possible longest-path schedule honoring
    earliest bounds and chain breakers; raises if a latest bound cannot be
    met (ASAP is componentwise minimal, so failure implies infeasibility)."""
    preds: Dict[Hashable, List[Tuple[Hashable, int]]] = {
        op: [] for op in problem.operations
    }
    for dep in problem.dependences:
        extra = 1 if dep.is_chain_breaker else 0
        preds[dep.target].append((dep.source, extra))

    start: Dict[Hashable, int] = {}
    state: Dict[Hashable, int] = {}

    def visit(op: Hashable) -> int:
        if state.get(op) == 2:
            return start[op]
        if state.get(op) == 1:
            raise ScheduleError("cycle in dependence graph")
        state[op] = 1
        lot = problem.linked_operator_type(op)
        time = lot.earliest
        for pred, extra in preds[op]:
            time = max(time, visit(pred) + problem.latency(pred) + extra)
        if time > lot.latest:
            raise ScheduleError(
                f"infeasible: {op} cannot start before {time} but its "
                f"window closes at {lot.latest}"
            )
        state[op] = 2
        start[op] = time
        return time

    for op in problem.operations:
        visit(op)
    return start


def solve_milp(problem: LongnailProblem) -> Dict[Hashable, int]:
    """Exact engine: the Figure 7 ILP via scipy's HiGHS-based MILP solver."""
    if not HAVE_MILP:  # pragma: no cover
        raise ScheduleError("scipy.optimize.milp is unavailable")
    ops = problem.operations
    deps = problem.dependences
    n, m = len(ops), len(deps)
    if n == 0:
        return {}
    index = {op: i for i, op in enumerate(ops)}

    # Objective: sum of start times plus sum of lifetimes.  Lifetimes are
    # weighted by the carried value's width: the objective minimizes
    # pipeline register *bits* in the ISAX module, which is the quantity
    # Figure 7's lifetime term stands for.
    cost = np.ones(n + m)
    for k, dep in enumerate(deps):
        cost[n + k] = _lifetime_weight(dep.source)

    # A finite horizon keeps the solver comfortable.
    horizon = sum(problem.latency(op) + 1 for op in ops) + max(
        (problem.linked_operator_type(op).earliest for op in ops), default=0
    )

    lower = np.zeros(n + m)
    upper = np.full(n + m, float(horizon))
    for op, i in index.items():
        lot = problem.linked_operator_type(op)
        lower[i] = lot.earliest
        if lot.latest != INFINITY:
            upper[i] = min(upper[i], lot.latest)
        if lower[i] > upper[i]:
            raise ScheduleError(f"infeasible bounds for {op}")

    # Constraint rows: (C1/C5) t_i - t_j <= -(latency_i [+1]);
    #                  (C2)    t_j - t_i - l_ij <= 0.
    matrix = lil_matrix((2 * m, n + m))
    bound = np.zeros(2 * m)
    for k, dep in enumerate(deps):
        i, j = index[dep.source], index[dep.target]
        latency = problem.latency(dep.source) + (1 if dep.is_chain_breaker else 0)
        matrix[2 * k, i] = 1.0
        matrix[2 * k, j] = -1.0
        bound[2 * k] = -float(latency)
        matrix[2 * k + 1, j] = 1.0
        matrix[2 * k + 1, i] = -1.0
        matrix[2 * k + 1, n + k] = -1.0
        bound[2 * k + 1] = 0.0

    constraints = LinearConstraint(matrix.tocsr(), -np.inf, bound)
    result = milp(
        c=cost,
        constraints=constraints,
        bounds=Bounds(lower, upper),
        integrality=np.ones(n + m),
    )
    if not result.success:
        raise ScheduleError(f"ILP solver failed: {result.message}")
    values = result.x
    return {op: int(round(values[index[op]])) for op in ops}


def objective_value(problem: LongnailProblem) -> int:
    """Figure 7 objective of the current solution: sum of start times plus
    sum of (non-negative) lifetimes."""
    total = sum(problem.start_time[op] for op in problem.operations)
    for dep in problem.dependences:
        total += max(
            0, problem.start_time[dep.target] - problem.start_time[dep.source]
        )
    return total


def weighted_objective_of(problem: LongnailProblem,
                          start_time: Dict[Hashable, int]) -> float:
    """Weighted objective of an explicit solution (start times plus
    width-weighted lifetimes, i.e. pipeline-register bits / 32)."""
    total = float(sum(start_time[op] for op in problem.operations))
    for dep in problem.dependences:
        lifetime = max(
            0, start_time[dep.target] - start_time[dep.source]
        )
        total += _lifetime_weight(dep.source) * lifetime
    return total


def weighted_objective_value(problem: LongnailProblem) -> float:
    """The objective the exact engines actually minimize, evaluated on the
    problem's current solution."""
    return weighted_objective_of(problem, problem.start_time)


def solve(problem: LongnailProblem, engine: str = "auto") -> str:
    """Solve the problem in place; returns the engine actually used.

    ``auto`` prefers the LP-free exact fast path
    (:func:`repro.scheduling.fastpath.solve_fastpath`); ``milp`` keeps the
    Figure 7 formulation as a verification oracle and reference engine.
    """
    if engine == "auto":
        engine = "fastpath"
    if engine == "fastpath":
        from repro.scheduling.fastpath import solve_fastpath  # deferred: cycle
        problem.start_time = solve_fastpath(problem)
    elif engine == "milp":
        problem.start_time = solve_milp(problem)
    elif engine == "asap":
        problem.start_time = solve_asap(problem)
    else:
        raise ScheduleError(f"unknown scheduler engine {engine!r}")
    return engine
