"""LP-free exact engine for the LongnailProblem (the scheduler fast path).

The Figure 7 formulation has far more structure than a generic MILP.  Every
lifetime variable appears only as ``l_ij >= t_j - t_i`` with a positive
width weight, and precedence already forces ``t_j >= t_i``, so any optimum
makes C2 tight: ``l_ij = t_j - t_i``.  Substituting collapses the
objective to a per-operation linear form

    minimize  sum_i c_i * t_i,    c_i = 1 + w_in(i) - w_out(i)

over a pure difference-constraint system (C1/C3/C5).  Its constraint
matrix is a graph incidence matrix — totally unimodular — so the LP
optimum is integral and no branch-and-bound is ever needed.  Minimizing a
linear form over a difference-constraint polyhedron is the LP dual of an
uncapacitated min-cost flow, which this module solves exactly:

* the ASAP longest-path schedule is the componentwise-minimal feasible
  point and doubles as a dual-feasible initial potential function,
* at ASAP the tight constraints span an arborescence from the virtual
  root, so a bottom-up pass over it (:func:`_warm_start`) serves the
  bulk of the flow demand in linear time before any search runs,
* the remainder drains through primal-dual phases
  (:func:`_solve_flow`): flow is pushed away from operations with
  ``c_i < 0`` — ones whose outgoing values are wider than what they
  consume plus their own start-time cost — i.e. the algorithm *delays
  groups of operations exactly while the width-weighted register-bit
  saving exceeds the start-time cost*,
* on termination the node potentials are an optimal integral schedule
  whose weighted objective provably equals :func:`solve_milp`'s
  (complementary slackness + strong duality),
* a final longest-path pass over the flow-tight arcs canonicalizes the
  answer to the componentwise-earliest *optimal* schedule, which makes
  the engine deterministic and cache-friendly.

All arithmetic is integer: lifetime weights are multiples of 1/32
(width-proportional, one 32-bit word == 1.0), so scaling the node costs
by 32 keeps every flow supply integral.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.scheduling.ilp import _lifetime_weight, solve_asap
from repro.scheduling.problem import (
    INFINITY,
    LongnailProblem,
    ScheduleError,
)

#: Lifetime weights are multiples of 1/32; scaling by this keeps the
#: collapsed objective's node costs integral.
WEIGHT_SCALE = 32


def scaled_weight(op: Hashable) -> int:
    """``_lifetime_weight`` as an exact integer (bits, clamped to >= 1)."""
    return round(_lifetime_weight(op) * WEIGHT_SCALE)


def _constraint_arcs(problem: LongnailProblem,
                     index: Dict[Hashable, int],
                     root: int) -> Dict[Tuple[int, int], int]:
    """All difference constraints ``t_v - t_u >= gap`` as a (u, v) -> gap
    map.  Parallel dependence edges only constrain through their largest
    gap; window bounds become arcs to/from the virtual root (pinned at 0).
    """
    gaps: Dict[Tuple[int, int], int] = {}
    for dep in problem.dependences:
        u, v = index[dep.source], index[dep.target]
        gap = problem.latency(dep.source) + (1 if dep.is_chain_breaker else 0)
        if gaps.get((u, v), -1) < gap:
            gaps[(u, v)] = gap
    for op, i in index.items():
        lot = problem.linked_operator_type(op)
        gaps[(root, i)] = lot.earliest
        if lot.latest != INFINITY:
            gaps[(i, root)] = -int(lot.latest)
    return gaps


def solve_fastpath(problem: LongnailProblem) -> Dict[Hashable, int]:
    """Exact engine without an LP solver; matches ``solve_milp``'s weighted
    objective and returns the componentwise-earliest optimal schedule."""
    ops = problem.operations
    if not ops:
        return {}
    # ASAP validates feasibility (window conflicts raise here with a
    # readable message) and seeds the dual potentials below.
    asap = solve_asap(problem)

    n = len(ops)
    root = n
    index = {op: i for i, op in enumerate(ops)}

    # Node costs of the collapsed objective, scaled to integers.  The
    # virtual root absorbs the balance so supplies sum to zero.
    node_cost = [WEIGHT_SCALE] * n + [0]
    for dep in problem.dependences:
        w = scaled_weight(dep.source)
        node_cost[index[dep.target]] += w
        node_cost[index[dep.source]] -= w
    node_cost[root] = -sum(node_cost[:n])

    gaps = _constraint_arcs(problem, index, root)

    # Residual network (standard paired-arc layout: arc a and a ^ 1 are
    # each other's reverses).  Constraint arcs are uncapacitated.
    head: List[int] = []
    cost: List[int] = []
    cap: List[float] = []
    adj: List[List[int]] = [[] for _ in range(n + 1)]
    arc_id: Dict[Tuple[int, int], int] = {}

    for (u, v), gap in gaps.items():
        arc_id[(u, v)] = len(head)
        adj[u].append(len(head))
        head.append(v)
        cost.append(-gap)
        cap.append(float("inf"))
        adj[v].append(len(head))
        head.append(u)
        cost.append(gap)
        cap.append(0)

    # Dual supplies: node k must ship -c_k units.  Potentials from any
    # feasible primal point are dual-feasible; use ASAP (root pinned at 0).
    excess = [-c for c in node_cost]
    pot = [0] * (n + 1)
    for op, i in index.items():
        pot[i] = -asap[op]

    _warm_start(excess, pot, gaps, arc_id, cap, root)
    _solve_flow(excess, pot, head, cost, cap, adj)

    return _earliest_optimal(problem, index, root, gaps, head, cap, adj)


def _warm_start(excess: List[int], pot: List[int],
                gaps: Dict[Tuple[int, int], int],
                arc_id: Dict[Tuple[int, int], int],
                cap: List[float], root: int) -> None:
    """Serve the bulk of the demand without any shortest-path search.

    At ASAP, every operation is tight on at least one incoming constraint
    — a critical predecessor or its ``earliest`` bound — so the tight
    (zero reduced-cost) arcs contain a spanning arborescence rooted at the
    virtual root.  Aggregating each subtree's net demand bottom-up and
    pushing it down the tree is an admissible pseudo-flow that satisfies
    every deficit in O(n + m); only subtrees with a clamped *surplus*
    (wide producers whose savings must flow against the tree) are left
    for the successive-shortest-path loop, which is usually none.
    """
    total = len(excess)
    parent = [-1] * total
    parent_arc = [-1] * total
    for (u, v), gap in gaps.items():
        # Tightness in potential form: reduced cost 0 <=> the constraint
        # t_v - t_u >= gap holds with equality at ASAP (pot = -asap).
        if v != root and parent[v] < 0 and pot[u] - pot[v] == gap:
            parent[v] = u
            parent_arc[v] = arc_id[(u, v)]
    children: List[List[int]] = [[] for _ in range(total)]
    for v in range(total):
        if v != root:
            assert parent[v] >= 0, "ASAP left a node with no tight arc"
            children[parent[v]].append(v)

    order: List[int] = []
    stack = [root]
    while stack:
        u = stack.pop()
        order.append(u)
        stack.extend(children[u])

    pushed_up = [0] * total     # demand each node forwards to its parent
    for v in reversed(order):
        if v == root:
            continue
        demand = -excess[v] + pushed_up[v]
        if demand > 0:
            a = parent_arc[v]
            cap[a ^ 1] += demand    # forward cap is infinite; flow shows
            pushed_up[parent[v]] += demand  # up as reverse capacity
            excess[v] = 0
        else:
            excess[v] = -demand     # clamped surplus, handled by SSP
    excess[root] -= pushed_up[root]


def _solve_flow(excess: List[int], pot: List[int], head: List[int],
                cost: List[int], cap: List[float],
                adj: List[List[int]]) -> None:
    """Drain all remaining excess with primal-dual phases: one multi-source
    Dijkstra prices every node at once, then a blocking-flow pass pushes
    along *all* the zero-reduced-cost shortest paths it uncovered, so many
    source/deficit pairs settle per shortest-path computation instead of
    one.  A phase whose DFS finds nothing (possible, since it skips arcs
    closing zero-cost cycles) falls back to a single classic augmentation,
    which guarantees progress and hence termination."""
    total = len(adj)
    while True:
        sources = [v for v in range(total) if excess[v] > 0]
        if not sources:
            return
        dist: List[Optional[int]] = [None] * total
        finalized = [False] * total
        heap: List[Tuple[int, int]] = [(0, s) for s in sources]
        for s in sources:
            dist[s] = 0
        heapq.heapify(heap)
        while heap:
            d, u = heapq.heappop(heap)
            if finalized[u]:
                continue
            finalized[u] = True
            for a in adj[u]:
                if cap[a] <= 0:
                    continue
                v = head[a]
                if finalized[v]:
                    continue
                nd = d + cost[a] + pot[u] - pot[v]
                if dist[v] is None or nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        if not any(finalized[v] and excess[v] < 0 for v in range(total)):
            # pragma: no cover - guarded by ASAP feasibility
            raise ScheduleError(
                "fast-path scheduler: no augmenting path (internal "
                "error, the problem should be bounded)"
            )
        horizon = max(d for d, f in zip(dist, finalized) if f)
        for v in range(total):
            dv = dist[v]
            pot[v] += dv if finalized[v] and dv is not None else horizon
        if _blocking_flow(sources, excess, pot, head, cost, cap, adj) == 0:
            # pragma: no cover - cycle-skipping starved the DFS
            for s in sources:
                if excess[s] > 0:
                    _augment(s, excess, pot, head, cost, cap, adj)
                    break


def _blocking_flow(sources: List[int], excess: List[int], pot: List[int],
                   head: List[int], cost: List[int], cap: List[float],
                   adj: List[List[int]]) -> int:
    """Push as much excess as an iterative DFS finds through the admissible
    (zero reduced-cost, positive-capacity) arcs; current-arc pointers make
    the pass near-linear.  Arcs leading back onto the active path (zero
    reduced-cost 2-cycles between an arc and its pushed reverse) are
    skipped, which may leave flow for the next phase — never wrong, at
    worst one extra Dijkstra."""
    total_pushed = 0
    ptr = [0] * len(adj)
    onpath = [False] * len(adj)
    for s in sources:
        exhausted = False
        while excess[s] > 0 and not exhausted:
            path: List[int] = []
            onpath[s] = True
            u = s
            while True:
                if excess[u] < 0:
                    amount = min(excess[s], -excess[u])
                    for a in path:
                        if cap[a] < amount:
                            amount = int(cap[a])
                    for a in path:
                        cap[a] -= amount
                        cap[a ^ 1] += amount
                        onpath[head[a]] = False
                    onpath[s] = False
                    excess[s] -= amount
                    excess[u] += amount
                    total_pushed += amount
                    break
                advanced = False
                while ptr[u] < len(adj[u]):
                    a = adj[u][ptr[u]]
                    v = head[a]
                    if (cap[a] > 0 and not onpath[v]
                            and cost[a] + pot[u] - pot[v] == 0):
                        path.append(a)
                        onpath[v] = True
                        u = v
                        advanced = True
                        break
                    ptr[u] += 1
                if advanced:
                    continue
                if u == s:
                    onpath[s] = False
                    exhausted = True
                    break
                a = path.pop()
                onpath[u] = False
                u = head[a ^ 1]
                ptr[u] += 1
    return total_pushed


def _augment(source: int, excess: List[int], pot: List[int],
             head: List[int], cost: List[int], cap: List[float],
             adj: List[List[int]]) -> int:
    """One successive-shortest-path augmentation from ``source`` to the
    nearest node with a deficit; returns that node (or -1)."""
    total = len(adj)
    dist: List[Optional[int]] = [None] * total
    parent_arc = [-1] * total
    finalized = [False] * total
    dist[source] = 0
    heap: List[Tuple[int, int]] = [(0, source)]
    target = -1
    while heap:
        d, u = heapq.heappop(heap)
        if finalized[u]:
            continue
        finalized[u] = True
        if excess[u] < 0:
            target = u
            break
        for a in adj[u]:
            if cap[a] <= 0:
                continue
            v = head[a]
            if finalized[v]:
                continue
            nd = d + cost[a] + pot[u] - pot[v]
            if dist[v] is None or nd < dist[v]:
                dist[v] = nd
                parent_arc[v] = a
                heapq.heappush(heap, (nd, v))
    if target < 0:
        return -1
    reach = dist[target]
    assert reach is not None
    # Keep all residual reduced costs non-negative for the next round.
    for v in range(total):
        dv = dist[v]
        pot[v] += reach if dv is None or dv > reach else dv

    # Bottleneck: the source's excess, the target's deficit, and any
    # reverse (finite) residual capacity along the path.
    amount = min(excess[source], -excess[target])
    v = target
    while v != source:
        a = parent_arc[v]
        amount = min(amount, cap[a])
        v = head[a ^ 1]
    amount = int(amount)
    v = target
    while v != source:
        a = parent_arc[v]
        cap[a] -= amount
        cap[a ^ 1] += amount
        v = head[a ^ 1]
    excess[source] -= amount
    excess[target] += amount
    return target


def _earliest_optimal(problem: LongnailProblem, index: Dict[Hashable, int],
                      root: int, gaps: Dict[Tuple[int, int], int],
                      head: List[int], cap: List[float],
                      adj: List[List[int]]) -> Dict[Hashable, int]:
    """Canonicalize the optimum: by complementary slackness the optimal
    face is exactly the feasible points that keep every flow-carrying arc
    tight, so adding the matching equalities and taking longest paths from
    the root yields the componentwise-earliest optimal schedule."""
    total = len(adj)
    relaxation: List[Tuple[int, int, int]] = [
        (u, v, gap) for (u, v), gap in gaps.items()
    ]
    for u in range(total):
        for a in adj[u]:
            # Even arc ids are the forward constraint arcs; flow on one
            # shows up as capacity on its odd-id reverse.
            if a % 2 == 0 and cap[a ^ 1] > 0:
                (cu, cv) = (u, head[a])
                relaxation.append((cv, cu, -gaps[(cu, cv)]))

    dist: List[float] = [float("-inf")] * total
    dist[root] = 0
    for _ in range(total + 1):
        changed = False
        for u, v, gap in relaxation:
            if dist[u] != float("-inf") and dist[u] + gap > dist[v]:
                dist[v] = dist[u] + gap
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - the face is non-empty by construction
        raise ScheduleError(
            "fast-path scheduler: optimal face has no earliest point "
            "(internal error)"
        )
    return {op: int(dist[i]) for op, i in index.items()}
