"""CoreDSL sources of the benchmark ISAXes (paper Table 3)."""

AUTOINC = '''
import "RV32I.core_desc"

// Auto-incrementing load/store instructions and setup, using a custom
// register to track the current address (Table 3).
InstructionSet autoinc extends RV32I {
  architectural_state {
    register unsigned<32> ADDR;
  }
  instructions {
    setup_ai {
      encoding: 12'd0 :: rs1[4:0] :: 3'b000 :: 5'd0 :: 7'b0101011;
      behavior: {
        ADDR = X[rs1];
      }
    }
    lw_ai {
      encoding: 12'd0 :: 5'd0 :: 3'b001 :: rd[4:0] :: 7'b0101011;
      behavior: {
        X[rd] = MEM[ADDR+3:ADDR];
        ADDR = (unsigned<32>) (ADDR + 4);
      }
    }
    sw_ai {
      encoding: 7'd0 :: rs2[4:0] :: 5'd0 :: 3'b010 :: 5'd0 :: 7'b0101011;
      behavior: {
        MEM[ADDR+3:ADDR] = X[rs2];
        ADDR = (unsigned<32>) (ADDR + 4);
      }
    }
  }
}
'''

DOTPROD = '''
import "RV32I.core_desc"

// 4x8bit dot-product ISAX (paper Figure 1).
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] ::
                  3'd0 :: rd[4:0] :: 7'b0001011;
        behavior: {
          signed<32> res = 0;
          for (int i = 0; i < 32; i += 8) {
            signed<16> prod = (signed) X[rs1][i+7:i] *
                              (signed) X[rs2][i+7:i];
            res += prod;
          }
          X[rd] = (unsigned) res;
        }
    }
  }
}
'''

IJMP = '''
import "RV32I.core_desc"

// Read the next PC from memory (Table 3: PC and main memory access).
InstructionSet ijmp extends RV32I {
  instructions {
    ijmp {
      encoding: 12'd0 :: rs1[4:0] :: 3'b011 :: 5'd0 :: 7'b0001011;
      behavior: {
        unsigned<32> a = X[rs1];
        PC = MEM[a+3:a];
      }
    }
  }
}
'''

SBOX = '''
import "RV32I.core_desc"

// Lookup from the AES S-Box held in a constant custom register
// (Table 3: constant custom register).
InstructionSet sbox extends RV32I {
  architectural_state {
    const unsigned<8> SBOX[256] = {
      0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
      0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
      0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
      0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
      0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
      0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
      0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
      0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
      0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
      0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
      0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
      0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
      0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
      0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
      0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
      0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
      0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
      0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
      0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
      0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
      0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
      0xb0, 0x54, 0xbb, 0x16
    };
  }
  instructions {
    sbox {
      encoding: 12'd0 :: rs1[4:0] :: 3'b100 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) SBOX[X[rs1][7:0]];
      }
    }
  }
}
'''

SPARKLE = '''
import "RV32I.core_desc"

// One Alzette ARX-box of the Sparkle suite for lightweight (post-quantum
// era) symmetric cryptography (Table 3: R-type instructions, bit
// manipulations, helper functions).  alzette_x returns the new x word and
// alzette_y the new y word after the four ARX rounds with round constant c.
InstructionSet sparkle extends RV32I {
  functions {
    unsigned<32> rotr(unsigned<32> v, unsigned<5> amount) {
      return (unsigned<32>) ((v >> amount) |
                             (v << (unsigned<6>) (32 - amount)));
    }
    unsigned<32> alzette_half(unsigned<32> xin, unsigned<32> yin,
                              unsigned<1> want_y) {
      unsigned<32> c = 0xB7E15162;
      unsigned<32> x = xin;
      unsigned<32> y = yin;
      x = (unsigned<32>) (x + rotr(y, 31));
      y = y ^ rotr(x, 24);
      x = x ^ c;
      x = (unsigned<32>) (x + rotr(y, 17));
      y = y ^ rotr(x, 17);
      x = x ^ c;
      x = (unsigned<32>) (x + y);
      y = y ^ rotr(x, 31);
      x = x ^ c;
      x = (unsigned<32>) (x + rotr(y, 24));
      y = y ^ rotr(x, 16);
      x = x ^ c;
      return want_y ? y : x;
    }
  }
  instructions {
    alzette_x {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0101011;
      behavior: {
        X[rd] = alzette_half(X[rs1], X[rs2], 1'b0);
      }
    }
    alzette_y {
      encoding: 7'd1 :: rs2[4:0] :: rs1[4:0] :: 3'b101 :: rd[4:0] :: 7'b0101011;
      behavior: {
        X[rd] = alzette_half(X[rs1], X[rs2], 1'b1);
      }
    }
  }
}
'''

_SQRT_BODY = '''
          unsigned<64> acc = X[rs1] :: 32'd0;
          unsigned<34> rem = 0;
          unsigned<32> root = 0;
          for (int i = 31; i >= 0; i -= 1) {
            rem = (unsigned<34>) ((rem :: 2'b00)
                  | (unsigned<2>) (acc >> (unsigned<6>) (2 * i)));
            unsigned<34> trial = (unsigned<34>) (root :: 2'b01);
            if (trial <= rem) {
              rem = (unsigned<34>) (rem - trial);
              root = (unsigned<32>) (root :: 1'b1);
            } else {
              root = (unsigned<32>) (root :: 1'b0);
            }
          }
'''

SQRT_TIGHTLY = f'''
import "RV32I.core_desc"

// CORDIC-style fix-point square root: 32 unrolled shift-subtract
// iterations computing sqrt(x) in Q16.16 (Table 3: loop unrolling,
// tightly-coupled interfaces).
InstructionSet sqrt_tightly extends RV32I {{
  instructions {{
    fsqrt {{
      encoding: 12'd0 :: rs1[4:0] :: 3'b110 :: rd[4:0] :: 7'b0001011;
      behavior: {{
{_SQRT_BODY}
        X[rd] = root;
      }}
    }}
  }}
}}
'''

SQRT_DECOUPLED = f'''
import "RV32I.core_desc"

// Same square-root behavior, but the long-running computation is wrapped
// in a spawn-block so other instructions may overtake it in the base
// pipeline (paper Figure 4; Table 3: spawn-block, decoupled interfaces).
InstructionSet sqrt_decoupled extends RV32I {{
  instructions {{
    fsqrt {{
      encoding: 12'd0 :: rs1[4:0] :: 3'b111 :: rd[4:0] :: 7'b0001011;
      behavior: {{
        unsigned<32> operand = X[rs1];
        spawn {{
          unsigned<64> acc = operand :: 32'd0;
          unsigned<34> rem = 0;
          unsigned<32> root = 0;
          for (int i = 31; i >= 0; i -= 1) {{
            rem = (unsigned<34>) ((rem :: 2'b00)
                  | (unsigned<2>) (acc >> (unsigned<6>) (2 * i)));
            unsigned<34> trial = (unsigned<34>) (root :: 2'b01);
            if (trial <= rem) {{
              rem = (unsigned<34>) (rem - trial);
              root = (unsigned<32>) (root :: 1'b1);
            }} else {{
              root = (unsigned<32>) (root :: 1'b0);
            }}
          }}
          X[rd] = root;
        }}
      }}
    }}
  }}
}}
'''

ZOL = '''
import "RV32I.core_desc"

// Zero-overhead loop inspired by the PULP extensions (paper Figure 3).
// Loop bounds and counter are modeled as custom registers; the redirect
// logic runs in an always-block in parallel to the pipeline.
InstructionSet zol extends RV32I {
  architectural_state {
    register unsigned<32> START_PC, END_PC, COUNT;
  }
  instructions {
    setup_zol {
      encoding: uimmL[11:0] :: uimmS[4:0] :: 3'b101
                 :: 5'b00000 :: 7'b0001011;
      behavior:
      {
        START_PC = (unsigned<32>) (PC + 4);
        END_PC =
           (unsigned<32>) (PC + (uimmS :: 1'b0));
        COUNT = uimmL;
      }
    }
  }
  always {
    zol {
      // program counter (`PC`) defined in RV32I
      if (COUNT != 0 && END_PC == PC) {
        PC = START_PC;
        --COUNT;
      }
    }
  }
}
'''

#: Table 3, in the paper's row order.  ``autoinc+zol`` is the combination
#: evaluated in Table 4 and Section 5.5.
ALL_ISAXES = {
    "autoinc": AUTOINC,
    "dotprod": DOTPROD,
    "ijmp": IJMP,
    "sbox": SBOX,
    "sparkle": SPARKLE,
    "sqrt_tightly": SQRT_TIGHTLY,
    "sqrt_decoupled": SQRT_DECOUPLED,
    "zol": ZOL,
}


def isax_source(name: str) -> str:
    """CoreDSL source of one benchmark ISAX by Table 3 name."""
    if name not in ALL_ISAXES:
        raise KeyError(
            f"unknown ISAX {name!r}; available: {', '.join(ALL_ISAXES)}"
        )
    return ALL_ISAXES[name]
