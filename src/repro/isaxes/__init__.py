"""The benchmark ISAXes of paper Table 3, as CoreDSL source.

=================  =============================================================
ISAX               Demonstrates
=================  =============================================================
autoinc            Custom register and main memory access
dotprod            Loop + bit ranges concisely describing SIMD behavior (Fig. 1)
ijmp               PC and main memory access
sbox               Constant custom register (ROM)
sparkle            R-type instructions, bit manipulations, helper functions
sqrt_tightly       Loop unrolling, tightly-coupled interfaces
sqrt_decoupled     spawn-block, decoupled interfaces
zol                PC and custom register access in an always-block (Fig. 3)
=================  =============================================================

``autoinc + zol`` (the Table 4 combination row and the Section 5.5 case
study) is obtained by compiling both sources for the same core and
integrating them together.

Custom opcode usage is coordinated so any subset of these ISAXes can be
integrated into one core without encoding conflicts: most use *custom-0*
(0001011) with distinct funct3 codes; ``autoinc`` uses *custom-1* (0101011).
"""

from repro.isaxes.sources import (
    ALL_ISAXES,
    AUTOINC,
    DOTPROD,
    IJMP,
    SBOX,
    SPARKLE,
    SQRT_DECOUPLED,
    SQRT_TIGHTLY,
    ZOL,
    isax_source,
)

__all__ = [
    "ALL_ISAXES",
    "AUTOINC",
    "DOTPROD",
    "IJMP",
    "SBOX",
    "SPARKLE",
    "SQRT_DECOUPLED",
    "SQRT_TIGHTLY",
    "ZOL",
    "isax_source",
]
