"""Load generator for the long-lived compile server.

Drives a compile server (an in-process one by default, or a running one
via ``--url``) through the traffic patterns the ROADMAP's scale story
needs, measuring each and writing one JSON artifact
(``benchmarks/out/bench_compile_server.json``):

1. **coalesce burst** — G identical concurrent requests per cell, made
   unmistakably fresh with a nonce comment, so every group must collapse
   to one execution (asserts a nonzero coalesce count and >= the expected
   floor),
2. **warm storm** — N mixed-priority requests across the full 8 ISAXes x
   5 cores grid with bounded concurrency; after first touch every repeat
   is a warm-tier hit, and the benchmark asserts 100% success — then a
   low-concurrency **warm probe** over the now-warm grid asserts a
   warm-cache p50 in the low milliseconds (storm-concurrency wall times
   measure client-side queueing, not cache latency),
3. **back-pressure probe** (in-process mode) — a deliberately tiny server
   (queue depth 4, 1 worker) overloaded with unique jobs must reject the
   excess with 429 + ``retry_after_s`` instead of buffering unboundedly,
4. **parity** — server-mode artifacts must be byte-identical to what
   ``repro-longnail batch`` / :func:`run_compile_payload` produces.

``--smoke`` is the CI gate: >= 50 concurrent mixed-priority requests,
same assertions, small enough for a PR check.

Usage::

    PYTHONPATH=src python benchmarks/bench_compile_server.py --smoke
    PYTHONPATH=src python benchmarks/bench_compile_server.py \
        --url http://127.0.0.1:8080 --requests 5000 --concurrency 200
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import time
import uuid
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.isaxes import ALL_ISAXES                      # noqa: E402
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES  # noqa: E402
from repro.server import (                               # noqa: E402
    CompileServer,
    CompileServerApp,
    CompileServerClient,
    CompileServerError,
)
from repro.service.executor import run_compile_payload   # noqa: E402
from repro.service.jobs import CompileJob                # noqa: E402

OUT_DIR = pathlib.Path(__file__).parent / "out"
GRID_CORES = list(CORES) + list(EXPERIMENTAL_CORES)
PRIORITY_CYCLE = ("interactive", "batch", "background")


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _summary(samples_ms: List[float]) -> dict:
    return {
        "count": len(samples_ms),
        "p50_ms": round(_percentile(samples_ms, 0.50), 3),
        "p90_ms": round(_percentile(samples_ms, 0.90), 3),
        "p99_ms": round(_percentile(samples_ms, 0.99), 3),
        "max_ms": round(max(samples_ms), 3) if samples_ms else 0.0,
    }


async def _coalesce_burst(client: CompileServerClient, cells, group: int,
                          nonce: str) -> dict:
    """Fire ``group`` identical concurrent requests per cell; nonce-fresh
    sources guarantee they cannot be cache hits, so all but one per cell
    must coalesce."""
    before = (await client.metrics())["server"]["counters"]

    async def one(index: int, isax: str, core: str) -> dict:
        source = ALL_ISAXES[isax] + f"\n// bench nonce {nonce}\n"
        return await client.compile(
            source=source, isax=isax, core=core,
            priority=PRIORITY_CYCLE[index % len(PRIORITY_CYCLE)],
            wait=True, include_result=False)

    begin = time.perf_counter()
    jobs = await asyncio.gather(*[
        one(index, isax, core)
        for isax, core in cells
        for index in range(group)
    ])
    seconds = time.perf_counter() - begin
    after = (await client.metrics())["server"]["counters"]
    coalesced = after["coalesced"] - before["coalesced"]
    executions = after["executions"] - before["executions"]
    return {
        "cells": len(cells),
        "group_size": group,
        "requests": len(jobs),
        "ok": sum(1 for j in jobs if j["state"] == "ok"),
        "coalesced": coalesced,
        "executions": executions,
        "seconds": round(seconds, 3),
    }


async def _warm_storm(client: CompileServerClient, cells, requests: int,
                      concurrency: int) -> dict:
    semaphore = asyncio.Semaphore(concurrency)
    latencies_ms: List[float] = []
    warm_ms: List[float] = []
    failures: List[str] = []
    retried_429 = 0

    async def one(index: int) -> None:
        nonlocal retried_429
        isax, core = cells[index % len(cells)]
        priority = PRIORITY_CYCLE[index % len(PRIORITY_CYCLE)]
        async with semaphore:
            begin = time.perf_counter()
            for _attempt in range(6):
                try:
                    job = await client.compile(
                        isax=isax, core=core, priority=priority,
                        wait=True, include_result=False)
                    break
                except CompileServerError as err:
                    if err.status != 429:
                        failures.append(f"{isax}/{core}: {err}")
                        return
                    retried_429 += 1
                    await asyncio.sleep(err.retry_after_s or 0.1)
            else:
                failures.append(f"{isax}/{core}: still 429 after retries")
                return
            elapsed_ms = (time.perf_counter() - begin) * 1000.0
            if job["state"] != "ok":
                failures.append(f"{isax}/{core}: {job.get('error')}")
                return
            latencies_ms.append(elapsed_ms)
            if job.get("cached"):
                warm_ms.append(elapsed_ms)

    begin = time.perf_counter()
    await asyncio.gather(*[one(index) for index in range(requests)])
    seconds = time.perf_counter() - begin
    return {
        "requests": requests,
        "concurrency": concurrency,
        "ok": len(latencies_ms),
        "failures": failures,
        "backpressure_retries": retried_429,
        "seconds": round(seconds, 3),
        "throughput_rps": round(len(latencies_ms) / seconds, 1),
        "latency": _summary(latencies_ms),
        "warm_latency": _summary(warm_ms),
    }


async def _backpressure_probe(nonce: str) -> dict:
    """Overload a deliberately tiny in-process server with unique jobs —
    the bounded queue must answer 429 with a retry hint."""
    core = CompileServer(workers=1, backend="thread", max_queue_depth=4,
                         memory_entries=0)
    app = CompileServerApp(core)
    host, port = await app.start("127.0.0.1", 0)
    client = CompileServerClient(f"http://{host}:{port}")
    accepted = rejected = 0
    retry_hints: List[float] = []
    try:
        async def one(index: int) -> None:
            nonlocal accepted, rejected
            source = (ALL_ISAXES["dotprod"]
                      + f"\n// overload {nonce} {index}\n")
            try:
                await client.compile(source=source, isax="dotprod",
                                     core="VexRiscv", wait=False,
                                     include_result=False)
                accepted += 1
            except CompileServerError as err:
                if err.status == 429:
                    rejected += 1
                    if err.retry_after_s:
                        retry_hints.append(err.retry_after_s)
                else:
                    raise

        await asyncio.gather(*[one(index) for index in range(30)])
        healthz = await client.healthz()
    finally:
        await app.close(drain=True)
    return {
        "offered": 30,
        "accepted": accepted,
        "rejected_429": rejected,
        "retry_after_hint_s": retry_hints[0] if retry_hints else None,
        "queue_depth_limit": 4,
        "healthz_after": healthz,
    }


async def _parity_check(client: CompileServerClient, cells) -> dict:
    """Server artifacts must match run_compile_payload byte for byte."""
    checked = []
    for isax, core in cells:
        job = await client.compile(isax=isax, core=core, wait=True,
                                   include_result=True)
        local = run_compile_payload(CompileJob(
            isax=isax, source=ALL_ISAXES[isax], core=core).to_payload())
        identical = (job["result"]["verilog"] == local["verilog"]
                     and job["result"]["config_yaml"]
                     == local["config_yaml"])
        checked.append({"isax": isax, "core": core,
                        "identical": identical})
    return {"cells": checked,
            "all_identical": all(c["identical"] for c in checked)}


async def run_benchmark(args: argparse.Namespace) -> dict:
    app: Optional[CompileServerApp] = None
    if args.url:
        url = args.url
    else:
        # "auto" fans compiles out to worker *processes*: CPU-bound
        # scheduling must not hold the GIL under the event loop, or warm
        # cache hits queue behind it.
        core = CompileServer(workers=args.workers, backend="auto",
                             max_queue_depth=args.queue_depth)
        app = CompileServerApp(core)
        host, port = await app.start("127.0.0.1", 0)
        url = f"http://{host}:{port}"

    client = CompileServerClient(url)
    await client.wait_ready()
    nonce = uuid.uuid4().hex

    grid: List[Tuple[str, str]] = [
        (isax, core_name)
        for isax in sorted(ALL_ISAXES)
        for core_name in GRID_CORES
    ]
    try:
        burst = await _coalesce_burst(
            client, grid[:args.burst_cells], group=args.burst_group,
            nonce=nonce)
        storm = await _warm_storm(client, grid, requests=args.requests,
                                  concurrency=args.concurrency)
        # Warm-hit latency measured without self-induced client queueing:
        # at storm concurrency the wall time is dominated by waiting for
        # the loop to service the other in-flight connections, so the p50
        # assertion uses a modest-concurrency probe over the now-warm grid.
        probe = await _warm_storm(client, grid, requests=args.probe_requests,
                                  concurrency=8)
        parity = await _parity_check(client, [
            ("dotprod", "VexRiscv"), ("zol", "ORCA"), ("sbox", "CVA5"),
        ])
        overload = None
        if not args.url or args.overload:
            overload = await _backpressure_probe(nonce)
        metrics = await client.metrics()
    finally:
        if app is not None:
            await app.close(drain=True)

    bench: Dict[str, object] = {
        "bench": "compile_server",
        "smoke": args.smoke,
        "url": "in-process" if app is not None else args.url,
        "grid_cells": len(grid),
        "coalesce_burst": burst,
        "warm_storm": storm,
        "warm_probe": probe,
        "backpressure": overload,
        "parity": parity,
        "server_metrics": metrics.get("server"),
        "cache": metrics.get("cache"),
    }

    failures: List[str] = []
    if storm["failures"]:
        failures.append(
            f"{len(storm['failures'])} request(s) failed: "
            + "; ".join(storm["failures"][:3]))
    if burst["ok"] != burst["requests"]:
        failures.append("coalesce burst had failing requests")
    expected_coalesced = burst["cells"] * (burst["group_size"] - 1)
    if burst["coalesced"] < expected_coalesced:
        failures.append(
            f"coalesced {burst['coalesced']} < expected floor "
            f"{expected_coalesced} (identical in-flight requests must "
            "share one execution)")
    if storm["warm_latency"]["count"] == 0:
        failures.append("warm storm produced no cache hits")
    if probe["failures"]:
        failures.append(
            f"warm probe failures: {'; '.join(probe['failures'][:3])}")
    if probe["warm_latency"]["count"] == 0:
        failures.append("warm probe produced no cache hits")
    elif probe["warm_latency"]["p50_ms"] > args.max_warm_p50_ms:
        failures.append(
            f"warm-cache p50 {probe['warm_latency']['p50_ms']}ms exceeds "
            f"{args.max_warm_p50_ms}ms")
    if overload is not None and overload["rejected_429"] == 0:
        failures.append("overload probe saw no 429 back-pressure")
    if not parity["all_identical"]:
        failures.append("server artifacts differ from batch output")
    bench["failures"] = failures
    bench["passed"] = not failures
    return bench


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="benchmark a running server instead of an "
                             "in-process one")
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: small but assertive")
    parser.add_argument("--requests", type=int, default=None,
                        help="warm-storm requests (default 2000; smoke 120)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="in-flight cap (default 128; smoke 60)")
    parser.add_argument("--probe-requests", type=int, default=200,
                        help="requests in the low-concurrency warm probe")
    parser.add_argument("--burst-cells", type=int, default=8,
                        help="grid cells in the coalesce burst")
    parser.add_argument("--burst-group", type=int, default=8,
                        help="identical concurrent requests per cell")
    parser.add_argument("--workers", type=int, default=2,
                        help="workers for the in-process server")
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--max-warm-p50-ms", type=float, default=50.0,
                        help="warm-cache p50 assertion threshold")
    parser.add_argument("--overload", action="store_true",
                        help="run the back-pressure probe even with --url "
                             "(uses its own tiny in-process server)")
    parser.add_argument("--out", default=str(
        OUT_DIR / "bench_compile_server.json"))
    args = parser.parse_args(argv)
    if args.requests is None:
        args.requests = 120 if args.smoke else 2000
    if args.concurrency is None:
        args.concurrency = 60 if args.smoke else 128

    bench = asyncio.run(run_benchmark(args))

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(bench, indent=2) + "\n",
                        encoding="utf-8")

    burst = bench["coalesce_burst"]
    storm = bench["warm_storm"]
    print(f"[artifact] {out_path}")
    print(f"coalesce burst: {burst['requests']} requests -> "
          f"{burst['executions']} executions, "
          f"{burst['coalesced']} coalesced")
    probe = bench["warm_probe"]
    print(f"warm storm: {storm['ok']}/{storm['requests']} ok at "
          f"concurrency {storm['concurrency']}, "
          f"{storm['throughput_rps']} req/s")
    print(f"warm probe: p50 {probe['warm_latency']['p50_ms']}ms "
          f"(p99 {probe['warm_latency']['p99_ms']}ms) over "
          f"{probe['warm_latency']['count']} cache hits at concurrency 8")
    if bench["backpressure"]:
        bp = bench["backpressure"]
        print(f"back-pressure: {bp['rejected_429']}/{bp['offered']} "
              f"rejected with 429 at queue depth {bp['queue_depth_limit']}")
    print(f"parity: all_identical={bench['parity']['all_identical']}")
    for failure in bench["failures"]:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 0 if bench["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
