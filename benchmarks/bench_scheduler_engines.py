"""Scheduler engine shoot-out: asap vs milp vs the LP-free fast path.

Solves every benchmark-ISAX scheduling problem on every core across a
3-point cycle-time grid with all three engines (cold, no schedule cache)
and reports per-engine wall time and objective.  The fast path must
reproduce the MILP's weighted objective exactly while solving the whole
grid at least 5x faster; a second cached fast-path sweep shows the
cross-sweep schedule cache collapsing repeat solves to lookups.
"""

import time

from benchmarks.conftest import write_artifact
from repro.frontend import elaborate
from repro.isaxes import ALL_ISAXES
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES
from repro.scheduling import ScheduleCache, build_problem, solve_problem
from repro.scheduling.ilp import weighted_objective_value

ALL_CORES = CORES + EXPERIMENTAL_CORES
CYCLE_SCALES = (1.0, 2.0, 4.0)
ENGINES = ("asap", "milp", "fastpath")


def grid_problems():
    """(label, graph, datasheet, cycle_time) for the full benchmark grid."""
    for core in ALL_CORES:
        datasheet = core_datasheet(core)
        for name, source in ALL_ISAXES.items():
            isa = elaborate(source)
            lowered = lower_isa(isa)
            for fname, container in lowered.instructions.items():
                graph = convert_to_lil(isa, container)
                for scale in CYCLE_SCALES:
                    yield (f"{name}:{fname}@{core}/x{scale:g}", graph,
                           datasheet, datasheet.cycle_time_ns * scale)


def sweep(engine, cache=False):
    """Solve the whole grid with one engine; returns (seconds, objectives,
    stats of the last solve)."""
    seconds = 0.0
    objectives = {}
    hits = misses = 0
    for label, graph, datasheet, cycle in grid_problems():
        problem = build_problem(graph, datasheet, cycle_time_ns=cycle)
        begin = time.perf_counter()
        stats = solve_problem(problem, engine, cache=cache)
        seconds += time.perf_counter() - begin
        objectives[label] = weighted_objective_value(problem)
        hits += stats.cache_hits
        misses += stats.cache_misses
    return seconds, objectives, hits, misses


def test_engine_shootout(artifact_dir):
    results = {engine: sweep(engine) for engine in ENGINES}
    asap_s, asap_obj, _, _ = results["asap"]
    milp_s, milp_obj, _, _ = results["milp"]
    fast_s, fast_obj, _, _ = results["fastpath"]

    # Exactness: the fast path reproduces the MILP's weighted objective on
    # every problem in the grid; ASAP is never better than either.
    for label, want in milp_obj.items():
        assert fast_obj[label] == want, label
        assert asap_obj[label] >= want - 1e-6, label

    # The headline: >= 5x faster than the MILP over the grid, cold.
    speedup = milp_s / fast_s
    assert speedup >= 5.0, f"fastpath only {speedup:.1f}x faster than milp"

    # Warm sweep: identical problems resolve as cache hits.
    cache = ScheduleCache()
    sweep("fastpath", cache=cache)
    warm_s, warm_obj, hits, misses = sweep("fastpath", cache=cache)
    assert warm_obj == fast_obj
    assert hits > 0 and misses == 0

    count = len(milp_obj)
    lines = [
        f"{'engine':<10} {'grid wall s':>12} {'vs milp':>8} {'problems':>9}",
        f"{'asap':<10} {asap_s:>12.3f} {milp_s / asap_s:>7.1f}x {count:>9}",
        f"{'milp':<10} {milp_s:>12.3f} {'1.0x':>8} {count:>9}",
        f"{'fastpath':<10} {fast_s:>12.3f} {speedup:>7.1f}x {count:>9}",
        f"{'+cache':<10} {warm_s:>12.3f} {milp_s / warm_s:>7.1f}x {count:>9}"
        f"   ({hits} cache hits)",
        "",
        "fastpath weighted objective == milp on every problem; "
        "asap never better.",
    ]
    write_artifact(artifact_dir, "scheduler_engines.txt", "\n".join(lines))
