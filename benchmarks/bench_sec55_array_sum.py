"""Section 5.5: ISAX performance benefits on the array-sum kernel.

Paper: baseline VexRiscv needs 18n+50 cycles, the autoinc+zol version
11n+50 cycles; the ~16 % additional chip area buys a >60 % speed-up."""

import pytest

from benchmarks.conftest import write_artifact
from repro import compile_isax
from repro.eval.asic import evaluate_combination
from repro.isaxes import AUTOINC, ZOL
from repro.workloads import fit_linear, run_array_sum

SIZES = [8, 16, 32, 64, 128, 256]


@pytest.fixture(scope="module")
def artifacts():
    return [compile_isax(AUTOINC, "VexRiscv"),
            compile_isax(ZOL, "VexRiscv")]


@pytest.fixture(scope="module")
def sweep(artifacts):
    return [run_array_sum(n, artifacts=artifacts) for n in SIZES]


def test_sec55_cycle_counts(benchmark, artifacts, sweep, artifact_dir):
    benchmark.pedantic(run_array_sum, args=(64,),
                       kwargs={"artifacts": artifacts},
                       rounds=3, iterations=1)
    base_slope, base_const = fit_linear(
        SIZES, [r.baseline_cycles for r in sweep]
    )
    isax_slope, isax_const = fit_linear(
        SIZES, [r.isax_cycles for r in sweep]
    )
    lines = [f"{'n':>6} {'baseline':>10} {'autoinc+zol':>12} {'speedup':>9}"]
    for result in sweep:
        lines.append(f"{result.n:>6} {result.baseline_cycles:>10} "
                     f"{result.isax_cycles:>12} {result.speedup:>8.2f}x")
    lines.append(f"fit: baseline ~ {base_slope:.1f}n{base_const:+.0f} "
                 "(paper: 18n+50)")
    lines.append(f"fit: isax     ~ {isax_slope:.1f}n{isax_const:+.0f} "
                 "(paper: 11n+50)")
    write_artifact(artifact_dir, "sec55_array_sum.txt", "\n".join(lines))

    # The paper's slopes, within one cycle per element.
    assert base_slope == pytest.approx(18, abs=1)
    assert isax_slope == pytest.approx(11, abs=1)


def test_sec55_speedup_over_60_percent(sweep):
    big = sweep[-1]
    assert big.speedup > 1.6


def test_sec55_area_cost_near_16_percent(artifacts):
    asic = evaluate_combination("VexRiscv", [AUTOINC, ZOL])
    # Paper: "the 16% additional chip area enables a >60% speed-up".
    assert asic.area_overhead_pct == pytest.approx(16, abs=6)
    # And the core's frequency is "practically unaffected".
    assert abs(asic.freq_delta_pct) < 10


def test_sec55_checksums_correct(sweep):
    for result in sweep:
        assert result.checksum == result.checksum & 0xFFFFFFFF
