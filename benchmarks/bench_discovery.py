"""Benchmark + CI gate for the automatic ISAX discovery pipeline.

Runs one full :func:`repro.discover.search.discover` search twice against
the same artifact cache and writes one JSON artifact
(``benchmarks/out/bench_discovery.json``):

1. **cold search** — enumerate + price every (candidate, fold) variant
   through the real toolchain on a fresh cache; reports candidate counts,
   verified survivors, the Pareto front, and pricing throughput
   (variants/second through the service executor),
2. **warm search** — the identical search again; every variant must be a
   pure artifact-cache hit (asserted: 0 executed, 100% cached),
3. **headline** — the mined winner's *measured* speedup on the compiled
   simulator must be at least the hand-written ``autoinc+zol`` rewrite's
   speedup from the Section 5.5 experiment (``run_array_sum``), i.e. the
   miner has to rediscover (or beat) what a human wrote for the paper,
4. **gates** — every Pareto-front record must be born-verified: compiled,
   lint-clean, IR-verified and cosim-passed (``ok`` with no
   ``failed_gate``).

``--smoke`` is the CI configuration (small n, small budget); the env var
``DISCOVER_BENCH_SMOKE=1`` selects the same thing for harnesses that
cannot pass flags.

Usage::

    PYTHONPATH=src python benchmarks/bench_discovery.py --smoke
    PYTHONPATH=src python benchmarks/bench_discovery.py --n 128 --budget 24
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time
from typing import Optional, Sequence

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.discover.search import (  # noqa: E402
    DiscoveryConfig,
    DiscoveryReport,
    discover,
    render_report,
)
from repro.workloads import run_array_sum  # noqa: E402

OUT_DIR = pathlib.Path(__file__).parent / "out"


def _run_search(config: DiscoveryConfig) -> DiscoveryReport:
    started = time.perf_counter()
    report = discover(config)
    report.elapsed_s = time.perf_counter() - started
    return report


def run(kernel: str, n: int, budget: int, trials: int, workers: int,
        core: str, cache_dir: Optional[str]) -> dict:
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="bench_discovery_cache_")
    config = DiscoveryConfig(
        kernel=kernel, params={"n": n}, core=core, budget=budget,
        trials=trials, workers=workers, cache_dir=cache_dir)

    cold = _run_search(config)
    print(render_report(cold))
    assert cold.winner is not None, "cold search found no verified winner"
    assert cold.pricing_stats["cached"] == 0, \
        "a fresh cache dir must not serve hits"

    warm = _run_search(config)
    assert warm.pricing_stats["executed"] == 0, \
        f"warm re-run executed {warm.pricing_stats['executed']} variants"
    assert warm.pricing_stats["cached"] == warm.pricing_stats["requested"], \
        "warm re-run must be 100% cache hits"
    assert warm.winner is not None
    assert warm.winner["digest"] == cold.winner["digest"], \
        "cache round-trip changed the winner"

    # Every Pareto survivor cleared the whole verification stack.
    for record in cold.pareto:
        assert record["ok"] and record["failed_gate"] is None, record

    # Headline: the miner must rediscover (or beat) the hand-written ISAX.
    hand = run_array_sum(n, core=core)
    mined_speedup = cold.winner["speedup"]
    print(f"# headline: mined {mined_speedup:.3f}x vs hand-written "
          f"{hand.speedup:.3f}x (n={n}, {core})")
    assert mined_speedup >= hand.speedup, \
        f"mined winner ({mined_speedup:.3f}x) is slower than the " \
        f"hand-written ISAX ({hand.speedup:.3f}x)"

    throughput = (cold.variants_priced / cold.elapsed_s
                  if cold.elapsed_s else 0.0)
    return {
        "kernel": kernel,
        "core": core,
        "n": n,
        "budget": budget,
        "candidates_enumerated": cold.candidates_enumerated,
        "variants_priced": cold.variants_priced,
        "verified": len(cold.verified),
        "pareto": cold.pareto,
        "winner": {k: cold.winner[k]
                   for k in ("label", "digest", "ops", "fold", "speedup",
                             "area_um2", "cycles", "baseline_cycles")},
        "hand_written_speedup": hand.speedup,
        "cold": {"elapsed_s": round(cold.elapsed_s, 3),
                 "variants_per_s": round(throughput, 2),
                 **cold.pricing_stats},
        "warm": {"elapsed_s": round(warm.elapsed_s, 3),
                 **warm.pricing_stats},
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_discovery",
        description="mine + price ISAXes; assert cache and headline")
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: small n, small budget")
    parser.add_argument("--kernel", default="array_sum")
    parser.add_argument("--core", default="VexRiscv")
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--budget", type=int, default=12)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("-o", "--out", default=None,
                        help="JSON artifact path "
                             "(default benchmarks/out/bench_discovery.json)")
    args = parser.parse_args(argv)

    smoke = args.smoke or os.environ.get("DISCOVER_BENCH_SMOKE") == "1"
    n = 32 if smoke and args.n == 64 else args.n
    budget = 8 if smoke and args.budget == 12 else args.budget

    summary = run(kernel=args.kernel, n=n, budget=budget,
                  trials=args.trials, workers=args.workers,
                  core=args.core, cache_dir=args.cache_dir)
    summary["smoke"] = smoke

    out_path = pathlib.Path(args.out) if args.out \
        else OUT_DIR / "bench_discovery.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print(f"[artifact] {out_path}")
    print(f"# cold {summary['cold']['elapsed_s']}s "
          f"({summary['cold']['variants_per_s']} variants/s), "
          f"warm {summary['warm']['elapsed_s']}s "
          f"({summary['warm']['cached']}/{summary['warm']['requested']} "
          f"cache hits)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
