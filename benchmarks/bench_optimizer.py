"""Optimizer pipeline benchmark: what does -O2 buy, and what does it cost?

Compiles every benchmark ISAX for every supported core twice — once at
-O0 (the historical flow) and once at -O2 — and measures, per grid cell:

* CDFG node counts before/after (the optimizer report's own accounting),
* per-functionality schedule makespans, which must never regress,
* the technology-library area sum over the datapath graphs,
* compile wall-clock at both levels plus the optimizer's own share, and
* architectural-trace equality (the ``optequiv`` oracle's check inline).

The gates: geomean node-count reduction at -O2 must clear the issue's
floor (15 %), no schedule may lengthen, every trace must stay
byte-identical, and total optimizer time must stay under 10 % of the
total -O0 compile time.

Compiles run on the reference ILP scheduling engine (``engine="milp"``)
— the configuration the paper evaluates, and the one whose optimal
makespans make the no-regression gate meaningful.  The heuristic
fastpath engine (an earlier acceleration of this repo) cuts scheduling
time ~3x, which would shrink the cost gate's denominator and overstate
the optimizer's relative cost against the flow it is actually part of.

Artifacts: ``benchmarks/out/bench_optimizer.json`` and a human-readable
``optimizer.txt``.

Set ``OPT_BENCH_SMOKE=1`` (or run as a script with ``--smoke``) for the
PR-gate smoke mode: a 3 ISAX x 2 core sub-grid that still fails on any
equivalence break or makespan regression.
"""

import json
import math
import os
import time

from benchmarks.conftest import write_artifact
from repro.eval import TechLibrary
from repro.hls import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.opt.equiv import compare_artifacts
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES

SMOKE = os.environ.get("OPT_BENCH_SMOKE", "") not in ("", "0")
#: Reference ILP scheduling engine — see the module docstring.
ENGINE = "milp"
#: 8 benchmark ISAXes x 5 cores (4 supported + 1 experimental).
FULL_CORES = CORES + EXPERIMENTAL_CORES
SMOKE_ISAXES = ("autoinc", "dotprod", "sbox")
SMOKE_CORES = ("VexRiscv", "ORCA")
#: Issue floor: geomean CDFG node-count reduction at -O2.  The smoke
#: sub-grid includes sbox (a ROM lookup with nothing left to remove), so
#: its gate sits lower; full runs hold the issue's 15 %.
MIN_GEOMEAN_REDUCTION_PCT = 8.0 if SMOKE else 15.0
#: Optimizer wall-clock must stay below this share of -O0 compile time.
#: Smoke compiles finish in fractions of a millisecond, where the ratio
#: is dominated by timer noise — the full-grid cap is the real gate.
MAX_OPT_TIME_SHARE = 0.50 if SMOKE else 0.10
TRIALS = 2 if SMOKE else 4
SEED = 2024


def _graph_area(artifact, tech):
    """Area-model sum over the datapath graphs (µm²)."""
    return sum(tech.area_um2(op)
               for fn in artifact.functionalities.values()
               for op in fn.graph.operations)


def bench_cell(isax, core, tech):
    """Compile one (ISAX, core) cell at -O0 and -O2; gate and record."""
    begin = time.perf_counter()
    baseline = compile_isax(ALL_ISAXES[isax], core, engine=ENGINE,
                            schedule_cache=False)
    o0_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    optimized = compile_isax(ALL_ISAXES[isax], core, engine=ENGINE,
                             schedule_cache=False, opt=2)
    o2_seconds = time.perf_counter() - begin

    report = optimized.optimizer
    assert report is not None, f"{isax}/{core}: no optimizer report at -O2"

    makespans = {}
    for name, fn in optimized.functionalities.items():
        before = baseline.functionalities[name].schedule.makespan
        after = fn.schedule.makespan
        assert after <= before, (
            f"{isax}/{core}/{name}: schedule regressed {before} -> {after}")
        makespans[name] = {"o0": before, "o2": after}

    mismatch = compare_artifacts(baseline, optimized, trials=TRIALS,
                                 seed=SEED)
    assert mismatch is None, f"{isax}/{core}: trace diverged: {mismatch}"

    reduction = 100.0 * (report.nodes_before - report.nodes_after) \
        / max(1, report.nodes_before)
    return {
        "nodes_before": report.nodes_before,
        "nodes_after": report.nodes_after,
        "node_reduction_pct": round(reduction, 2),
        "ops_removed": report.ops_removed,
        "ops_rewritten": report.ops_rewritten,
        "makespans": makespans,
        "area_um2_o0": round(_graph_area(baseline, tech), 1),
        "area_um2_o2": round(_graph_area(optimized, tech), 1),
        "compile_s_o0": round(o0_seconds, 4),
        "compile_s_o2": round(o2_seconds, 4),
        "opt_s": round(report.seconds, 4),
        "trace_identical": True,
    }


def run_benchmark(out_dir):
    isaxes = SMOKE_ISAXES if SMOKE else tuple(sorted(ALL_ISAXES))
    cores = SMOKE_CORES if SMOKE else FULL_CORES
    tech = TechLibrary()

    cells = {}
    for isax in isaxes:
        for core in cores:
            cells[f"{isax}/{core}"] = bench_cell(isax, core, tech)

    reductions = [cell["node_reduction_pct"] for cell in cells.values()]
    # Geomean over (1 + r) keeps zero-reduction cells well-defined.
    geomean = 100.0 * (math.exp(
        sum(math.log1p(r / 100.0) for r in reductions) / len(reductions))
        - 1.0)
    o0_total = sum(cell["compile_s_o0"] for cell in cells.values())
    opt_total = sum(cell["opt_s"] for cell in cells.values())
    opt_share = opt_total / o0_total if o0_total else 0.0

    bench = {
        "bench": "optimizer",
        "smoke": SMOKE,
        "engine": ENGINE,
        "grid": {"isaxes": list(isaxes), "cores": list(cores)},
        "trials": TRIALS,
        "seed": SEED,
        "cells": cells,
        "geomean_node_reduction_pct": round(geomean, 2),
        "min_geomean_required_pct": MIN_GEOMEAN_REDUCTION_PCT,
        "compile_s_o0_total": round(o0_total, 3),
        "optimizer_s_total": round(opt_total, 4),
        "optimizer_time_share": round(opt_share, 4),
        "max_optimizer_time_share": MAX_OPT_TIME_SHARE,
    }
    (out_dir / "bench_optimizer.json").write_text(
        json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"{'cell':<24} {'nodes':>11} {'reduction':>9} "
        f"{'area um2':>16} {'compile s':>15}",
    ]
    for label, cell in cells.items():
        lines.append(
            f"{label:<24} "
            f"{cell['nodes_before']:>4} -> {cell['nodes_after']:>4} "
            f"{cell['node_reduction_pct']:>8.1f}% "
            f"{cell['area_um2_o0']:>7,.0f} -> {cell['area_um2_o2']:>6,.0f} "
            f"{cell['compile_s_o0']:>6.2f} -> {cell['compile_s_o2']:>5.2f}")
    lines += [
        "",
        f"geomean node reduction: {geomean:.1f}% "
        f"(required >= {MIN_GEOMEAN_REDUCTION_PCT:.0f}%)",
        f"optimizer time: {opt_total:.3f}s of {o0_total:.3f}s -O0 compile "
        f"({100 * opt_share:.1f}%, cap {100 * MAX_OPT_TIME_SHARE:.0f}%)",
        "all schedules no worse at -O2; all traces byte-identical",
    ]
    write_artifact(out_dir, "optimizer.txt", "\n".join(lines))

    assert geomean >= MIN_GEOMEAN_REDUCTION_PCT, (
        f"geomean node reduction {geomean:.1f}% below "
        f"{MIN_GEOMEAN_REDUCTION_PCT:.0f}% floor")
    assert opt_share < MAX_OPT_TIME_SHARE, (
        f"optimizer consumed {100 * opt_share:.1f}% of -O0 compile time "
        f"(cap {100 * MAX_OPT_TIME_SHARE:.0f}%)")
    return bench


def test_optimizer_benchmark(artifact_dir):
    run_benchmark(artifact_dir)


def main(argv=None):
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(
        description="Benchmark the -O2 optimizer pipeline over the "
                    "ISAX x core grid")
    parser.add_argument("--smoke", action="store_true",
                        help="small sub-grid for CI PR gates")
    parser.add_argument("--out", default=None,
                        help="output directory (default benchmarks/out)")
    args = parser.parse_args(argv)

    global SMOKE, TRIALS, MIN_GEOMEAN_REDUCTION_PCT, MAX_OPT_TIME_SHARE
    if args.smoke:
        SMOKE = True
        TRIALS = 2
        MIN_GEOMEAN_REDUCTION_PCT = 8.0
        MAX_OPT_TIME_SHARE = 0.50
    out_dir = pathlib.Path(args.out) if args.out \
        else pathlib.Path(__file__).parent / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    bench = run_benchmark(out_dir)
    print(f"geomean node reduction: "
          f"{bench['geomean_node_reduction_pct']:.2f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
