"""Outlook (paper Section 7): automated design-space exploration.

"Automated design space exploration will be implemented to provide multiple
trade-off points" between conflicting area and latency goals.  This bench
sweeps cycle time x initiation interval for the largest ISAXes and records
the Pareto frontier a user would pick implementations from.

The sweep runs through the batch service executor
(:mod:`repro.service.executor`): candidates fan out over worker processes
and land in a content-addressed artifact cache, so the repeat sweep is
served entirely from cache — the property asserted at the bottom.
"""

from benchmarks.conftest import write_artifact
from repro.eval.dse import explore, pareto_frontier, render_design_space
from repro.isaxes import ALL_ISAXES
from repro.service import ArtifactCache, BatchExecutor


def test_design_space_exploration(benchmark, artifact_dir, tmp_path):
    cache = ArtifactCache(tmp_path / "dse-cache")
    executor = BatchExecutor(workers=2, cache=cache)
    points = benchmark.pedantic(
        explore, args=(ALL_ISAXES["sqrt_tightly"], "VexRiscv"),
        kwargs={"cycle_scales": (1.0, 2.0), "initiation_intervals": (1, 2),
                "executor": executor},
        rounds=1, iterations=1,
    )
    sections = []
    for name in ("sqrt_tightly", "sparkle", "dotprod"):
        pts = explore(ALL_ISAXES[name], "VexRiscv", executor=executor)
        frontier = pareto_frontier(pts)
        sections.append(f"=== {name} ===\n"
                        + render_design_space(pts, frontier))
        # The frontier spans a real trade-off for the big ISAXes.
        areas = [p.area_um2 for p in pts]
        assert min(areas) < max(areas)
    write_artifact(artifact_dir, "outlook_design_space.txt",
                   "\n\n".join(sections))
    assert points


def test_frontier_offers_cheaper_than_default(tmp_path):
    """DSE finds implementations cheaper than the default spatial/full-speed
    point (at a latency cost)."""
    cache = ArtifactCache(tmp_path / "dse-cache")
    executor = BatchExecutor(workers=2, cache=cache)
    points = explore(ALL_ISAXES["sqrt_tightly"], "VexRiscv",
                     executor=executor)
    default = next(p for p in points
                   if p.initiation_interval == 1
                   and p.cycle_time_ns == min(q.cycle_time_ns
                                              for q in points))
    cheapest = min(points, key=lambda p: p.area_um2)
    assert cheapest.area_um2 < 0.7 * default.area_um2

    # Warm sweep: identical spec, served 100% from the artifact cache.
    warm = explore(ALL_ISAXES["sqrt_tightly"], "VexRiscv",
                   executor=BatchExecutor(workers=2, cache=cache))
    assert cache.stats.hits >= 5
    assert [(p.cycle_time_ns, p.initiation_interval, round(p.area_um2, 3))
            for p in warm] \
        == [(p.cycle_time_ns, p.initiation_interval, round(p.area_um2, 3))
            for p in points]
