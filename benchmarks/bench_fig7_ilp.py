"""Figure 7: the ILP formulation — exact (HiGHS, standing in for the
paper's Cbc) vs the ASAP heuristic engine, across every benchmark ISAX.

The ILP's objective (sum of start times + lifetimes) is never worse than
ASAP's, and the paper's choice of an exact solver pays off in pipeline
registers saved on the deep ISAXes.
"""

from benchmarks.conftest import write_artifact
from repro.frontend import elaborate
from repro.isaxes import ALL_ISAXES
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scheduling import LongnailScheduler
from repro.scheduling.ilp import objective_value, weighted_objective_value


def schedule_all(engine):
    datasheet = core_datasheet("VexRiscv")
    results = {}
    for name, source in ALL_ISAXES.items():
        isa = elaborate(source)
        lowered = lower_isa(isa)
        for fname, container in lowered.instructions.items():
            graph = convert_to_lil(isa, container)
            scheduler = LongnailScheduler(datasheet, engine=engine)
            results[f"{name}:{fname}"] = scheduler.schedule(graph)
    return results


def test_figure7_ilp_vs_asap(benchmark, artifact_dir):
    milp_results = benchmark.pedantic(
        schedule_all, args=("milp",), rounds=1, iterations=1
    )
    asap_results = schedule_all("asap")
    lines = [f"{'instruction':<28} {'ILP w-obj':>10} {'ASAP w-obj':>11} "
             f"{'ILP span':>9} {'ASAP span':>10}"]
    for key in milp_results:
        milp_obj = weighted_objective_value(milp_results[key].problem)
        asap_obj = weighted_objective_value(asap_results[key].problem)
        # Both engines produce feasible solutions...
        milp_results[key].problem.verify()
        asap_results[key].problem.verify()
        # ...and the exact engine is never worse on its objective.
        assert milp_obj <= asap_obj + 1e-6
        lines.append(
            f"{key:<28} {milp_obj:>10.1f} {asap_obj:>11.1f} "
            f"{milp_results[key].makespan:>9} {asap_results[key].makespan:>10}"
        )
    write_artifact(artifact_dir, "fig7_ilp_vs_asap.txt", "\n".join(lines))


def test_ilp_never_worse_on_weighted_registers():
    """The exact engine minimizes register bits (weighted lifetimes); its
    schedules never need more pipeline-register bits than ASAP's."""
    from repro.hls.hwgen import generate_module

    datasheet = core_datasheet("VexRiscv")
    for name in ("dotprod", "sqrt_tightly", "sparkle"):
        isa = elaborate(ALL_ISAXES[name])
        lowered = lower_isa(isa)
        for fname, container in lowered.instructions.items():
            bits = {}
            for engine in ("milp", "asap"):
                graph = convert_to_lil(isa, container)
                result = LongnailScheduler(datasheet,
                                           engine=engine).schedule(graph)
                module = generate_module(graph, result)
                bits[engine] = sum(
                    op.result.width for op in module.body.operations
                    if op.name == "seq.compreg"
                )
            assert bits["milp"] <= bits["asap"] * 1.05
