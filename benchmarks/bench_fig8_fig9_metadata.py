"""Figures 8 and 9: the YAML-based metadata exchange between Longnail and
SCAIE-V — the virtual datasheet read before HLS and the ISAX configuration
file emitted after HLS (including the ZOL excerpt of Figure 8)."""

from benchmarks.conftest import write_artifact
from repro import compile_isax
from repro.isaxes import ZOL
from repro.scaiev import IsaxConfig, VirtualDatasheet, core_datasheet

ADDI = '''
import "RV32I.core_desc"
InstructionSet addi_only extends RV32I {
  instructions {
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { X[rd] = (unsigned<32>) (X[rs1] + (signed) imm); }
    }
  }
}
'''


def test_figure8_zol_config(benchmark, artifact_dir):
    artifact = benchmark.pedantic(
        compile_isax, args=(ZOL, "VexRiscv"), rounds=3, iterations=1
    )
    text = artifact.config_yaml
    # The Figure 8 ingredients.
    assert "{register: COUNT, width: 32, elements: 1}" in text
    assert "instruction: setup_zol" in text
    assert '"-----------------101000000001011"' in text or \
        "-----------------101000000001011" in text
    assert "always: zol" in text
    # Custom-register writes submit the index first (WrCOUNT.addr), then
    # the data with a mandatory valid bit (WrCOUNT.data, has_valid: 1).
    assert "WrCOUNT.addr" in text
    assert "WrCOUNT.data" in text and "has_valid: 1" in text
    # The always-block schedules everything in stage 0.
    always = next(f for f in artifact.config.functionalities
                  if f.kind == "always")
    assert {entry.stage for entry in always.schedule} == {0}
    write_artifact(artifact_dir, "fig8_zol_config.yaml", text)


def test_figure9_flow_roundtrip(artifact_dir):
    """Datasheet YAML -> Longnail -> config YAML, all machine-readable."""
    datasheet = core_datasheet("VexRiscv")
    datasheet_yaml = datasheet.to_yaml()
    restored = VirtualDatasheet.from_yaml(datasheet_yaml)
    assert restored.timings == datasheet.timings

    artifact = compile_isax(ADDI, restored)
    config = IsaxConfig.from_yaml(artifact.config_yaml)
    addi = config.functionalities[0]
    assert addi.name == "ADDI"
    assert addi.uses("RdRS1") and addi.uses("WrRD")
    # Figure 9's datasheet excerpt: the instruction word is available in
    # stages 1..4 and the register file in stages 2..4.
    assert restored.timing("RdInstr").earliest == 1
    assert restored.timing("RdRS1").earliest == 2

    text = ("=== virtual datasheet (Longnail input) ===\n" + datasheet_yaml
            + "\n=== ISAX configuration (Longnail output) ===\n"
            + artifact.config_yaml)
    write_artifact(artifact_dir, "fig9_metadata_exchange.yaml", text)
