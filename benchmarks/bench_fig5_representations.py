"""Figure 5: the ADDI instruction at all four abstraction levels of the
Longnail flow — CoreDSL, coredsl+hwarith IR, lil/comb CDFG, SystemVerilog."""

from benchmarks.conftest import write_artifact
from repro.frontend import elaborate
from repro.hls import compile_isax
from repro.ir.printer import print_graph, print_operation
from repro.lowering import convert_to_lil, lower_isa

ADDI = '''
import "RV32I.core_desc"
InstructionSet addi_only extends RV32I {
  instructions {
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { X[rd] = (unsigned<32>) (X[rs1] + (signed) imm); }
    }
  }
}
'''


def all_representations():
    isa = elaborate(ADDI)
    lowered = lower_isa(isa)
    coredsl_ir = print_operation(lowered.instructions["ADDI"])
    lil_graph = convert_to_lil(isa, lowered.instructions["ADDI"])
    lil_ir = print_graph(lil_graph)
    artifact = compile_isax(ADDI, "VexRiscv")
    verilog = artifact.verilog
    return coredsl_ir, lil_ir, verilog


def test_figure5_representations(benchmark, artifact_dir):
    coredsl_ir, lil_ir, verilog = benchmark.pedantic(
        all_representations, rounds=3, iterations=1
    )
    # (b) High-level instruction description: Figure 5b's key features.
    assert "coredsl.instruction" in coredsl_ir
    assert "coredsl.get" in coredsl_ir and "coredsl.set" in coredsl_ir
    assert "hwarith.add" in coredsl_ir and "si34" in coredsl_ir
    # (c) Data-flow graph: explicit interface ops + the sign-extension idiom.
    assert "lil.read_rs1" in lil_ir and "lil.write_rd" in lil_ir
    assert "comb.replicate" in lil_ir and "comb.concat" in lil_ir
    assert "lil.sink" in lil_ir
    assert "-----------------000-----0010011" in lil_ir  # Figure 5c mask
    # (d) Register-transfer level: stage-suffixed ports, stallable pipe regs.
    assert verilog.startswith("module ADDI(")
    assert "stall_in" in verilog
    assert "always_ff @(posedge clk)" in verilog

    text = "\n\n".join([
        "=== (a) CoreDSL ===" + ADDI,
        "=== (b) coredsl+hwarith IR ===\n" + coredsl_ir,
        "=== (c) lil/comb CDFG ===\n" + lil_ir,
        "=== (d) SystemVerilog ===\n" + verilog,
    ])
    write_artifact(artifact_dir, "fig5_addi_representations.txt", text)
