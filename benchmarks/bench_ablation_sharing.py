"""Ablation: resource sharing (paper Section 7 outlook).

The paper plans to "share resources, both within instructions itself and
across instruction boundaries, to make extensions with similar
functionality (such as packed SIMD) even more economical", with automated
design-space exploration providing trade-off points.  This bench computes
those trade-off curves for the benchmark ISAXes and reports the area the
shared design points would save on top of Table 4's spatial numbers.
"""

from benchmarks.conftest import write_artifact
from repro.hls import analyze_functionality, analyze_isax, compile_isax
from repro.hls.sharing import render_tradeoff
from repro.isaxes import ALL_ISAXES


def test_sharing_tradeoffs(benchmark, artifact_dir):
    artifact = compile_isax(ALL_ISAXES["sqrt_tightly"], "VexRiscv")
    report = benchmark.pedantic(
        analyze_functionality, args=(artifact.artifact("fsqrt"),),
        rounds=3, iterations=1,
    )
    sections = [render_tradeoff(report)]
    for name in ("dotprod", "sparkle", "autoinc"):
        isax = compile_isax(ALL_ISAXES[name], "VexRiscv")
        sections.append(render_tradeoff(analyze_isax(isax)))
    text = "\n\n".join(sections)
    write_artifact(artifact_dir, "ablation_resource_sharing.txt", text)
    # The deep sqrt pipeline has sharable slack; dotprod does not (all four
    # multipliers fire in the same cycle).
    assert report.saving_pct(2) > 0


def test_sharing_never_beats_concurrency_floor():
    """No trade-off point uses fewer units than the widest time step needs
    divided by the initiation interval."""
    import math

    for name in ("sqrt_tightly", "sparkle", "dotprod"):
        artifact = compile_isax(ALL_ISAXES[name], "VexRiscv")
        report = analyze_isax(artifact)
        for point in report.points:
            for group in report.groups:
                needed = math.ceil(
                    group.max_concurrent / point.initiation_interval
                )
                assert point.units[group.kind] >= max(1, needed)
