"""Figure 6: the LongnailProblem instance for ADDI on the 5-stage VexRiscv,
scheduled to meet a maximum cycle time of 3.5 ns — the chain breaker pushes
lil.write_rd to start time 3."""

from benchmarks.conftest import write_artifact
from repro.frontend import elaborate
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scheduling import LongnailScheduler, uniform_delay_model

ADDI = '''
import "RV32I.core_desc"
InstructionSet addi_only extends RV32I {
  instructions {
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { X[rd] = (unsigned<32>) (X[rs1] + (signed) imm); }
    }
  }
}
'''


def schedule_addi(engine="milp"):
    isa = elaborate(ADDI)
    lowered = lower_isa(isa)
    graph = convert_to_lil(isa, lowered.instructions["ADDI"])
    scheduler = LongnailScheduler(
        core_datasheet("VexRiscv"), cycle_time_ns=3.5,
        delay_model=uniform_delay_model(), engine=engine,
    )
    return graph, scheduler.schedule(graph)


def find(graph, name):
    return next(op for op in graph.operations if op.name == name)


def test_figure6_schedule(benchmark, artifact_dir):
    graph, result = benchmark.pedantic(schedule_addi, rounds=3, iterations=1)
    # The Figure 6 solution: reads in their native stages, the write pushed
    # to start time 3 by the chain-breaking edge.
    assert result.stage_of(find(graph, "lil.instr_word")) == 1
    assert result.stage_of(find(graph, "lil.read_rs1")) == 2
    assert result.stage_of(find(graph, "lil.write_rd")) == 3
    assert result.chain_breakers >= 1
    result.problem.verify()

    lines = [f"LongnailProblem for ADDI on VexRiscv, cycle time 3.5 ns "
             f"(engine: {result.engine})",
             f"{'operation':<22} {'start':>5} {'in-cycle':>9}"]
    for op in graph.operations:
        if op.name == "lil.sink":
            continue
        lines.append(
            f"{op.name:<22} {result.stage_of(op):>5} "
            f"{result.problem.start_time_in_cycle[op]:>8.2f}ns"
        )
    write_artifact(artifact_dir, "fig6_addi_schedule.txt", "\n".join(lines))


def test_schedule_respects_datasheet_windows():
    graph, result = schedule_addi()
    ds = core_datasheet("VexRiscv")
    instr = find(graph, "lil.instr_word")
    rs1 = find(graph, "lil.read_rs1")
    assert ds.timing("RdInstr").earliest <= result.stage_of(instr) \
        <= ds.timing("RdInstr").latest
    assert ds.timing("RdRS1").earliest <= result.stage_of(rs1) \
        <= ds.timing("RdRS1").latest
