"""Section 5.6: the audio-ML inference case study.

Paper: four ISAXes including zol yield 2.15x wall-clock gains and ~30 %
power savings on an audio-signal ML application (taped out in 22 nm).  Our
substitute workload (documented in DESIGN.md) is a synthetic fixed-point
sliding-window dot-product pipeline with a table nonlinearity."""

import pytest

from benchmarks.conftest import write_artifact
from repro.workloads import run_audio_ml


@pytest.fixture(scope="module")
def result():
    return run_audio_ml()


def test_sec56_audio_ml(benchmark, result, artifact_dir):
    benchmark.pedantic(run_audio_ml, rounds=1, iterations=1)
    text = "\n".join([
        f"baseline cycles:   {result.baseline_cycles}",
        f"isax cycles:       {result.isax_cycles}",
        f"speedup:           {result.speedup:.2f}x (paper: 2.15x)",
        f"area overhead:     +{result.area_overhead_pct:.1f}%",
        f"energy savings:    {result.power_savings_pct:.0f}% "
        "(paper: ~30% power savings)",
    ])
    write_artifact(artifact_dir, "sec56_audio_ml.txt", text)


def test_sec56_speedup_in_paper_ballpark(result):
    """Wall-clock gain of the same 2-3x class as the paper's 2.15x."""
    assert 1.8 <= result.speedup <= 3.5


def test_sec56_saves_energy(result):
    """More area but far fewer cycles: net energy per inference drops."""
    assert result.power_savings_pct > 20


def test_sec56_functionally_identical(result):
    """Baseline, ISAX run and Python model all agree (asserted inside the
    workload); outputs are 8-bit activations."""
    assert all(0 <= value <= 0xFF for value in result.outputs)
