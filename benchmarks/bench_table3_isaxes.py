"""Table 3: the benchmark ISAXes — every one compiles through the full
flow for every core, demonstrating the advertised feature mix."""

import pytest

from benchmarks.conftest import write_artifact
from repro import ALL_ISAXES, CORES, compile_isax
from repro.eval.tables import render_table3


def test_table3_inventory(artifact_dir):
    text = render_table3()
    for name in ALL_ISAXES:
        assert name in text
    write_artifact(artifact_dir, "table3_isaxes.txt", text)


@pytest.mark.parametrize("name", sorted(ALL_ISAXES))
def test_compile_each_isax(benchmark, name):
    """Benchmark: full Longnail flow (frontend -> SystemVerilog) per ISAX."""
    artifact = benchmark.pedantic(
        compile_isax, args=(ALL_ISAXES[name], "VexRiscv"),
        rounds=3, iterations=1,
    )
    assert artifact.verilog


def test_feature_coverage():
    """Each Table 3 'Demonstrates' claim is visible in the artifacts."""
    vex = {name: compile_isax(src, "VexRiscv")
           for name, src in ALL_ISAXES.items()}
    # autoinc: custom register and main memory access
    autoinc = vex["autoinc"].config
    assert autoinc.register("ADDR") is not None
    assert "RdMem" in autoinc.interfaces_used()
    assert "WrMem" in autoinc.interfaces_used()
    # ijmp: PC and main memory access
    assert {"RdMem", "WrPC"} <= set(vex["ijmp"].config.interfaces_used())
    # sbox: constant custom register -> internalized, no register request
    assert not vex["sbox"].config.registers
    assert "rom_SBOX" in vex["sbox"].verilog
    # sparkle: R-type with helper functions -> two instructions, RdRS1+RdRS2
    assert {"RdRS1", "RdRS2", "WrRD"} <= set(
        vex["sparkle"].config.interfaces_used()
    )
    # sqrt_tightly vs sqrt_decoupled: same behavior, different modes
    assert vex["sqrt_tightly"].artifact("fsqrt").mode.value == "tightly_coupled"
    assert vex["sqrt_decoupled"].artifact("fsqrt").mode.value == "decoupled"
    # zol: PC and custom register access in an always-block
    zol_always = next(f for f in vex["zol"].config.functionalities
                      if f.kind == "always")
    assert zol_always.uses("WrPC") and zol_always.uses("RdCOUNT")


@pytest.mark.parametrize("core", CORES)
def test_all_isaxes_port_to_core(core):
    """Portability: the full Table 3 set compiles for every host core."""
    for name, source in ALL_ISAXES.items():
        artifact = compile_isax(source, core)
        assert artifact.core_name == core
