"""RTL-simulation engine shoot-out: interpreted vs compiled.

Runs every benchmark-ISAX module (compiled for VexRiscv) through both
simulation engines on identical random stimulus, requiring byte-identical
output traces, and measures cycles/second.  The headline: the compiled
engine is at least 10x faster than the interpreter (geometric mean across
the 8 benchmark ISAXes).  A second section measures the end-to-end effect
on the heaviest verification workload — a small differential fuzz
campaign run once per engine.

Artifacts: ``benchmarks/out/bench_sim_engines.json`` (the BENCH JSON the
CI job uploads) and a human-readable ``sim_engines.txt``.

Set ``SIM_BENCH_SMOKE=1`` for the PR-gate smoke mode: a small cycle
budget that still fails on any equivalence break or gross regression.
"""

import json
import math
import os
import time

from benchmarks.conftest import write_artifact
from repro.fuzz import FuzzConfig, run_campaign
from repro.hls import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.sim import RTLSimulator
from repro.sim.compile import random_stimulus

SMOKE = os.environ.get("SIM_BENCH_SMOKE", "") not in ("", "0")
CYCLES = 300 if SMOKE else 3000
FUZZ_SEEDS = 1 if SMOKE else 3
CORE = "VexRiscv"
#: The compiled engine must beat the interpreter by at least this factor
#: (geomean across ISAXes).  The smoke gate keeps a safety margin against
#: CI-runner noise; full runs hold the issue's 10x target.
MIN_GEOMEAN = 6.0 if SMOKE else 10.0


def _time_engine(module, engine, stimulus):
    sim = RTLSimulator(module, engine=engine)
    begin = time.perf_counter()
    trace = sim.run(stimulus)
    seconds = time.perf_counter() - begin
    return trace, sim.register_state(), seconds


def bench_isax(name):
    """Run both engines over every module of one ISAX; returns the
    per-ISAX record for the BENCH JSON."""
    artifact = compile_isax(ALL_ISAXES[name], CORE)
    interp_s = compiled_s = 0.0
    cycles = 0
    for fname, functionality in artifact.functionalities.items():
        module = functionality.module
        stimulus = random_stimulus(module, CYCLES, seed=42)
        interp_trace, interp_regs, seconds = _time_engine(
            module, "interp", stimulus)
        interp_s += seconds
        compiled_trace, compiled_regs, seconds = _time_engine(
            module, "compiled", stimulus)
        compiled_s += seconds
        cycles += CYCLES
        # Byte-identical output traces and register state, per module.
        assert repr(interp_trace) == repr(compiled_trace), f"{name}/{fname}"
        assert interp_regs == compiled_regs, f"{name}/{fname}"
    return {
        "modules": len(artifact.functionalities),
        "cycles": cycles,
        "interp_cycles_per_s": round(cycles / interp_s, 1),
        "compiled_cycles_per_s": round(cycles / compiled_s, 1),
        "speedup": round(interp_s / compiled_s, 2),
        "trace_identical": True,
    }


def fuzz_wallclock(tmp_path, sim_engine):
    config = FuzzConfig(seeds=FUZZ_SEEDS, trials=8, cores=(CORE,),
                        out_dir=str(tmp_path / f"fuzz-{sim_engine}"),
                        reduce=False, sim_engine=sim_engine)
    begin = time.perf_counter()
    result = run_campaign(config)
    seconds = time.perf_counter() - begin
    assert result.ok, f"fuzz campaign failed under sim_engine={sim_engine}"
    return seconds


def test_sim_engine_shootout(artifact_dir, tmp_path):
    isaxes = {name: bench_isax(name) for name in sorted(ALL_ISAXES)}
    geomean = math.exp(
        sum(math.log(record["speedup"]) for record in isaxes.values())
        / len(isaxes))

    interp_fuzz_s = fuzz_wallclock(tmp_path, "interp")
    compiled_fuzz_s = fuzz_wallclock(tmp_path, "compiled")

    bench = {
        "bench": "sim_engines",
        "smoke": SMOKE,
        "core": CORE,
        "cycles_per_module": CYCLES,
        "isaxes": isaxes,
        "geomean_speedup": round(geomean, 2),
        "min_geomean_required": MIN_GEOMEAN,
        "fuzz_campaign": {
            "seeds": FUZZ_SEEDS,
            "interp_seconds": round(interp_fuzz_s, 3),
            "compiled_seconds": round(compiled_fuzz_s, 3),
            "speedup": round(interp_fuzz_s / compiled_fuzz_s, 2),
        },
    }
    (artifact_dir / "bench_sim_engines.json").write_text(
        json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"{'ISAX':<16} {'modules':>7} {'interp c/s':>12} "
        f"{'compiled c/s':>13} {'speedup':>8}",
    ]
    for name, record in isaxes.items():
        lines.append(
            f"{name:<16} {record['modules']:>7} "
            f"{record['interp_cycles_per_s']:>12,.0f} "
            f"{record['compiled_cycles_per_s']:>13,.0f} "
            f"{record['speedup']:>7.1f}x")
    lines += [
        "",
        f"geomean speedup: {geomean:.1f}x "
        f"(required >= {MIN_GEOMEAN:.0f}x); all traces byte-identical",
        f"fuzz campaign ({FUZZ_SEEDS} seeds, {CORE}): "
        f"interp {interp_fuzz_s:.2f}s -> compiled {compiled_fuzz_s:.2f}s",
    ]
    write_artifact(artifact_dir, "sim_engines.txt", "\n".join(lines))

    assert geomean >= MIN_GEOMEAN, (
        f"compiled engine only {geomean:.1f}x faster (geomean); "
        f"required {MIN_GEOMEAN:.0f}x")
