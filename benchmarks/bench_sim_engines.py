"""RTL-simulation engine shoot-out: interpreted vs compiled vs batched.

Runs every benchmark-ISAX module (compiled for VexRiscv) through both
scalar simulation engines on identical random stimulus, requiring
byte-identical output traces, and measures cycles/second.  The headline:
the compiled engine is at least 10x faster than the interpreter
(geometric mean across the 8 benchmark ISAXes).  A second section
measures the end-to-end effect on the heaviest verification workload — a
small differential fuzz campaign run once per engine.

The batched section compares the numpy lane-parallel engine against the
scalar compiled engine at a fixed lane count: the same stimulus trace is
replicated across N lanes, the scalar engine pays for it N times while
the batched engine evaluates all lanes in one ``step_batch`` sweep.
Marshalling (Python dicts -> lane arrays) happens outside the timed
region on both sides; every lane's trace must stay byte-identical to the
scalar reference.  Gate: >= 5x geomean throughput at 64 lanes.

Artifacts: ``benchmarks/out/bench_sim_engines.json`` and
``benchmarks/out/bench_sim_engines_batched.json`` (the BENCH JSONs the
CI job uploads) plus human-readable ``sim_engines.txt`` /
``sim_engines_batched.txt``.

Set ``SIM_BENCH_SMOKE=1`` for the PR-gate smoke mode: a small cycle
budget that still fails on any equivalence break or gross regression.

Standalone batched mode (the acceptance gate of the batched-engine
issue)::

    PYTHONPATH=src python benchmarks/bench_sim_engines.py --batch 64
"""

import json
import math
import os
import sys

if __package__ in (None, ""):   # running as a plain script, not under pytest
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _entry in (_ROOT, os.path.join(_ROOT, "src")):
        if _entry not in sys.path:
            sys.path.insert(0, _entry)

import time

from benchmarks.conftest import write_artifact
from repro.fuzz import FuzzConfig, run_campaign
from repro.hls import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.sim import RTLSimulator
from repro.sim.batch import BatchedSimulator
from repro.sim.compile import random_stimulus

SMOKE = os.environ.get("SIM_BENCH_SMOKE", "") not in ("", "0")
CYCLES = 300 if SMOKE else 3000
FUZZ_SEEDS = 1 if SMOKE else 3
CORE = "VexRiscv"
#: The compiled engine must beat the interpreter by at least this factor
#: (geomean across ISAXes).  The smoke gate keeps a safety margin against
#: CI-runner noise; full runs hold the issue's 10x target.
MIN_GEOMEAN = 6.0 if SMOKE else 10.0
#: Lanes for the batched shoot-out (the issue's gate is stated at 64).
BATCH_LANES = 64
#: The batched engine must beat the scalar compiled engine by at least
#: this factor (geomean across ISAXes) at 64 lanes.  The smoke gate keeps
#: the same noise margin philosophy as MIN_GEOMEAN.
MIN_BATCH_GEOMEAN = 3.0 if SMOKE else 5.0


def _time_engine(module, engine, stimulus):
    sim = RTLSimulator(module, engine=engine)
    begin = time.perf_counter()
    trace = sim.run(stimulus)
    seconds = time.perf_counter() - begin
    return trace, sim.register_state(), seconds


def bench_isax(name):
    """Run both scalar engines over every module of one ISAX; returns the
    per-ISAX record for the BENCH JSON."""
    artifact = compile_isax(ALL_ISAXES[name], CORE)
    interp_s = compiled_s = 0.0
    cycles = 0
    for fname, functionality in artifact.functionalities.items():
        module = functionality.module
        stimulus = random_stimulus(module, CYCLES, seed=42)
        interp_trace, interp_regs, seconds = _time_engine(
            module, "interp", stimulus)
        interp_s += seconds
        compiled_trace, compiled_regs, seconds = _time_engine(
            module, "compiled", stimulus)
        compiled_s += seconds
        cycles += CYCLES
        # Byte-identical output traces and register state, per module.
        assert repr(interp_trace) == repr(compiled_trace), f"{name}/{fname}"
        assert interp_regs == compiled_regs, f"{name}/{fname}"
    return {
        "modules": len(artifact.functionalities),
        "cycles": cycles,
        "interp_cycles_per_s": round(cycles / interp_s, 1),
        "compiled_cycles_per_s": round(cycles / compiled_s, 1),
        "speedup": round(interp_s / compiled_s, 2),
        "trace_identical": True,
    }


def bench_batched_isax(name, lanes, cycles):
    """Scalar-compiled vs numpy-batched over every module of one ISAX.

    Both timed regions evaluate ``lanes`` copies of the same stimulus
    trace with marshalling excluded: the scalar engine replays the
    pre-built input vectors lane by lane through ``step``; the batched
    engine sweeps pre-marshalled lane arrays through ``run_prepared``.
    Lane-by-lane byte-identity against the scalar trace is asserted
    outside the timed region.
    """
    artifact = compile_isax(ALL_ISAXES[name], CORE)
    scalar_s = batched_s = 0.0
    lane_cycles = 0
    for fname, functionality in artifact.functionalities.items():
        module = functionality.module
        stimulus = random_stimulus(module, cycles, seed=3)

        scalar = RTLSimulator(module, engine="compiled")
        begin = time.perf_counter()
        for _ in range(lanes):
            scalar.reset()
            for vector in stimulus:
                scalar.step(vector)
        scalar_s += time.perf_counter() - begin

        batched = BatchedSimulator(module)
        arrays = batched.prepare_trace([stimulus] * lanes)
        begin = time.perf_counter()
        batched.run_prepared(arrays, lanes)
        batched_s += time.perf_counter() - begin

        # Byte-identical traces on every lane, outside the timed region.
        reference = RTLSimulator(module, engine="compiled").run(stimulus)
        for lane, trace in enumerate(batched.run_batch([stimulus] * lanes)):
            assert repr(trace) == repr(reference), \
                f"{name}/{fname} lane {lane} diverged from the scalar trace"
        lane_cycles += cycles * lanes
    return {
        "modules": len(artifact.functionalities),
        "lane_cycles": lane_cycles,
        "scalar_cycles_per_s": round(lane_cycles / scalar_s, 1),
        "batched_cycles_per_s": round(lane_cycles / batched_s, 1),
        "speedup": round(scalar_s / batched_s, 2),
        "trace_identical": True,
    }


def run_batched_shootout(lanes, cycles, min_geomean):
    """The batched shoot-out across all benchmark ISAXes; returns the
    BENCH JSON record and the human-readable report lines.  Raises
    AssertionError when the geomean misses the gate."""
    isaxes = {name: bench_batched_isax(name, lanes, cycles)
              for name in sorted(ALL_ISAXES)}
    geomean = math.exp(
        sum(math.log(record["speedup"]) for record in isaxes.values())
        / len(isaxes))
    bench = {
        "bench": "sim_engines_batched",
        "smoke": SMOKE,
        "core": CORE,
        "lanes": lanes,
        "cycles_per_module": cycles,
        "isaxes": isaxes,
        "geomean_speedup": round(geomean, 2),
        "min_geomean_required": min_geomean,
    }
    lines = [
        f"{'ISAX':<16} {'modules':>7} {'scalar c/s':>12} "
        f"{'batched c/s':>13} {'speedup':>8}",
    ]
    for name, record in isaxes.items():
        lines.append(
            f"{name:<16} {record['modules']:>7} "
            f"{record['scalar_cycles_per_s']:>12,.0f} "
            f"{record['batched_cycles_per_s']:>13,.0f} "
            f"{record['speedup']:>7.1f}x")
    lines += [
        "",
        f"geomean speedup at {lanes} lanes: {geomean:.2f}x "
        f"(required >= {min_geomean:.0f}x); "
        "all lane traces byte-identical to the scalar engine",
    ]
    assert geomean >= min_geomean, (
        f"batched engine only {geomean:.2f}x faster than scalar compiled "
        f"(geomean, {lanes} lanes); required {min_geomean:.0f}x")
    return bench, lines


def fuzz_wallclock(tmp_path, sim_engine):
    config = FuzzConfig(seeds=FUZZ_SEEDS, trials=8, cores=(CORE,),
                        out_dir=str(tmp_path / f"fuzz-{sim_engine}"),
                        reduce=False, sim_engine=sim_engine)
    begin = time.perf_counter()
    result = run_campaign(config)
    seconds = time.perf_counter() - begin
    assert result.ok, f"fuzz campaign failed under sim_engine={sim_engine}"
    return seconds


def test_sim_engine_shootout(artifact_dir, tmp_path):
    isaxes = {name: bench_isax(name) for name in sorted(ALL_ISAXES)}
    geomean = math.exp(
        sum(math.log(record["speedup"]) for record in isaxes.values())
        / len(isaxes))

    interp_fuzz_s = fuzz_wallclock(tmp_path, "interp")
    compiled_fuzz_s = fuzz_wallclock(tmp_path, "compiled")

    bench = {
        "bench": "sim_engines",
        "smoke": SMOKE,
        "core": CORE,
        "cycles_per_module": CYCLES,
        "isaxes": isaxes,
        "geomean_speedup": round(geomean, 2),
        "min_geomean_required": MIN_GEOMEAN,
        "fuzz_campaign": {
            "seeds": FUZZ_SEEDS,
            "interp_seconds": round(interp_fuzz_s, 3),
            "compiled_seconds": round(compiled_fuzz_s, 3),
            "speedup": round(interp_fuzz_s / compiled_fuzz_s, 2),
        },
    }
    (artifact_dir / "bench_sim_engines.json").write_text(
        json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"{'ISAX':<16} {'modules':>7} {'interp c/s':>12} "
        f"{'compiled c/s':>13} {'speedup':>8}",
    ]
    for name, record in isaxes.items():
        lines.append(
            f"{name:<16} {record['modules']:>7} "
            f"{record['interp_cycles_per_s']:>12,.0f} "
            f"{record['compiled_cycles_per_s']:>13,.0f} "
            f"{record['speedup']:>7.1f}x")
    lines += [
        "",
        f"geomean speedup: {geomean:.1f}x "
        f"(required >= {MIN_GEOMEAN:.0f}x); all traces byte-identical",
        f"fuzz campaign ({FUZZ_SEEDS} seeds, {CORE}): "
        f"interp {interp_fuzz_s:.2f}s -> compiled {compiled_fuzz_s:.2f}s",
    ]
    write_artifact(artifact_dir, "sim_engines.txt", "\n".join(lines))

    assert geomean >= MIN_GEOMEAN, (
        f"compiled engine only {geomean:.1f}x faster (geomean); "
        f"required {MIN_GEOMEAN:.0f}x")


def test_batched_engine_throughput(artifact_dir):
    bench, lines = run_batched_shootout(
        BATCH_LANES, CYCLES, MIN_BATCH_GEOMEAN)
    (artifact_dir / "bench_sim_engines_batched.json").write_text(
        json.dumps(bench, indent=2) + "\n", encoding="utf-8")
    write_artifact(artifact_dir, "sim_engines_batched.txt",
                   "\n".join(lines))


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Batched-vs-scalar simulation engine shoot-out")
    parser.add_argument("--batch", type=int, default=BATCH_LANES,
                        metavar="N", help="lane count (default 64)")
    parser.add_argument("--cycles", type=int, default=300, metavar="C",
                        help="cycles per module per lane (default 300)")
    parser.add_argument("--min-geomean", type=float, default=5.0,
                        metavar="X",
                        help="required geomean speedup (default 5.0)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="artifact directory "
                             "(default benchmarks/out)")
    args = parser.parse_args(argv)

    out_dir = args.out or os.path.join(os.path.dirname(
        os.path.abspath(__file__)), "out")
    os.makedirs(out_dir, exist_ok=True)
    try:
        bench, lines = run_batched_shootout(
            args.batch, args.cycles, args.min_geomean)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    path = os.path.join(out_dir, "bench_sim_engines_batched.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2)
        handle.write("\n")
    print("\n".join(lines))
    print(f"\n[artifact] {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
