"""Table 1: the SCAIE-V sub-interface operations for a 32-bit host core."""

from benchmarks.conftest import write_artifact
from repro.eval.tables import render_table1
from repro.scaiev.interfaces import custom_register_interfaces, standard_interfaces


def test_table1_interfaces(benchmark, artifact_dir):
    catalogue = benchmark(standard_interfaces, 32)
    assert len(catalogue) == 16
    text = render_table1()
    # Every Table 1 row is present.
    for name in ("RdInstr", "RdRS1", "RdCustReg", "RdPC", "RdMem", "WrRD",
                 "WrCustReg.addr", "WrCustReg.data", "WrPC", "WrMem",
                 "RdIValid", "WrStall", "WrFlush"):
        assert name in text
    write_artifact(artifact_dir, "table1_interfaces.txt", text)


def test_table1_custom_register_on_demand(benchmark):
    """SCAIE-V creates individual sub-interfaces per custom register."""
    subs = benchmark(custom_register_interfaces, "COUNT", 32, 32)
    assert [s.name for s in subs] == ["RdCOUNT", "WrCOUNT.addr",
                                      "WrCOUNT.data"]
    read = subs[0]
    # AW = ceil(log2(32)) = 5, DW = 32 (Table 1 caption).
    assert read.operands[0] == ("index", 5)
    assert read.results[0] == ("data", 32)
