"""Abstract-interpretation engine benchmark: cost and payoff.

Two gates over a cold compile of the ISAX x core grid, mirroring the
lint budget in ``bench_lint_overhead.py``:

* **cost** — the worklist engine's cumulative wall-clock (metered by
  :func:`repro.analysis.absint.analysis_seconds`, which counts every
  ``analyze_graph`` invocation: the ``range-narrow`` optimizer rounds,
  the IV008/IV009 verifier sweep when enabled, and the batch codegen's
  memoized per-module facts) must stay **under 5 %** of the cold -O2
  grid compile it rides in;
* **payoff** — ``range-narrow`` must cut the geomean CDFG node count a
  further >= 2 % beyond what the rest of -O2 achieves, measured by an
  A/B compile with ``OptOptions(level=2, disable=("range-narrow",))``.

Artifacts: ``benchmarks/out/bench_absint.json`` and a human-readable
``absint.txt``.

Set ``ABSINT_BENCH_SMOKE=1`` (or run as a script with ``--smoke``) for
the PR-gate smoke mode: a 3 ISAX x 2 core sub-grid chosen to include the
cells range-narrow actually rewrites (the unrolled sqrt ISAX and the
zero-overhead-loop ISAX), so the payoff gate stays meaningful.  The
smoke cost cap is looser — sub-millisecond compiles put timer noise in
the denominator; the full-grid 5 % cap is the real budget.
"""

import json
import math
import os
import time

from benchmarks.conftest import write_artifact
from repro.analysis.absint import (
    absint_cache_stats,
    analysis_seconds,
    clear_facts_cache,
)
from repro.hls import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.opt.pipeline import OptOptions
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES

SMOKE = os.environ.get("ABSINT_BENCH_SMOKE", "") not in ("", "0")
#: Reference ILP scheduling engine (matches bench_optimizer.py).
ENGINE = "milp"
FULL_CORES = CORES + EXPERIMENTAL_CORES
#: Smoke sub-grid with the cells range-narrow provably rewrites.
SMOKE_ISAXES = ("autoinc", "sqrt_decoupled", "zol")
SMOKE_CORES = ("VexRiscv", "ORCA")
#: Issue floor: geomean further node reduction attributable to
#: range-narrow, on top of the rest of -O2.
MIN_FURTHER_REDUCTION_PCT = 2.0
#: Analysis wall-clock share of the cold -O2 grid compile.
MAX_ANALYSIS_SHARE = 0.15 if SMOKE else 0.05


def bench_cell(isax, core):
    """Compile one cell twice: -O2 without range-narrow, then full -O2."""
    ablated = compile_isax(
        ALL_ISAXES[isax], core, engine=ENGINE, schedule_cache=False,
        opt=OptOptions(level=2, disable=("range-narrow",)))

    begin = time.perf_counter()
    full = compile_isax(ALL_ISAXES[isax], core, engine=ENGINE,
                        schedule_cache=False, opt=2)
    o2_seconds = time.perf_counter() - begin

    ab_report, full_report = ablated.optimizer, full.optimizer
    assert ab_report is not None and full_report is not None
    nodes_without = ab_report.nodes_after
    nodes_with = full_report.nodes_after
    assert nodes_with <= nodes_without, (
        f"{isax}/{core}: range-narrow grew the graph "
        f"{nodes_without} -> {nodes_with}")
    further = 100.0 * (nodes_without - nodes_with) / max(1, nodes_without)
    return {
        "nodes_o2_without_narrow": nodes_without,
        "nodes_o2_with_narrow": nodes_with,
        "further_reduction_pct": round(further, 2),
        "compile_s_o2": round(o2_seconds, 4),
    }


def run_benchmark(out_dir):
    isaxes = SMOKE_ISAXES if SMOKE else tuple(sorted(ALL_ISAXES))
    cores = SMOKE_CORES if SMOKE else FULL_CORES

    # Cold start for the cost meter: no memoized facts, zeroed clock.
    # The ablated compiles run range-narrow-free, so the engine's clock
    # accumulates (almost) only inside the timed -O2 compiles; the share
    # denominator is the cold -O2 grid alone.
    clear_facts_cache()
    cells = {}
    for isax in isaxes:
        for core in cores:
            cells[f"{isax}/{core}"] = bench_cell(isax, core)
    grid_seconds = sum(cell["compile_s_o2"] for cell in cells.values())
    absint_seconds = analysis_seconds()
    stats = absint_cache_stats()
    share = absint_seconds / grid_seconds if grid_seconds else 0.0

    further = [cell["further_reduction_pct"] for cell in cells.values()]
    # Geomean over (1 + r) keeps zero-reduction cells well-defined.
    geomean = 100.0 * (math.exp(
        sum(math.log1p(r / 100.0) for r in further) / len(further)) - 1.0)

    bench = {
        "bench": "absint",
        "smoke": SMOKE,
        "engine": ENGINE,
        "grid": {"isaxes": list(isaxes), "cores": list(cores)},
        "cells": cells,
        "geomean_further_reduction_pct": round(geomean, 2),
        "min_further_reduction_pct": MIN_FURTHER_REDUCTION_PCT,
        "grid_compile_s": round(grid_seconds, 3),
        "analysis_s": round(absint_seconds, 4),
        "analysis_share": round(share, 4),
        "max_analysis_share": MAX_ANALYSIS_SHARE,
        "graph_analyses": stats["graph_analyses"],
        "module_analyses": stats["analyses"],
        "module_cache_hits": stats["cache_hits"],
    }
    (out_dir / "bench_absint.json").write_text(
        json.dumps(bench, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"{'cell':<28} {'-O2 nodes (no narrow -> narrow)':>33} "
        f"{'further':>8}",
    ]
    for label, cell in cells.items():
        lines.append(
            f"{label:<28} "
            f"{cell['nodes_o2_without_narrow']:>14} -> "
            f"{cell['nodes_o2_with_narrow']:>4} "
            f"{cell['further_reduction_pct']:>7.1f}%")
    lines += [
        "",
        f"geomean further reduction: {geomean:.1f}% "
        f"(required >= {MIN_FURTHER_REDUCTION_PCT:.0f}%)",
        f"analysis time: {absint_seconds:.4f}s of {grid_seconds:.3f}s "
        f"grid compile ({100 * share:.1f}%, cap "
        f"{100 * MAX_ANALYSIS_SHARE:.0f}%) over "
        f"{stats['graph_analyses']} worklist runs",
    ]
    write_artifact(out_dir, "absint.txt", "\n".join(lines))

    assert geomean >= MIN_FURTHER_REDUCTION_PCT, (
        f"range-narrow's geomean further reduction {geomean:.2f}% is "
        f"below the {MIN_FURTHER_REDUCTION_PCT:.0f}% floor")
    assert share < MAX_ANALYSIS_SHARE, (
        f"abstract interpretation consumed {100 * share:.1f}% of the "
        f"cold grid compile (cap {100 * MAX_ANALYSIS_SHARE:.0f}%)")
    return bench


def test_absint_benchmark(artifact_dir):
    run_benchmark(artifact_dir)


def main(argv=None):
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(
        description="Benchmark the abstract-interpretation engine's cost "
                    "and the range-narrow payoff over the ISAX x core "
                    "grid")
    parser.add_argument("--smoke", action="store_true",
                        help="small sub-grid for CI PR gates")
    parser.add_argument("--out", default=None,
                        help="output directory (default benchmarks/out)")
    args = parser.parse_args(argv)

    global SMOKE, MAX_ANALYSIS_SHARE
    if args.smoke:
        SMOKE = True
        MAX_ANALYSIS_SHARE = 0.15
    out_dir = pathlib.Path(args.out) if args.out \
        else pathlib.Path(__file__).parent / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    bench = run_benchmark(out_dir)
    print(f"geomean further reduction: "
          f"{bench['geomean_further_reduction_pct']:.2f}%  "
          f"analysis share: {100 * bench['analysis_share']:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
