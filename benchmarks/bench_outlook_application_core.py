"""Outlook (paper Section 7): porting the flow to an application-class core.

The paper reports prototypes of the SCAIE-V/Longnail flow on the CVA5
(ex-Taiga) application-class core and observes that "the relative cost of
SCAIE-V integration decreases, as the area of these base cores is generally
much larger than that of the MCUs discussed here".  This bench ports every
Table 3 ISAX to the modeled CVA5 and checks exactly that observation.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro import ALL_ISAXES, compile_isax
from repro.eval.asic import evaluate_combination
from repro.scaiev.cores import EXPERIMENTAL_CORES, core_datasheet
from repro.sim.cosim import verify_artifact


def test_cva5_datasheet_is_application_class():
    cva5 = core_datasheet("CVA5")
    for mcu in ("ORCA", "PicoRV32", "VexRiscv"):
        assert cva5.base_area_um2 > 3 * core_datasheet(mcu).base_area_um2
    assert cva5.stages > core_datasheet("VexRiscv").stages


def test_all_isaxes_port_to_cva5(benchmark):
    """Portability continues to hold: the unchanged CoreDSL sources compile
    for the deeper pipeline; the dot product benchmarks the flow."""
    artifact = benchmark.pedantic(
        compile_isax, args=(ALL_ISAXES["dotprod"], "CVA5"),
        rounds=3, iterations=1,
    )
    assert artifact.core_name == "CVA5"
    for name, source in ALL_ISAXES.items():
        compiled = compile_isax(source, "CVA5")
        for functionality in compiled.functionalities.values():
            functionality.schedule.problem.verify()


def test_relative_cost_decreases(artifact_dir):
    """The Section 7 observation, quantified."""
    lines = [f"{'ISAX':<16} {'ORCA %':>8} {'VexRiscv %':>11} {'CVA5 %':>8}"]
    for name in ("dotprod", "sparkle", "sqrt_tightly", "zol"):
        orca = evaluate_combination("ORCA", [ALL_ISAXES[name]])
        vex = evaluate_combination("VexRiscv", [ALL_ISAXES[name]])
        cva5 = evaluate_combination("CVA5", [ALL_ISAXES[name]])
        lines.append(f"{name:<16} {orca.area_overhead_pct:>7.1f}% "
                     f"{vex.area_overhead_pct:>10.1f}% "
                     f"{cva5.area_overhead_pct:>7.1f}%")
        assert cva5.area_overhead_pct < orca.area_overhead_pct
        assert cva5.area_overhead_pct < vex.area_overhead_pct
    write_artifact(artifact_dir, "outlook_cva5_relative_cost.txt",
                   "\n".join(lines))


def test_cva5_generated_hardware_is_correct():
    """Co-simulation passes on the experimental core too."""
    for name in ("dotprod", "autoinc", "zol"):
        artifact = compile_isax(ALL_ISAXES[name], "CVA5")
        report = verify_artifact(artifact, trials=3, seed=7)
        assert report.passed, report.failures


def test_experimental_cores_listed():
    assert "CVA5" in EXPERIMENTAL_CORES
