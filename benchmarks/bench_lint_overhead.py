"""Static-analysis overhead on the full compile grid.

Compiles all 8 benchmark ISAXes for all 5 cores (cold: no elaboration
memo, no schedule cache) three ways — analysis off, frontend lints on,
lints + the IR verifier (``REPRO_IR_VERIFY``-equivalent) — and reports
the wall-time overhead of each tier.  The budget documented in
docs/static_analysis.md: the default-on frontend lints must add **< 5%**
to a cold compile of the grid; lints + IR verification should stay under
~15% (the verifier is opt-in, so this is informational).

Overhead is also asserted, with slack for CI noise: lints < 10% measured
(documented target 5%), lint+verify < 30% measured.
"""

import time

from benchmarks.conftest import write_artifact
from repro.frontend import elaboration
from repro.hls.longnail import compile_isax
from repro.isaxes import ALL_ISAXES
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES

ALL_CORES = CORES + EXPERIMENTAL_CORES
GRID = [(isax, core) for isax in sorted(ALL_ISAXES) for core in ALL_CORES]


def sweep(lint: bool, verify_ir: bool) -> float:
    """Cold-compile the 8x5 grid; returns wall seconds."""
    elaboration._ELABORATION_CACHE.clear()
    begin = time.perf_counter()
    for isax, core in GRID:
        compile_isax(ALL_ISAXES[isax], core, lint=lint,
                     verify_ir=verify_ir, schedule_cache=False)
    return time.perf_counter() - begin


def test_lint_overhead(artifact_dir):
    # Warm-up pass so module import/op-registry costs don't skew tier 1.
    compile_isax(ALL_ISAXES["zol"], "VexRiscv", schedule_cache=False)

    base_s = sweep(lint=False, verify_ir=False)
    lint_s = sweep(lint=True, verify_ir=False)
    full_s = sweep(lint=True, verify_ir=True)

    lint_pct = 100.0 * (lint_s - base_s) / base_s
    full_pct = 100.0 * (full_s - base_s) / base_s

    lines = [
        "static-analysis overhead, cold compile of the "
        f"{len(GRID)}-job grid (8 ISAXes x {len(ALL_CORES)} cores)",
        "",
        f"{'tier':<28} {'seconds':>9} {'overhead':>9}",
        f"{'no analysis':<28} {base_s:>8.3f}s {'—':>9}",
        f"{'frontend lints':<28} {lint_s:>8.3f}s {lint_pct:>8.1f}%",
        f"{'lints + IR verifier':<28} {full_s:>8.3f}s {full_pct:>8.1f}%",
        "",
        "documented budget: lints < 5% (default-on), "
        "lints+verify informational (opt-in via REPRO_IR_VERIFY=1)",
    ]
    write_artifact(artifact_dir, "lint_overhead.txt", "\n".join(lines))

    # Generous CI-noise slack over the documented 5% target.
    assert lint_pct < 10.0, (
        f"frontend lints add {lint_pct:.1f}% to a cold grid compile "
        "(documented budget: <5%)")
    assert full_pct < 30.0, (
        f"lints + IR verifier add {full_pct:.1f}% to a cold grid compile")
