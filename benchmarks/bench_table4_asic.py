"""Table 4: ASIC area and frequency overheads of each ISAX on each core.

Regenerates the full table with our 22 nm-class model next to the paper's
published numbers, and asserts the qualitative shape: which extensions are
large, where frequency regresses, and what the hazard-handling ablation
saves.  Absolute percentages differ (our substrate is an area/timing model,
not the authors' commercial flow); EXPERIMENTS.md discusses the deltas.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.eval.asic import evaluate_combination, run_table4
from repro.eval.tables import PAPER_TABLE4, render_table4
from repro.isaxes import ALL_ISAXES


@pytest.fixture(scope="module")
def table():
    return run_table4()


def test_regenerate_table4(benchmark, table, artifact_dir):
    """Benchmark one representative cell; render the full table."""
    benchmark.pedantic(
        evaluate_combination, args=("VexRiscv", [ALL_ISAXES["dotprod"]]),
        rounds=3, iterations=1,
    )
    text = render_table4(table)
    write_artifact(artifact_dir, "table4_asic.txt", text)
    assert "autoinc+zol" in text


def test_shape_sqrt_largest(table):
    for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
        sqrt_area = table["sqrt_tightly"][core].extension_area_um2
        for label in ("autoinc", "dotprod", "ijmp", "sbox", "zol"):
            assert sqrt_area > table[label][core].extension_area_um2


def test_shape_piccolo_smallest_relative(table):
    for label, row in table.items():
        for core in ("ORCA", "PicoRV32", "VexRiscv"):
            assert row["Piccolo"].area_overhead_pct <= \
                row[core].area_overhead_pct


def test_shape_orca_forwarding_regressions(table):
    """Section 5.4: dotprod and sparkle regress on ORCA; autoinc mildly;
    the non-forwarding cores stay within noise."""
    assert table["dotprod"]["ORCA"].freq_delta_pct < -8
    assert table["sparkle"]["ORCA"].freq_delta_pct < -8
    assert -10 < table["autoinc"]["ORCA"].freq_delta_pct < 0
    for label in ("dotprod", "sparkle"):
        for core in ("Piccolo", "VexRiscv"):
            assert table[label][core].freq_delta_pct > -6


def test_shape_small_isaxes_cheap(table):
    for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
        assert table["ijmp"][core].area_overhead_pct < 10
        assert table["sbox"][core].area_overhead_pct < 10


def test_shape_hazard_ablation(table):
    """Disabling data-hazard handling reduces area (Table 4 sub-row)."""
    for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
        with_hazard = table["sqrt_decoupled"][core]
        without = table["sqrt_decoupled (no hazard handling)"][core]
        assert without.extension_area_um2 < with_hazard.extension_area_um2


def test_shape_combination_is_additive(table):
    for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
        combined = table["autoinc+zol"][core].extension_area_um2
        parts = (table["autoinc"][core].extension_area_um2
                 + table["zol"][core].extension_area_um2)
        assert combined == pytest.approx(parts, rel=0.25)


def test_zol_frequency_within_noise(table):
    """Paper: 'zero-overhead loops are usually implemented as deeply
    integrated functional units rather than using an ISA extension
    mechanism' — yet frequency stays within ~10%."""
    for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
        assert table["zol"][core].freq_delta_pct > -10


def test_paper_reference_embedded():
    """Sanity: the recorded paper numbers cover every row and core."""
    assert len(PAPER_TABLE4) == 10
    for row in PAPER_TABLE4.values():
        assert set(row) == {"ORCA", "Piccolo", "PicoRV32", "VexRiscv"}
