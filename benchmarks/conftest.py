"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and writes the
rendered artifact to ``benchmarks/out/`` so paper-vs-measured comparisons
(EXPERIMENTS.md) can be refreshed from a single ``pytest benchmarks/
--benchmark-only`` run.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    path = directory / name
    path.write_text(text, encoding="utf-8")
    print(f"\n[artifact] {path}")
    print(text)
