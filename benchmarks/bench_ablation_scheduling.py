"""Ablations around the scheduler (paper Sections 4.2 and 5.4).

1. *Delay-model ablation*: the paper schedules with uniform operator delays
   and observes timing-closure problems in deep ISAX modules (sqrt on
   ORCA/Piccolo loses up to 32 % frequency); supplying real technology
   delays — the fix proposed in Section 5.4/7 — avoids them.  We measure
   both configurations.
2. *Cycle-time sweep*: chain breaking adapts the pipeline depth of the
   sqrt ISAX to the target cycle time (Section 5.4: "Longnail distributes
   the computation across 10 pipeline stages").
3. *Extra-pipeline-stage experiment*: the paper's supporting experiment —
   adding a stage for returning the result relaxes the output timing.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro import compile_isax
from repro.eval.asic import evaluate_combination
from repro.eval.tech import TechLibrary
from repro.eval.timing import module_critical_path
from repro.isaxes import SQRT_TIGHTLY
from repro.scaiev import core_datasheet


def test_delay_model_ablation(benchmark, artifact_dir):
    """Scheduling with uniform delays vs technology delays."""
    rows = []
    for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
        tech_r = evaluate_combination(core, [SQRT_TIGHTLY],
                                      schedule_delays="tech")
        uni_r = evaluate_combination(core, [SQRT_TIGHTLY],
                                     schedule_delays="uniform")
        rows.append((core, tech_r, uni_r))
    benchmark.pedantic(
        evaluate_combination, args=("ORCA", [SQRT_TIGHTLY]),
        kwargs={"schedule_delays": "uniform"}, rounds=1, iterations=1,
    )
    lines = [f"{'core':<10} {'tech: area/freq':>22} {'uniform: area/freq':>24}"]
    for core, tech_r, uni_r in rows:
        lines.append(
            f"{core:<10} "
            f"+{tech_r.area_overhead_pct:.0f}% {tech_r.freq_delta_pct:+.0f}%"
            f"{'':>8} "
            f"+{uni_r.area_overhead_pct:.0f}% {uni_r.freq_delta_pct:+.0f}%"
        )
    write_artifact(artifact_dir, "ablation_delay_model.txt",
                   "\n".join(lines))
    # Technology-delay schedules meet timing (within noise) on every core;
    # the uniform configuration is never better.
    for core, tech_r, uni_r in rows:
        assert tech_r.freq_delta_pct > -6
        assert uni_r.freq_mhz <= tech_r.freq_mhz * 1.03 or \
            uni_r.extension_area_um2 >= tech_r.extension_area_um2


def test_cycle_time_sweep(artifact_dir):
    """Slower clocks -> fewer, fatter stages; faster clocks -> deeper
    pipelines.  At VexRiscv's 701 MHz the sqrt lands at the paper's
    10-stage depth."""
    lines = [f"{'cycle (ns)':>10} {'stages':>7} {'pipe regs':>10}"]
    depths = {}
    for cycle in (1.0, 1.4265, 2.0, 3.0, 5.0, 8.0):
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv",
                                cycle_time_ns=cycle)
        fa = artifact.artifact("fsqrt")
        depths[cycle] = fa.schedule.makespan
        lines.append(f"{cycle:>10.2f} {fa.schedule.makespan:>7} "
                     f"{fa.module.attributes['pipeline_registers']:>10}")
    write_artifact(artifact_dir, "ablation_cycle_time_sweep.txt",
                   "\n".join(lines))
    assert depths[1.0] > depths[2.0] > depths[8.0]
    # The paper: "Longnail distributes the computation across 10 pipeline
    # stages" — reproduced exactly at VexRiscv's native cycle time.
    assert depths[1.4265] == 10


def test_extra_output_stage_relaxes_timing():
    """The paper's supporting experiment: manually adding a pipeline stage
    for returning the result simplifies timing closure.  Scheduling with a
    slightly tighter internal cycle budget (forcing one more stage) reduces
    the module's critical path."""
    tech = TechLibrary()
    ds = core_datasheet("ORCA")
    base = compile_isax(SQRT_TIGHTLY, "ORCA")
    deeper = compile_isax(SQRT_TIGHTLY, "ORCA",
                          cycle_time_ns=ds.cycle_time_ns * 0.85)
    base_fa = base.artifact("fsqrt")
    deep_fa = deeper.artifact("fsqrt")
    assert deep_fa.schedule.makespan >= base_fa.schedule.makespan
    assert module_critical_path(deep_fa.module, tech) <= \
        module_critical_path(base_fa.module, tech) + 1e-9
