#!/usr/bin/env python3
"""Indirect-threaded dispatch with the ijmp ISAX.

The paper's ``ijmp`` instruction "reads the next PC from memory" (Table 3) —
the classic accelerator for threaded interpreters: instead of a dispatch
loop (load opcode, bounds-check, jump through a table), every bytecode
handler ends by jumping straight to the next handler's address, fetched
from the threaded-code stream with a single custom instruction.

This example builds a tiny stack-machine program as threaded code, runs it
on the VexRiscv timing model with and without ``ijmp``, and compares both
the results and the dispatch cost.

Usage:  python examples/threaded_interpreter.py
"""

from repro import compile_isax, core_datasheet
from repro.isaxes import IJMP
from repro.sim.riscv import CoreTimingModel, assemble

THREAD_BASE = 0x2000    # threaded code: one word per op = handler address
DATA_BASE = 0x3000      # immediate arguments, one word per op

# Program: push 7, push 5, add, push 3, mul, halt  => (7+5)*3 = 36
OPS = [("push", 7), ("push", 5), ("add", 0), ("push", 3), ("mul", 0),
       ("halt", 0)]


def interpreter(use_ijmp: bool) -> str:
    """The interpreter core.  s0 = thread pointer, s1 = argument pointer,
    sp-style stack in s2, result lands in a0."""
    if use_ijmp:
        # One instruction: PC <- MEM[s0], then bump the thread pointer in a
        # single always-available custom register-free sequence.
        dispatch = """
      ijmp rs1=s0
        """
        advance = """
      addi s0, s0, 4
      addi s1, s1, 4
        """
    else:
        dispatch = """
      lw   t6, 0(s0)
      jalr x0, 0(t6)
        """
        advance = """
      addi s0, s0, 4
      addi s1, s1, 4
        """
    return f"""
      li   s0, {THREAD_BASE}
      li   s1, {DATA_BASE}
      li   s2, 0x7000          # stack pointer
      {dispatch}

    op_push:
      {advance}
      lw   t0, -4(s1)          # the argument for the op just dispatched
      addi s2, s2, -4
      sw   t0, 0(s2)
      {dispatch}

    op_add:
      {advance}
      lw   t0, 0(s2)
      lw   t1, 4(s2)
      add  t0, t0, t1
      addi s2, s2, 4
      sw   t0, 0(s2)
      {dispatch}

    op_mul:
      {advance}
      lw   t0, 0(s2)
      lw   t1, 4(s2)
      mul  t0, t0, t1
      addi s2, s2, 4
      sw   t0, 0(s2)
      {dispatch}

    op_halt:
      lw   a0, 0(s2)
      ecall
    """


def run(use_ijmp: bool):
    core = "VexRiscv"
    artifacts = []
    isaxes = []
    if use_ijmp:
        artifact = compile_isax(IJMP, core)
        artifacts.append(artifact)
        isaxes.append(artifact.isa)
    source = interpreter(use_ijmp)
    from repro.sim.riscv.assembler import Assembler

    assembler = Assembler(isaxes or None)
    words, labels = assembler.assemble(source)

    model = CoreTimingModel(core_datasheet(core), artifacts=artifacts)
    model.load_program(words)
    thread = [labels[f"op_{op}"] for op, _arg in OPS]
    model.load_data(thread, THREAD_BASE)
    model.load_data([arg for _op, arg in OPS], DATA_BASE)
    report = model.run()
    return report


def main() -> None:
    print("=== threaded bytecode interpreter: (7+5)*3 ===\n")
    baseline = run(use_ijmp=False)
    extended = run(use_ijmp=True)
    assert baseline.state.read_x(10) == 36
    assert extended.state.read_x(10) == 36
    print(f"software dispatch (lw + jalr):  {baseline.cycles:>4} cycles")
    print(f"ijmp dispatch (PC <- MEM[ptr]): {extended.cycles:>4} cycles")
    print(f"dispatch acceleration:          "
          f"{baseline.cycles / extended.cycles:.2f}x")
    print("\nBoth interpreters compute 36; the ijmp ISAX folds the "
          "load-address-and-jump sequence of every handler into one "
          "custom control-flow instruction (Table 3: 'Read next PC from "
          "memory').")


if __name__ == "__main__":
    main()
