#!/usr/bin/env python3
"""Portability: one CoreDSL description, four microarchitectures.

The paper's central claim is that an ISAX written once in CoreDSL ports
across host cores with very different microarchitectures (5-stage, 3-stage,
FSM-sequenced) purely by scheduling against each core's virtual datasheet.
This example compiles every benchmark ISAX for every core and shows how the
*same* behavior lands in different pipeline stages and execution modes.

Usage:  python examples/portability_sweep.py [isax]
"""

import sys

from repro import ALL_ISAXES, CORES, compile_isax


def describe(name: str) -> None:
    print(f"=== {name} ===")
    header = f"{'functionality':<14} {'core':<10} {'mode':<16} " \
             f"{'span':>4}  interface schedule"
    print(header)
    print("-" * 100)
    for core in CORES:
        artifact = compile_isax(ALL_ISAXES[name], core)
        for fname, functionality in artifact.functionalities.items():
            schedule = ", ".join(
                f"{entry.interface}@{entry.stage}"
                for entry in functionality.functionality.schedule
            )
            print(f"{fname:<14} {core:<10} "
                  f"{functionality.mode.value:<16} "
                  f"{functionality.schedule.makespan:>4}  {schedule}")
    print()


def main() -> None:
    names = sys.argv[1:] if len(sys.argv) > 1 else sorted(ALL_ISAXES)
    for name in names:
        describe(name)
    print("Note how reads move between stages (e.g. RdRS1 in stage 2 on "
          "VexRiscv but stage 3 on ORCA) and how long-running instructions "
          "switch to the tightly-coupled or decoupled mode on short "
          "pipelines — all from one unchanged CoreDSL source.")


if __name__ == "__main__":
    main()
