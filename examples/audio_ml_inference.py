#!/usr/bin/env python3
"""The Section 5.6 case study: ML inference on audio signals.

Runs a synthetic fixed-point audio-inference pipeline (sliding-window
dot-product feature extraction with a table-based nonlinearity) on the
VexRiscv timing model, baseline vs four ISAXes (dotprod, autoinc, zol,
sbox — "four ISAXes, including zol" as in the paper), and reports the
wall-clock gain and modeled energy savings next to the paper's 2.15x / 30 %.

Usage:  python examples/audio_ml_inference.py
"""

from repro.workloads import AUDIO_FRAMES, AUDIO_WORDS, run_audio_ml


def main() -> None:
    print("=== Section 5.6: audio ML inference on VexRiscv ===")
    print(f"workload: {AUDIO_FRAMES} output frames, "
          f"{AUDIO_WORDS * 4}-tap int8 dot product each, "
          "S-box nonlinearity\n")
    result = run_audio_ml()
    print(f"baseline (RV32IM):        {result.baseline_cycles:>7} cycles")
    print(f"with 4 ISAXes:            {result.isax_cycles:>7} cycles")
    print(f"wall-clock speed-up:      {result.speedup:>9.2f}x   "
          "(paper: 2.15x)")
    print(f"area overhead:            {result.area_overhead_pct:>8.1f}%")
    print(f"energy-per-inference cut: {result.power_savings_pct:>8.0f}%   "
          "(paper: ~30% power savings)")
    print(f"\nfirst output frames: "
          f"{[hex(v) for v in result.outputs[:6]]}")
    print("(outputs verified identical between baseline, ISAX run, and the "
          "Python reference model)")


if __name__ == "__main__":
    main()
