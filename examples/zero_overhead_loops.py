#!/usr/bin/env python3
"""Zero-overhead loops: the paper's Section 5.5 experiment, end to end.

Compiles the ``autoinc`` and ``zol`` ISAXes (Figures 3 and 8 of the paper),
integrates both into a VexRiscv model, and runs the array-sum kernel with
and without the extensions — reproducing the 18n+50 -> 11n+50 cycle counts
and the >60 % speed-up for ~16 % additional area reported in Section 5.5.

Usage:  python examples/zero_overhead_loops.py
"""

from repro import compile_isax
from repro.eval.asic import evaluate_combination
from repro.isaxes import AUTOINC, ZOL
from repro.workloads import fit_linear, run_array_sum


def main() -> None:
    print("=== Section 5.5: summing an n-element array on VexRiscv ===\n")
    artifacts = [compile_isax(AUTOINC, "VexRiscv"),
                 compile_isax(ZOL, "VexRiscv")]

    sizes = [8, 16, 32, 64, 128, 256]
    baseline_cycles, isax_cycles = [], []
    print(f"{'n':>6} {'baseline':>10} {'autoinc+zol':>12} {'speedup':>9}")
    for n in sizes:
        result = run_array_sum(n, artifacts=artifacts)
        baseline_cycles.append(result.baseline_cycles)
        isax_cycles.append(result.isax_cycles)
        print(f"{n:>6} {result.baseline_cycles:>10} "
              f"{result.isax_cycles:>12} {result.speedup:>8.2f}x")

    base_slope, base_const = fit_linear(sizes, baseline_cycles)
    isax_slope, isax_const = fit_linear(sizes, isax_cycles)
    print(f"\nbaseline  ~= {base_slope:.1f} n + {base_const:.0f}"
          f"   (paper: 18n + 50)")
    print(f"with ISAX ~= {isax_slope:.1f} n + {isax_const:.0f}"
          f"   (paper: 11n + 50)")

    asic = evaluate_combination("VexRiscv", [AUTOINC, ZOL])
    print(f"\nASIC model: +{asic.area_overhead_pct:.0f}% area "
          f"(paper: +16%), f_max {asic.freq_delta_pct:+.0f}%")
    print(f"=> {100 * (base_slope / isax_slope - 1):.0f}% steady-state "
          "speed-up (paper: >60%)")


if __name__ == "__main__":
    main()
