#!/usr/bin/env python3
"""Crypto acceleration: the sbox and sparkle ISAXes with co-simulation.

Compiles the AES S-box lookup and the Sparkle/Alzette ARX-box ISAXes for
VexRiscv, then demonstrates the verification story of paper Section 5.3:
the generated RTL is simulated cycle by cycle and checked against the
CoreDSL golden interpreter and against an independent Python reference
implementation of Alzette.

Usage:  python examples/crypto_acceleration.py
"""

import random

from repro import compile_isax
from repro.isaxes import SBOX, SPARKLE
from repro.sim import ArchState, CoreDSLInterpreter, RTLSimulator
from repro.utils.bits import to_unsigned

RC = 0xB7E15162
ROUNDS = ((31, 24), (17, 17), (0, 31), (24, 16))


def rotr(value: int, amount: int) -> int:
    if amount == 0:
        return value
    return to_unsigned((value >> amount) | (value << (32 - amount)), 32)


def alzette_reference(x: int, y: int) -> tuple:
    """Independent software model of one Alzette ARX-box."""
    for rot_a, rot_b in ROUNDS:
        x = to_unsigned(x + rotr(y, rot_a), 32)
        y ^= rotr(x, rot_b)
        x ^= RC
    return x, y


def run_rtl(artifact, instr, a, b, rd=5):
    functionality = artifact.artifact(instr)
    module = functionality.module
    enc = artifact.isa.instructions[instr].encoding
    word = enc.encode({"rd": rd, "rs1": 3, "rs2": 4})
    inputs = {}
    for port in module.inputs:
        if port.name.startswith("rs1_data"):
            inputs[port.name] = a
        elif port.name.startswith("rs2_data"):
            inputs[port.name] = b
        elif port.name.startswith("instr_word"):
            inputs[port.name] = word
    sim = RTLSimulator(module)
    out = None
    for _ in range(functionality.schedule.makespan + 2):
        out = sim.step(inputs)
    port = next(p.name for p in module.outputs
                if p.name.startswith("wrrd_data"))
    return out[port]


def main() -> None:
    rng = random.Random(2024)
    sparkle = compile_isax(SPARKLE, "VexRiscv")
    interp = CoreDSLInterpreter(sparkle.isa)

    print("=== Alzette ARX-box (sparkle ISAX): RTL vs golden vs reference ===")
    print(f"{'x':>10} {'y':>10} {'new x (RTL)':>12} {'new y (RTL)':>12} ok")
    for _ in range(8):
        x, y = rng.getrandbits(32), rng.getrandbits(32)
        ref_x, ref_y = alzette_reference(x, y)
        rtl_x = run_rtl(sparkle, "alzette_x", x, y)
        rtl_y = run_rtl(sparkle, "alzette_y", x, y)
        state = ArchState(sparkle.isa)
        state.write_x(3, x)
        state.write_x(4, y)
        enc = sparkle.isa.instructions["alzette_x"].encoding
        interp.execute_instruction(
            state, "alzette_x", enc.encode({"rd": 5, "rs1": 3, "rs2": 4})
        )
        golden_x = state.read_x(5)
        ok = rtl_x == ref_x == golden_x and rtl_y == ref_y
        print(f"{x:>#10x} {y:>#10x} {rtl_x:>#12x} {rtl_y:>#12x} {ok}")
        assert ok

    print("\n=== AES S-box lookup (sbox ISAX) ===")
    sbox = compile_isax(SBOX, "VexRiscv")
    table = sbox.isa.state["SBOX"].init_values
    for value in (0x00, 0x53, 0xFF):
        rtl = run_rtl(sbox, "sbox", value, None)
        print(f"  SBOX[{value:#04x}] = {rtl:#04x} "
              f"(expected {table[value]:#04x})")
        assert rtl == table[value]
    print("\nAll crypto ISAX results match the independent references.")


if __name__ == "__main__":
    main()
