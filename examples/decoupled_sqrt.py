#!/usr/bin/env python3
"""Decoupled execution: tightly-coupled vs spawn-block square root.

The two sqrt ISAXes share the same 32-iteration behavior (paper Figure 4 /
Table 3); the only difference is the ``spawn`` block.  This example shows
what that buys: with the decoupled variant, independent instructions
overtake the long-running computation in the base pipeline, while SCAIE-V's
scoreboard stalls exactly the instructions that need the pending result.

Usage:  python examples/decoupled_sqrt.py
"""

from repro import compile_isax, core_datasheet
from repro.isaxes import SQRT_DECOUPLED, SQRT_TIGHTLY
from repro.sim.riscv import CoreTimingModel, assemble

INDEPENDENT_WORK = "\n".join(["addi t5, t5, 1"] * 24)


def program(value: int) -> str:
    return f"""
      li t0, {value}
      fsqrt t1, t0
      {INDEPENDENT_WORK}
      add t2, t1, t1     # first consumer of the sqrt result
      ecall
    """


def run(source: str, label: str) -> None:
    core = "VexRiscv"
    artifact = compile_isax(source, core)
    functionality = artifact.artifact("fsqrt")
    model = CoreTimingModel(core_datasheet(core), artifacts=[artifact])
    model.load_program(assemble(program(1 << 20), isaxes=[artifact.isa]))
    report = model.run()
    result = report.state.read_x(6)
    expected = 1024 << 16  # sqrt(2^20) in Q16.16
    assert result == expected, (hex(result), hex(expected))
    print(f"{label:<18} mode={functionality.mode.value:<16} "
          f"pipeline span={functionality.schedule.makespan:>2}  "
          f"total={report.cycles:>4} cycles "
          f"(stalled {report.stall_cycles})")


def main() -> None:
    print("=== sqrt(x) in Q16.16, followed by 24 independent instructions "
          "and one dependent add ===\n")
    run(SQRT_TIGHTLY, "sqrt_tightly")
    run(SQRT_DECOUPLED, "sqrt_decoupled")
    print("\nThe decoupled variant hides the sqrt latency behind the "
          "independent instructions (lightweight out-of-order commit, "
          "paper Section 2.5); the tightly-coupled one stalls the core "
          "for the whole computation.")


if __name__ == "__main__":
    main()
