#!/usr/bin/env python3
"""Quickstart: compile the paper's Figure 1 dot-product ISAX for VexRiscv.

Runs the complete Longnail flow — CoreDSL frontend, IR lowering, ILP
scheduling against the core's virtual datasheet, hardware generation — and
prints every artifact a user would hand to SCAIE-V: the SystemVerilog module
and the YAML configuration file (paper Figures 5 and 9).

Usage:  python examples/quickstart.py [core]
        core: ORCA | Piccolo | PicoRV32 | VexRiscv (default)
"""

import sys

from repro import compile_isax
from repro.isaxes import DOTPROD


def main() -> None:
    core = sys.argv[1] if len(sys.argv) > 1 else "VexRiscv"
    print(f"=== Compiling the Figure 1 dot-product ISAX for {core} ===\n")
    print("CoreDSL input:")
    print(DOTPROD)

    artifact = compile_isax(DOTPROD, core)
    functionality = artifact.artifact("dotp")

    print(f"Scheduled against the {core} virtual datasheet "
          f"(cycle time {artifact.datasheet.cycle_time_ns:.2f} ns):")
    for interface, _op, stage in functionality.schedule.interface_schedule():
        print(f"  {interface:<8} -> stage {stage}")
    print(f"  execution mode: {functionality.mode.value}")
    print(f"  pipeline depth: {functionality.schedule.makespan} stages, "
          f"{functionality.module.attributes['pipeline_registers']} "
          "pipeline registers\n")

    print("--- SCAIE-V configuration file (Figure 9 format) ---")
    print(artifact.config_yaml)
    print("--- Generated SystemVerilog (Figure 5d format) ---")
    print(artifact.verilog)


if __name__ == "__main__":
    main()
