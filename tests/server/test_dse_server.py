"""The DSE sweep as a compile-server client: ``explore(server_url=...)``
must return exactly the points the local executor path computes."""

import asyncio
import threading

from repro.eval.dse import explore
from repro.isaxes import ALL_ISAXES
from repro.server import CompileServer, CompileServerApp


def test_explore_via_server_matches_local_sweep():
    loop = asyncio.new_event_loop()
    started = threading.Event()
    holder = {}

    def serve():
        asyncio.set_event_loop(loop)

        async def boot():
            core = CompileServer(workers=2, backend="thread")
            app = CompileServerApp(core)     # default runner allow-list
            host, port = await app.start("127.0.0.1", 0)
            holder["app"] = app
            holder["url"] = f"http://{host}:{port}"
            started.set()

        loop.run_until_complete(boot())
        loop.run_forever()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10), "server thread never came up"
    try:
        kwargs = dict(cycle_scales=(1.0, 2.0), initiation_intervals=(1, 2))
        via_server = explore(ALL_ISAXES["dotprod"], core="VexRiscv",
                             server_url=holder["url"],
                             priority="interactive", **kwargs)
        local = explore(ALL_ISAXES["dotprod"], core="VexRiscv", **kwargs)
        assert via_server == local
        assert len(via_server) == 4          # 2 cycle scales x 2 IIs
    finally:
        asyncio.run_coroutine_threadsafe(
            holder["app"].close(drain=False), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
