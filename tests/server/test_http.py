"""End-to-end HTTP tests: real sockets, real client, in-process server.

Each test boots a :class:`CompileServerApp` on an ephemeral port and talks
to it through :class:`CompileServerClient` — the same path the `serve` CLI
and the load-generator benchmark exercise."""

import asyncio

import pytest

from repro.isaxes import ALL_ISAXES
from repro.service.cache import ShardedArtifactCache
from repro.service.jobs import digest
from repro.server import (
    CompileServer,
    CompileServerApp,
    CompileServerClient,
    CompileServerError,
)

ECHO = "tests.service.runners:echo"
GATED = "tests.server.runners:gated"
LOGGED = "tests.server.runners:logged"

TEST_RUNNERS = frozenset({ECHO, GATED, LOGGED})


def run_http(coro_fn, *, allowed_runners=TEST_RUNNERS, **core_kwargs):
    """Boot app + client on an ephemeral port, run the test body."""
    core_kwargs.setdefault("backend", "thread")

    async def _body():
        core = CompileServer(**core_kwargs)
        app = CompileServerApp(core, allowed_runners=allowed_runners)
        host, port = await app.start("127.0.0.1", 0)
        client = CompileServerClient(f"http://{host}:{port}")
        try:
            await coro_fn(client, core)
        finally:
            await app.close(drain=False)

    asyncio.run(_body())


class TestCompileRoundtrip:
    def test_compile_then_warm_hit_then_job_lookup(self, tmp_path):
        async def body(client, core):
            job = await client.compile(isax="dotprod", core="VexRiscv",
                                       priority="interactive", wait=True)
            assert job["state"] == "ok"
            assert job["cached"] is None
            assert "module " in job["result"]["verilog"]
            assert job["result"]["job_isax"] == "dotprod"

            warm = await client.compile(isax="dotprod", core="VexRiscv",
                                        wait=True)
            assert warm["state"] == "ok"
            assert warm["cached"] == "memory"
            assert warm["result"]["verilog"] == job["result"]["verilog"]

            # GET /v1/jobs/{id} (no result unless asked).
            fetched = await client.job(job["job_id"])
            assert fetched["state"] == "ok"
            assert "result" not in fetched
            fetched = await client.job(job["job_id"], include_result=True)
            assert fetched["result"]["verilog"] == job["result"]["verilog"]

            health = await client.healthz()
            assert health["status"] == "ok"
            metrics = await client.metrics()
            assert metrics["server"]["counters"]["completed"] == 2
            assert metrics["server"]["counters"]["cache_hits_memory"] == 1

        run_http(body, workers=1)

    def test_submit_without_wait_then_poll(self, tmp_path):
        async def body(client, core):
            accepted = await client.compile(isax="zol", core="VexRiscv",
                                            wait=False,
                                            include_result=False)
            assert accepted["state"] in ("queued", "running", "ok")
            job_id = accepted["job_id"]
            for _ in range(500):
                job = await client.job(job_id)
                if job["state"] == "ok":
                    break
                await asyncio.sleep(0.01)
            assert job["state"] == "ok"

        run_http(body, workers=1)

    def test_events_stream_replays_the_full_trace(self, tmp_path):
        async def body(client, core):
            job = await client.compile(isax="dotprod", core="VexRiscv",
                                       wait=True, include_result=False)
            events = [event async for event in client.events(job["job_id"])]
            names = [event["event"] for event in events]
            assert names == ["submitted", "queued", "started", "finished"]
            assert events[-1]["state"] == "ok"
            assert "phases" in events[-1]

        run_http(body, workers=1)

    def test_tasks_endpoint_runs_allowed_runners_only(self, tmp_path):
        async def body(client, core):
            job = await client.submit_task(runner=ECHO,
                                           payload={"value": 9},
                                           label="echo", wait=True)
            assert job["state"] == "ok"
            assert job["result"] == {"echo": 9}

            with pytest.raises(CompileServerError) as excinfo:
                await client.submit_task(runner="os:system",
                                         payload={"value": "rm -rf"})
            assert excinfo.value.status == 403

        run_http(body, workers=1)


class TestErrorPaths:
    def test_bad_requests_are_4xx_not_500(self, tmp_path):
        async def body(client, core):
            with pytest.raises(CompileServerError) as excinfo:
                await client.compile(isax="nonsense")
            assert excinfo.value.status == 400
            assert "unknown ISAX" in str(excinfo.value)

            with pytest.raises(CompileServerError) as excinfo:
                await client.compile(isax="dotprod", priority="urgent")
            assert excinfo.value.status == 400

            with pytest.raises(CompileServerError) as excinfo:
                await client.job("j12345678")
            assert excinfo.value.status == 404

            with pytest.raises(CompileServerError) as excinfo:
                await client._request("GET", "/v1/nope")
            assert excinfo.value.status == 404

            with pytest.raises(CompileServerError) as excinfo:
                await client._request("GET", "/v1/compile")
            assert excinfo.value.status == 405

            with pytest.raises(CompileServerError) as excinfo:
                await client._request("POST", "/v1/tasks", {"runner": ECHO})
            assert excinfo.value.status == 400     # payload missing

            with pytest.raises(CompileServerError) as excinfo:
                await client._request(
                    "POST", "/v1/tasks",
                    {"runner": ECHO,
                     "payload": {"sim_engine": "verilator"}})
            assert excinfo.value.status == 400     # unknown sim engine
            assert "sim_engine" in str(excinfo.value)

            with pytest.raises(CompileServerError) as excinfo:
                await client._request(
                    "POST", "/v1/compile",
                    {"isax": "dotprod", "cycle_time_ns": "fast"})
            assert excinfo.value.status == 400
            assert "cycle_time_ns" in str(excinfo.value)

        run_http(body, workers=1)

    def test_task_keys_must_be_content_digests(self, tmp_path):
        """The cache key is a filesystem path component downstream — the
        server only accepts hex digests, never client-chosen paths."""

        async def body(client, core):
            for hostile in (
                "00abcdef/../../../tmp/evil",   # traversal (hex shard
                                                # prefix, escaping suffix)
                "../../etc/passwd",
                "short",
                "G" * 32,                       # right length, not hex
                42,                             # not even a string
            ):
                with pytest.raises(CompileServerError) as excinfo:
                    await client.submit_task(runner=ECHO,
                                             payload={"value": 1},
                                             key=hostile, wait=False)
                assert excinfo.value.status == 400
            assert core.counters.submitted == 0
            # Nothing was ever written outside (or inside) the cache root.
            escape = tmp_path / "tmp" / "evil"
            assert not escape.exists()
            # A genuine digest is accepted and cached.
            job = await client.submit_task(runner=ECHO,
                                           payload={"value": 3},
                                           key=digest("good-key"),
                                           wait=True)
            assert job["state"] == "ok"

        run_http(body, workers=1,
                 disk_cache=ShardedArtifactCache(tmp_path / "cache",
                                                 shards=2))

    def test_full_queue_answers_429_with_retry_hint(self, tmp_path):
        async def body(client, core):
            blocker = {
                "log_path": str(tmp_path / "log.txt"),
                "gate_path": str(tmp_path / "gate"),
                "label": "blocker",
            }
            try:
                await client.submit_task(runner=GATED, payload=blocker,
                                         label="blocker", wait=False)
                # Wait for the lone worker to pick the blocker up.
                for _ in range(1000):
                    log = tmp_path / "log.txt"
                    if log.exists() and "start:blocker" in log.read_text():
                        break
                    await asyncio.sleep(0.005)
                await client.submit_task(
                    runner=LOGGED,
                    payload={"log_path": str(tmp_path / "log.txt"),
                             "label": "queued"},
                    wait=False)
                with pytest.raises(CompileServerError) as excinfo:
                    await client.submit_task(
                        runner=LOGGED,
                        payload={"log_path": str(tmp_path / "log.txt"),
                                 "label": "rejected"},
                        wait=False)
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after_s > 0
            finally:
                (tmp_path / "gate").write_text("open")
            # Everything accepted still completes.
            await client.drain(wait=True)
            assert core.counters.rejected_queue_full == 1
            assert core.counters.failed == 0

        run_http(body, workers=1, max_queue_depth=1)

    def test_draining_server_answers_503(self, tmp_path):
        async def body(client, core):
            answer = await client.drain(wait=True)
            assert answer["status"] == "draining"
            assert (await client.healthz())["status"] == "draining"
            with pytest.raises(CompileServerError) as excinfo:
                await client.compile(isax="dotprod")
            assert excinfo.value.status == 503

        run_http(body, workers=1)


class TestConcurrentClients:
    def test_many_concurrent_connections_coalesce(self, tmp_path):
        """A burst of identical compiles over real sockets collapses to
        one execution and every client still gets a full answer."""

        async def body(client, core):
            jobs = await asyncio.gather(*[
                client.compile(isax="sbox", core="PicoRV32", wait=True,
                               include_result=True)
                for _ in range(12)
            ])
            assert all(job["state"] == "ok" for job in jobs)
            verilogs = {job["result"]["verilog"] for job in jobs}
            assert len(verilogs) == 1
            counters = core.counters
            # One execution; everyone else coalesced or hit the warm tier.
            assert counters.executions == 1
            assert counters.coalesced + counters.cache_hits_memory == 11

        run_http(body, workers=2)

    def test_custom_source_compiles(self, tmp_path):
        async def body(client, core):
            source = ALL_ISAXES["dotprod"] + "\n// variant\n"
            job = await client.compile(source=source, isax="dotprod",
                                       core="VexRiscv", wait=True)
            assert job["state"] == "ok"
            assert job["result"]["verilog"]

        run_http(body, workers=1)
