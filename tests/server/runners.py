"""Module-level task runners for compile-server tests (importable by the
pool workers, hence not defined inside test functions).

``gated`` gives tests deterministic control over *when* a job finishes:
it marks the log the moment it starts executing, then blocks until the
gate file appears — so a test can hold the single worker busy, build up a
known queue state (coalesced followers, priority backlog, full queue),
and only then let execution proceed.  ``logged`` just records that (and
in which order) it ran.
"""

import pathlib
import time


def _append(log_path: str, line: str) -> None:
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def gated(payload: dict) -> dict:
    """Log ``start:<label>``, block until the gate file exists, then log
    ``run:<label>``."""
    _append(payload["log_path"], f"start:{payload['label']}")
    gate = pathlib.Path(payload["gate_path"])
    deadline = time.monotonic() + float(payload.get("timeout_s", 10.0))
    while not gate.exists():
        if time.monotonic() > deadline:
            raise RuntimeError("gate never opened")
        time.sleep(0.005)
    _append(payload["log_path"], f"run:{payload['label']}")
    return {"ran": payload["label"]}


def logged(payload: dict) -> dict:
    """Log ``run:<label>`` immediately — execution-order probe."""
    _append(payload["log_path"], f"run:{payload['label']}")
    return {"ran": payload["label"]}
