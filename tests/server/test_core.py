"""Scheduling-core tests: coalescing, priority, back-pressure, drain,
warm cache tiers, retry/backoff — all against :class:`CompileServer`
directly (no HTTP), driven with ``asyncio.run`` from sync tests."""

import asyncio
import pathlib

import pytest

from repro.server.core import (
    CompileServer,
    DrainingError,
    QueueFullError,
    UnknownJobError,
)
from repro.service.cache import ShardedArtifactCache
from repro.service.executor import TaskSpec
from repro.service.jobs import digest

ECHO = "tests.service.runners:echo"
FLAKY = "tests.service.runners:flaky"
GATED = "tests.server.runners:gated"
LOGGED = "tests.server.runners:logged"


def run_async(coro_fn, **server_kwargs):
    """Run one async test body against a started thread-backend server."""
    server_kwargs.setdefault("backend", "thread")

    async def _body():
        server = CompileServer(**server_kwargs)
        await server.start()
        try:
            await coro_fn(server)
        finally:
            await server.close(drain=False)

    asyncio.run(_body())


def _gated_spec(tmp_path: pathlib.Path, label: str,
                key=None) -> TaskSpec:
    return TaskSpec(
        runner=GATED,
        payload={
            "log_path": str(tmp_path / "log.txt"),
            "gate_path": str(tmp_path / "gate"),
            "label": label,
        },
        key=key,
        label=label,
    )


def _log_lines(tmp_path: pathlib.Path):
    log = tmp_path / "log.txt"
    if not log.exists():
        return []
    return [line for line in log.read_text().splitlines() if line]


async def _wait_for_start(tmp_path: pathlib.Path, label: str) -> None:
    for _ in range(1000):
        if f"start:{label}" in _log_lines(tmp_path):
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"worker never started {label}")


def _open_gate(tmp_path: pathlib.Path) -> None:
    (tmp_path / "gate").write_text("open")


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_execution(
            self, tmp_path):
        """8 identical submissions -> 1 execution, 8 results."""
        key = digest("coalesce-me")

        async def body(server):
            records = [await server.submit(_gated_spec(tmp_path, "a", key),
                                           priority="batch")
                       for _ in range(8)]
            try:
                assert server.counters.coalesced == 7
                followers = [r for r in records if r.coalesced_into]
                assert len(followers) == 7
                assert all(f.coalesced_into == records[0].job_id
                           for f in followers)
            finally:
                _open_gate(tmp_path)
            await asyncio.gather(*[r.wait() for r in records])
            assert all(r.state == "ok" for r in records)
            assert all(r.result == {"ran": "a"} for r in records)
            # The log proves a single execution reached the runner.
            assert _log_lines(tmp_path).count("run:a") == 1
            assert server.counters.executions == 1
            assert server.counters.completed == 8
            # Followers inherit the primary's attempt count and report
            # themselves as coalesced.
            assert followers[0].to_dict()["coalesced"] is True

        run_async(body, workers=2)

    def test_coalescing_requires_a_content_key(self, tmp_path):
        async def body(server):
            spec = _gated_spec(tmp_path, "nokey", key=None)
            first = await server.submit(spec)
            second = await server.submit(spec)
            _open_gate(tmp_path)
            await asyncio.gather(first.wait(), second.wait())
            assert server.counters.coalesced == 0
            assert server.counters.executions == 2

        run_async(body, workers=2)


class TestPriorityAndBackPressure:
    def test_priority_order_beats_submission_order(self, tmp_path):
        """With the lone worker pinned, a backlog drains interactive ->
        batch -> background regardless of arrival order."""

        async def body(server):
            blocker = await server.submit(_gated_spec(tmp_path, "blocker"))
            await _wait_for_start(tmp_path, "blocker")
            backlog = []
            for label, priority in (("bg", "background"),
                                    ("bt", "batch"),
                                    ("ia", "interactive")):
                spec = TaskSpec(
                    runner=LOGGED,
                    payload={"log_path": str(tmp_path / "log.txt"),
                             "label": label},
                    label=label)
                backlog.append(await server.submit(spec, priority=priority))
            _open_gate(tmp_path)
            await asyncio.gather(blocker.wait(),
                                 *[r.wait() for r in backlog])
            runs = [line for line in _log_lines(tmp_path)
                    if line.startswith("run:")]
            assert runs == ["run:blocker", "run:ia", "run:bt", "run:bg"]

        run_async(body, workers=1)

    def test_full_queue_rejects_with_retry_hint(self, tmp_path):
        async def body(server):
            blocker = await server.submit(_gated_spec(tmp_path, "blocker"))
            await _wait_for_start(tmp_path, "blocker")
            queued = []
            for index in range(2):
                spec = TaskSpec(
                    runner=LOGGED,
                    payload={"log_path": str(tmp_path / "log.txt"),
                             "label": f"q{index}"},
                    label=f"q{index}")
                queued.append(await server.submit(spec))
            assert server.queue_depth == 2
            overflow = TaskSpec(
                runner=LOGGED,
                payload={"log_path": str(tmp_path / "log.txt"),
                         "label": "overflow"},
                label="overflow")
            with pytest.raises(QueueFullError) as excinfo:
                await server.submit(overflow)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s > 0
            assert server.counters.rejected_queue_full == 1
            # The rejected request leaves no job record behind.
            assert server.counters.submitted == 4
            _open_gate(tmp_path)
            await asyncio.gather(blocker.wait(),
                                 *[r.wait() for r in queued])
            assert server.open_jobs == 0
            assert "run:overflow" not in _log_lines(tmp_path)

        run_async(body, workers=1, max_queue_depth=2)

    def test_unknown_priority_is_a_value_error(self, tmp_path):
        async def body(server):
            with pytest.raises(ValueError):
                await server.submit(
                    TaskSpec(runner=ECHO, payload={"value": 1}),
                    priority="urgent")

        run_async(body)


class TestDrain:
    def test_drain_finishes_accepted_work_and_rejects_new(self, tmp_path):
        async def body(server):
            blocker = await server.submit(_gated_spec(tmp_path, "blocker"))
            drain_task = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0)          # let drain() flip the flag
            assert server.draining
            with pytest.raises(DrainingError):
                await server.submit(
                    TaskSpec(runner=ECHO, payload={"value": 1}))
            assert server.counters.rejected_draining == 1
            assert not drain_task.done()    # blocker still running
            _open_gate(tmp_path)
            await drain_task
            assert blocker.state == "ok"
            assert server.open_jobs == 0
            assert server.healthz()["status"] == "draining"

        run_async(body, workers=1)


class TestWarmTiers:
    def test_memory_then_disk_hits(self, tmp_path):
        cache_root = tmp_path / "cache"
        key = digest("warm-tier")
        spec = TaskSpec(runner=ECHO, payload={"value": 42}, key=key,
                        label="warm")

        async def first_lifetime(server):
            executed = await server.submit(spec)
            await executed.wait()
            assert executed.state == "ok"
            assert executed.cached is None
            assert server.counters.cache_misses == 1
            # Same key again: answered from memory at submit time.
            warm = await server.submit(spec)
            assert warm.done and warm.cached == "memory"
            assert warm.result == {"echo": 42}
            assert server.counters.cache_hits_memory == 1
            assert server.counters.executions == 1

        run_async(first_lifetime, workers=1,
                  disk_cache=ShardedArtifactCache(cache_root, shards=4))

        async def second_lifetime(server):
            # Fresh process-equivalent: memory empty, disk warm.
            record = await server.submit(spec)
            assert record.done and record.cached == "disk"
            assert record.result == {"echo": 42}
            assert server.counters.cache_hits_disk == 1
            assert server.counters.executions == 0
            # ...and the disk hit repopulated the memory tier.
            again = await server.submit(spec)
            assert again.cached == "memory"

        run_async(second_lifetime, workers=1,
                  disk_cache=ShardedArtifactCache(cache_root, shards=4))

    def test_results_without_key_are_never_cached(self, tmp_path):
        async def body(server):
            spec = TaskSpec(runner=ECHO, payload={"value": 7})
            first = await server.submit(spec)
            await first.wait()
            second = await server.submit(spec)
            await second.wait()
            assert server.counters.executions == 2
            assert server.counters.cache_hits_memory == 0

        run_async(body, workers=1)


class TestRetryAndTrace:
    def test_transient_failure_retries_with_backoff(self, tmp_path):
        counter = tmp_path / "counter"
        spec = TaskSpec(
            runner=FLAKY,
            payload={"counter_path": str(counter), "fail_times": 1},
            key=digest("flaky-job"),
            label="flaky",
        )

        async def body(server):
            record = await server.submit(spec)
            await record.wait()
            assert record.state == "ok"
            assert record.attempts == 2
            assert record.backoff_seconds > 0
            retry_events = [e for e in record.events
                            if e["event"] == "retry"]
            assert len(retry_events) == 1
            assert retry_events[0]["backoff_s"] > 0

        run_async(body, workers=1, retries=1, backoff_base_s=0.001)

    def test_exhausted_retries_fail_the_job(self, tmp_path):
        counter = tmp_path / "counter"
        spec = TaskSpec(
            runner=FLAKY,
            payload={"counter_path": str(counter), "fail_times": 5},
            label="doomed",
        )

        async def body(server):
            record = await server.submit(spec)
            await record.wait()
            assert record.state == "failed"
            assert record.attempts == 2
            assert "transient failure" in record.error
            assert server.counters.failed == 1

        run_async(body, workers=1, retries=1, backoff_base_s=0.001)

    def test_malformed_key_rejected_without_phantom_record(self, tmp_path):
        """A key the disk cache cannot address is refused outright and
        leaves no queued record behind (no unbounded _jobs growth)."""

        async def body(server):
            bad = TaskSpec(runner=ECHO, payload={"value": 1},
                           key="00abcdef/../../../tmp/evil", label="bad")
            for _ in range(3):
                with pytest.raises(ValueError):
                    await server.submit(bad)
            assert server.open_jobs == 0
            assert not server._jobs
            # The server still accepts well-formed work afterwards.
            good = await server.submit(
                TaskSpec(runner=ECHO, payload={"value": 2},
                         key=digest("still-works"), label="good"))
            await good.wait()
            assert good.state == "ok"

        run_async(body, workers=1,
                  disk_cache=ShardedArtifactCache(tmp_path / "cache",
                                                  shards=2))

    def test_disk_cache_write_failure_does_not_fail_job_or_worker(
            self, tmp_path):
        """A put() that raises (disk full, permissions) must neither fail
        the computed job nor kill the worker task."""

        class BrokenCache:
            def get(self, key):
                return None

            def put(self, key, record):
                raise OSError("disk full")

        async def body(server):
            first = await server.submit(
                TaskSpec(runner=ECHO, payload={"value": 1},
                         key=digest("broken-1"), label="first"))
            await first.wait()
            assert first.state == "ok"
            assert any(e["event"] == "cache_write_failed"
                       for e in first.events)
            # The worker survived: a second distinct job still executes,
            # and drain() does not hang on a lost slot.
            second = await server.submit(
                TaskSpec(runner=ECHO, payload={"value": 2},
                         key=digest("broken-2"), label="second"))
            await second.wait()
            assert second.state == "ok"
            assert server.counters.executions == 2
            await asyncio.wait_for(server.drain(), timeout=5)
            assert server.open_jobs == 0

        run_async(body, workers=1, disk_cache=BrokenCache())

    def test_crash_in_execute_finalizes_job_and_followers(self, tmp_path):
        """An exception escaping _execute is a server bug, but it must
        finalize the record (and coalesced followers) instead of hanging
        every waiter and silently losing the worker."""

        async def body(server):
            def boom(key, value):
                raise RuntimeError("boom")

            server._memory_put = boom
            key = digest("crashy")
            primary = await server.submit(_gated_spec(tmp_path, "c", key))
            follower = await server.submit(_gated_spec(tmp_path, "c", key))
            _open_gate(tmp_path)
            await asyncio.wait_for(
                asyncio.gather(primary.wait(), follower.wait()), timeout=5)
            assert primary.state == "failed"
            assert follower.state == "failed"
            assert "internal error" in primary.error
            assert server.open_jobs == 0
            await asyncio.wait_for(server.drain(), timeout=5)

        run_async(body, workers=1)

    def test_job_trace_and_metrics_document(self, tmp_path):
        async def body(server):
            record = await server.submit(
                TaskSpec(runner=ECHO, payload={"value": 5}, label="traced"))
            await record.wait()
            names = [e["event"] for e in record.events]
            assert names == ["submitted", "queued", "started", "finished"]
            assert record.queue_wait_s is not None
            assert server.job(record.job_id) is record
            with pytest.raises(UnknownJobError):
                server.job("j99999999")
            doc = server.metrics()
            assert doc["server"]["counters"]["completed"] == 1
            assert doc["server"]["queue"]["max_depth"] == \
                server.max_queue_depth
            assert doc["server"]["latency"]["executed"]["count"] == 1
            assert doc["jobs_total"] == 1

        run_async(body, workers=1)

    def test_trace_timestamps_survive_wall_clock_steps(self, monkeypatch):
        """Trace ``ts`` values are the submit-time wall-clock anchor plus
        a monotonic delta — a wall clock stepping backwards mid-job (NTP,
        manual adjustment) must never produce a backwards event stream or
        disagree with the monotonic latency fields."""
        import repro.server.core as core_module

        anchor = 1_000_000.0
        wall = {"now": anchor}

        def backwards_clock():
            value = wall["now"]
            wall["now"] -= 50.0             # every read jumps backwards
            return value

        monkeypatch.setattr(core_module.time, "time", backwards_clock)
        record = core_module.JobRecord(
            "j0", TaskSpec(runner=ECHO, payload={}), "batch")
        record.add_event("submitted")
        record.add_event("queued", depth=1)
        record.mark_started()
        record.finalize("ok", result={})
        stamps = [event["ts"] for event in record.events]
        assert stamps == sorted(stamps)
        # Anchored once: every ts sits at/after the submit-time reading.
        assert all(ts >= anchor for ts in stamps)
        assert record.total_s is not None and record.total_s >= 0
