"""Server answers must be byte-identical to the batch CLI's artifacts —
the server is a scheduling layer, never a different compiler."""

import asyncio

from repro.cli import main
from repro.server import CompileServer, CompileServerApp, CompileServerClient


def _server_artifacts(cells):
    async def _run():
        core = CompileServer(workers=2, backend="thread")
        app = CompileServerApp(core)
        host, port = await app.start("127.0.0.1", 0)
        client = CompileServerClient(f"http://{host}:{port}")
        try:
            jobs = await asyncio.gather(*[
                client.compile(isax=isax, core=core_name, wait=True)
                for isax, core_name in cells
            ])
        finally:
            await app.close(drain=True)
        return jobs

    return asyncio.run(_run())


def test_server_artifacts_match_batch_cli_byte_for_byte(tmp_path):
    cells = [("dotprod", "VexRiscv"), ("zol", "Piccolo")]
    out = tmp_path / "out"
    assert main([
        "batch",
        "--isax", "dotprod", "--isax", "zol",
        "--core", "VexRiscv", "--core", "Piccolo",
        "--workers", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "-o", str(out),
    ]) == 0

    for (isax, core_name), job in zip(cells, _server_artifacts(cells)):
        assert job["state"] == "ok"
        base = out / core_name / isax
        assert job["result"]["verilog"] == \
            base.with_suffix(".sv").read_text()
        assert job["result"]["config_yaml"] == \
            base.with_suffix(".scaiev.yaml").read_text()
