"""End-to-end Longnail flow tests: hardware generation, SystemVerilog
emission, configuration files, mode selection, all four cores."""

import pytest

from repro.hls import compile_isax, emit_module
from repro.isaxes import ALL_ISAXES, DOTPROD, SQRT_DECOUPLED, SQRT_TIGHTLY, ZOL
from repro.scaiev import CORES, IsaxConfig
from repro.scaiev.integrate import integrate


class TestArtifacts:
    def test_dotprod_artifact(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        assert artifact.name == "X_DOTP"
        assert artifact.core_name == "VexRiscv"
        assert set(artifact.functionalities) == {"dotp"}

    def test_module_ports_have_stage_suffixes(self):
        """Figure 5d: numerical suffixes indicate the active stage."""
        artifact = compile_isax(DOTPROD, "VexRiscv")
        module = artifact.artifact("dotp").module
        for port in module.ports:
            assert port.name.rsplit("_", 1)[-1].isdigit()

    def test_rs1_input_at_register_read_stage(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        module = artifact.artifact("dotp").module
        rs1 = next(p for p in module.inputs if p.name.startswith("rs1_data"))
        assert rs1.stage == 2  # VexRiscv regfile window starts at stage 2

    def test_config_contains_encoding_mask(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        func = artifact.config.functionalities[0]
        assert func.mask == "0000000----------000-----0001011"

    def test_config_yaml_roundtrip(self):
        artifact = compile_isax(ZOL, "VexRiscv")
        restored = IsaxConfig.from_yaml(artifact.config_yaml)
        assert restored.name == "zol"
        assert {r.name for r in restored.registers} == {
            "START_PC", "END_PC", "COUNT"
        }

    def test_custom_register_write_emits_addr_and_data(self):
        """Figure 8: WrCOUNT.addr and WrCOUNT.data entries."""
        artifact = compile_isax(ZOL, "VexRiscv")
        setup = next(f for f in artifact.config.functionalities
                     if f.name == "setup_zol")
        interfaces = [e.interface for e in setup.schedule]
        assert "WrCOUNT.addr" in interfaces
        assert "WrCOUNT.data" in interfaces
        data = setup.entry("WrCOUNT.data")
        assert data.has_valid

    def test_always_block_schedule_in_stage_zero(self):
        artifact = compile_isax(ZOL, "VexRiscv")
        always = next(f for f in artifact.config.functionalities
                      if f.kind == "always")
        assert all(e.stage == 0 for e in always.schedule)
        assert all(e.mode == "always" for e in always.schedule)


class TestModeSelection:
    def test_sqrt_tightly_mode(self):
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        assert artifact.artifact("fsqrt").mode.value == "tightly_coupled"

    def test_sqrt_decoupled_mode(self):
        artifact = compile_isax(SQRT_DECOUPLED, "VexRiscv")
        assert artifact.artifact("fsqrt").mode.value == "decoupled"

    def test_sqrt_longer_than_any_pipeline(self):
        """Section 5.4: the computation spans more stages than any host
        core can accommodate."""
        for core in CORES:
            artifact = compile_isax(SQRT_TIGHTLY, core)
            span = artifact.artifact("fsqrt").schedule.makespan
            assert span > artifact.datasheet.stages

    def test_dotprod_in_pipeline_on_slow_cores(self):
        artifact = compile_isax(DOTPROD, "Piccolo")
        assert artifact.artifact("dotp").mode.value == "in_pipeline"


class TestAllIsaxesAllCores:
    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("name", sorted(ALL_ISAXES))
    def test_compiles_and_verifies(self, core, name):
        artifact = compile_isax(ALL_ISAXES[name], core)
        for functionality in artifact.functionalities.values():
            functionality.module.verify()
            functionality.schedule.problem.verify()

    @pytest.mark.parametrize("core", CORES)
    def test_autoinc_zol_combination_integrates(self, core):
        autoinc = compile_isax(ALL_ISAXES["autoinc"], core)
        zol = compile_isax(ALL_ISAXES["zol"], core)
        result = integrate(
            autoinc.datasheet,
            [(autoinc.config, None), (zol.config, None)],
        )
        assert len(result.configs) == 2


class TestVerilog:
    def test_verilog_structure(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        text = artifact.verilog
        assert text.startswith("module dotp(")
        assert "endmodule" in text
        assert "output logic [31:0] wrrd_data" in text

    def test_pipeline_registers_are_stallable(self):
        """Figure 5d: pipe_2 <= stall_in_2 ? pipe_2 : ..."""
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        text = artifact.verilog
        assert "always_ff @(posedge clk)" in text
        assert "stall_in" in text
        assert "? pipe_" in text  # hold value while stalled

    def test_rom_emitted_as_localparam(self):
        artifact = compile_isax(ALL_ISAXES["sbox"], "VexRiscv")
        text = artifact.verilog
        assert "localparam" in text
        assert "rom_SBOX" in text

    def test_combinational_module_has_no_clock(self):
        artifact = compile_isax(ZOL, "VexRiscv")
        always_mod = artifact.artifact("zol").module
        text = emit_module(always_mod)
        assert "clk" not in text

    def test_signed_comparison_uses_signed_cast(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        # dotprod is all adds/muls; build a small signed-compare ISAX here.
        source = '''
        import "RV32I.core_desc"
        InstructionSet smax extends RV32I {
          instructions {
            smax {
              encoding: 7'd9 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
              behavior: {
                signed<32> a = (signed) X[rs1];
                signed<32> b = (signed) X[rs2];
                X[rd] = (unsigned) (a > b ? a : b);
              }
            }
          }
        }
        '''
        artifact = compile_isax(source, "VexRiscv")
        assert "$signed" in artifact.verilog
