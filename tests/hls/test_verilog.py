"""Unit tests for the SystemVerilog printer."""

import re

import pytest

from repro.dialects.hw import HWModule
from repro.hls.verilog import emit_module
from repro.ir.core import IRError, Operation


def wire(module, name, operands, result_types, attrs=None):
    op = Operation(name, operands, result_types, attrs or {})
    module.body.append(op)
    return op


class TestExpressions:
    def emit_unary_module(self, op_name, width=8, attrs=None, operands=1):
        module = HWModule("m")
        values = [module.add_input(f"i{k}", width) for k in range(operands)]
        op = wire(module, op_name, values, [(width, None)], attrs)
        module.add_output("o", op.result)
        return emit_module(module)

    def test_add(self):
        text = self.emit_unary_module("comb.add", operands=2)
        assert "i0 + i1" in text

    def test_signed_division(self):
        text = self.emit_unary_module("comb.divs", operands=2)
        assert "$signed(i0) / $signed(i1)" in text

    def test_arithmetic_shift(self):
        text = self.emit_unary_module("comb.shrs", operands=2)
        assert ">>>" in text

    def test_not(self):
        text = self.emit_unary_module("comb.not")
        assert "~i0" in text

    def test_icmp_unsigned_vs_signed(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        b = module.add_input("b", 8)
        ult = wire(module, "comb.icmp", [a, b], [(1, None)],
                   {"predicate": "ult"})
        slt = wire(module, "comb.icmp", [a, b], [(1, None)],
                   {"predicate": "slt"})
        module.add_output("u", ult.result)
        module.add_output("s", slt.result)
        text = emit_module(module)
        assert "a < b" in text
        assert "$signed(a) < $signed(b)" in text

    def test_mux(self):
        module = HWModule("m")
        c = module.add_input("c", 1)
        a = module.add_input("a", 8)
        b = module.add_input("b", 8)
        mux = wire(module, "comb.mux", [c, a, b], [(8, None)])
        module.add_output("o", mux.result)
        assert "c ? a : b" in emit_module(module)

    def test_extract_single_bit(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        bit = wire(module, "comb.extract", [a], [(1, None)], {"low": 3})
        module.add_output("o", bit.result)
        assert "a[3]" in emit_module(module)

    def test_extract_range(self):
        module = HWModule("m")
        a = module.add_input("a", 16)
        part = wire(module, "comb.extract", [a], [(8, None)], {"low": 4})
        module.add_output("o", part.result)
        assert "a[11:4]" in emit_module(module)

    def test_concat_and_replicate(self):
        module = HWModule("m")
        a = module.add_input("a", 4)
        b = module.add_input("b", 4)
        cat = wire(module, "comb.concat", [a, b], [(8, None)])
        rep = wire(module, "comb.replicate", [b], [(12, None)])
        module.add_output("c", cat.result)
        module.add_output("r", rep.result)
        text = emit_module(module)
        assert "{a, b}" in text
        assert "{{3{b}}}" in text

    def test_constant(self):
        module = HWModule("m")
        const = wire(module, "comb.constant", [], [(12, None)], {"value": 42})
        module.add_output("o", const.result)
        assert "12'd42" in emit_module(module)

    def test_rom_localparam(self):
        module = HWModule("m")
        index = module.add_input("i", 2)
        rom = wire(module, "comb.rom", [index], [(8, None)],
                   {"values": [1, 2, 3, 4], "name": "T"})
        module.add_output("o", rom.result)
        text = emit_module(module)
        assert "localparam logic [7:0] rom_T [0:3]" in text
        assert "rom_T[i]" in text


class TestStructure:
    def test_width_one_ports_have_no_range(self):
        module = HWModule("m")
        a = module.add_input("a", 1)
        module.add_output("o", a)
        text = emit_module(module)
        assert "input  logic a" in text
        assert "[0:0]" not in text

    def test_clock_only_with_registers(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        module.add_output("o", a)
        assert "clk" not in emit_module(module)

        reg = wire(module, "seq.compreg", [a], [(8, None)], {"name": "r"})
        module.add_output("q", reg.result)
        text = emit_module(module)
        assert "input  logic clk" in text
        assert "r <= a;" in text

    def test_register_with_enable(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        en = module.add_input("en", 1)
        reg = wire(module, "seq.compreg", [a, en], [(8, None)], {"name": "r"})
        module.add_output("q", reg.result)
        assert "r <= en ? a : r;" in emit_module(module)

    def test_module_name_sanitized(self):
        module = HWModule("weird name!")
        a = module.add_input("a", 1)
        module.add_output("o", a)
        assert emit_module(module).startswith("module weird_name_(")

    def test_undriven_output_rejected_by_verify(self):
        module = HWModule("m")
        module.add_input("a", 8)
        module.ports.append(
            type(module.ports[0])("ghost", "out", 8)
        )
        with pytest.raises(IRError, match="not driven"):
            module.verify()

    def test_emitted_text_is_balanced(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        b = module.add_input("b", 8)
        add = wire(module, "comb.add", [a, b], [(8, None)])
        module.add_output("o", add.result)
        text = emit_module(module)
        assert text.count("module ") == 1
        assert text.strip().endswith("endmodule")
        assert text.count("(") == text.count(")")
