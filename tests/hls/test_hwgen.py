"""Unit tests for hardware generation (schedule -> pipelined hw module)."""

import pytest

from repro.frontend import elaborate
from repro.hls import compile_isax, generate_module
from repro.hls.hwgen import generate_module as generate
from repro.ir.core import IRError
from repro.isaxes import SQRT_TIGHTLY
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scheduling import LongnailScheduler


def compiled(source, core="VexRiscv", **kwargs):
    isa = elaborate(source)
    lowered = lower_isa(isa)
    name = next(iter(lowered.instructions))
    graph = convert_to_lil(isa, lowered.instructions[name])
    schedule = LongnailScheduler(core_datasheet(core), **kwargs).schedule(graph)
    return graph, schedule, generate(graph, schedule)


SIMPLE = '''
import "RV32I.core_desc"
InstructionSet s extends RV32I {
  instructions {
    s {
      encoding: 10'd0 :: rs2[4:0] :: rs1[4:0] :: rd[4:0] :: 7'b0001011;
      behavior: { X[rd] = (unsigned<32>) (X[rs1] + X[rs2]); }
    }
  }
}
'''


class TestPorts:
    def test_input_ports_carry_roles(self):
        _graph, _schedule, module = compiled(SIMPLE)
        roles = {p.role for p in module.inputs}
        assert {"RdRS1", "RdRS2"} <= roles

    def test_output_ports_carry_roles(self):
        _graph, _schedule, module = compiled(SIMPLE)
        assert {p.role for p in module.outputs} == {"WrRD"}

    def test_port_stages_recorded(self):
        _graph, schedule, module = compiled(SIMPLE)
        rs1 = next(p for p in module.inputs if p.name.startswith("rs1"))
        assert rs1.stage == 2

    def test_duplicate_port_rejected(self):
        from repro.dialects.hw import HWModule

        module = HWModule("m")
        module.add_input("a", 8)
        with pytest.raises(IRError):
            module.add_input("a", 8)


class TestPipelining:
    def test_register_count_attribute(self):
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        module = artifact.artifact("fsqrt").module
        actual = sum(1 for op in module.body.operations
                     if op.name == "seq.compreg")
        assert module.attributes["pipeline_registers"] == actual
        assert module.attributes["makespan"] == \
            artifact.artifact("fsqrt").schedule.makespan

    def test_stall_inputs_created_per_boundary(self):
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        module = artifact.artifact("fsqrt").module
        stalls = [p for p in module.inputs if p.name.startswith("stall_in")]
        # One stall input per crossed stage boundary, at most span many.
        span = artifact.artifact("fsqrt").schedule.makespan
        assert 1 <= len(stalls) <= span

    def test_constants_are_not_piped(self):
        _graph, _schedule, module = compiled(SIMPLE)
        for op in module.body.operations:
            if op.name == "seq.compreg":
                producer = op.operands[0].owner
                assert producer is None or producer.name != "comb.constant"

    def test_combinational_single_stage_module_has_no_registers(self):
        # At a very slow clock everything fits into one stage.
        _graph, _schedule, module = compiled(SIMPLE, cycle_time_ns=20.0)
        assert not module.registers()

    def test_free_ops_rematerialized_not_piped(self):
        """extract/concat results must never feed a pipeline register; only
        their source operands are registered."""
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        module = artifact.artifact("fsqrt").module
        for op in module.body.operations:
            if op.name == "seq.compreg":
                producer = op.operands[0].owner
                if producer is not None:
                    assert producer.name not in ("comb.extract",
                                                 "comb.concat",
                                                 "comb.replicate")
