"""Tests for the resource-sharing analysis (paper Section 7 outlook)."""

import pytest

from repro.hls import analyze_functionality, analyze_isax, compile_isax
from repro.hls.sharing import render_tradeoff
from repro.isaxes import DOTPROD, SPARKLE, SQRT_TIGHTLY


@pytest.fixture(scope="module")
def sqrt_report():
    artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
    return analyze_functionality(artifact.artifact("fsqrt"))


@pytest.fixture(scope="module")
def sparkle_report():
    artifact = compile_isax(SPARKLE, "VexRiscv")
    return analyze_isax(artifact)


class TestWithinInstruction:
    def test_sqrt_has_many_shareable_units(self, sqrt_report):
        kinds = {group.kind for group in sqrt_report.groups}
        assert "comb.sub" in kinds and "comb.icmp" in kinds
        subs = next(g for g in sqrt_report.groups if g.kind == "comb.sub")
        assert subs.instances > 20  # 32 unrolled iterations

    def test_spatial_point_matches_generator(self, sqrt_report):
        spatial = sqrt_report.spatial_point
        assert spatial.initiation_interval == 1
        assert spatial.controller_area_um2 == 0.0
        subs = next(g for g in sqrt_report.groups if g.kind == "comb.sub")
        assert spatial.units["comb.sub"] == subs.instances

    def test_sharing_floor_is_max_concurrency(self, sqrt_report):
        for group in sqrt_report.groups:
            assert group.max_concurrent <= group.instances
            assert group.units_needed(1) == group.max_concurrent

    def test_sqrt_sharing_saves_area_at_low_ii(self, sqrt_report):
        """Time-multiplexing the per-stage subtractors pays off a bit..."""
        assert sqrt_report.saving_pct(2) > 5

    def test_oversharing_costs_area(self, sqrt_report):
        """...but collapsing to one unit makes the 34-bit input muxes cost
        more than the subtractors they replace — the classic HLS result."""
        assert sqrt_report.saving_pct(8) < sqrt_report.saving_pct(2)

    def test_controller_charged_only_when_sharing(self, sqrt_report):
        assert sqrt_report.point(1).controller_area_um2 == 0.0
        assert sqrt_report.point(2).controller_area_um2 > 0.0


class TestAcrossInstructions:
    def test_sparkle_pools_adders(self, sparkle_report):
        """alzette_x and alzette_y contain the same 4-round adder chain;
        pooling across instruction boundaries shares them."""
        adds = next(g for g in sparkle_report.groups
                    if g.kind == "comb.add")
        assert adds.instances == 8  # 4 per instruction
        assert sparkle_report.saving_pct(4) > 10

    def test_dotprod_multipliers_fully_parallel(self):
        """dotprod's 4 multipliers run in the same time step: no sharing is
        possible at II=1."""
        artifact = compile_isax(DOTPROD, "VexRiscv")
        report = analyze_functionality(artifact.artifact("dotp"))
        muls = next(g for g in report.groups if g.kind == "comb.mul")
        assert muls.instances == 4
        assert muls.max_concurrent == 4
        assert report.point(1).units["comb.mul"] == 4
        # At II=4 one multiplier suffices (the paper's packed-SIMD economy).
        assert report.point(4).units["comb.mul"] == 1


class TestRendering:
    def test_render(self, sqrt_report):
        text = render_tradeoff(sqrt_report)
        assert "II" in text and "saving" in text
        assert "fsqrt" in text

    def test_best_point(self, sparkle_report):
        best = sparkle_report.best_point()
        assert best.total_area_um2 <= \
            sparkle_report.spatial_point.total_area_um2
