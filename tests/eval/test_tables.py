"""Tests for table rendering and the recorded paper reference values."""

import pytest

from repro.eval.asic import evaluate_combination
from repro.eval.tables import (
    PAPER_BASELINES,
    PAPER_TABLE4,
    render_table1,
    render_table3,
    render_table4,
)
from repro.isaxes import SBOX


class TestPaperReference:
    def test_baselines_match_datasheets(self):
        from repro.scaiev import core_datasheet

        for core, (area, freq) in PAPER_BASELINES.items():
            datasheet = core_datasheet(core)
            assert datasheet.base_area_um2 == area
            assert datasheet.base_freq_mhz == freq

    def test_every_row_has_all_cores(self):
        for row, cells in PAPER_TABLE4.items():
            assert set(cells) == {"ORCA", "Piccolo", "PicoRV32", "VexRiscv"}

    def test_specific_published_cells(self):
        """Spot-check transcription of the paper's numbers."""
        assert PAPER_TABLE4["dotprod"]["ORCA"] == (23, -14)
        assert PAPER_TABLE4["sqrt_tightly"]["ORCA"] == (80, -32)
        assert PAPER_TABLE4["sparkle"]["VexRiscv"] == (45, -2)
        assert PAPER_TABLE4["autoinc+zol"]["VexRiscv"] == (16, 5)


class TestRendering:
    def test_table1_lists_all_interfaces(self):
        text = render_table1()
        assert "RdIValid_s" in text  # the per-stage suffix convention
        assert "Read the program counter." in text

    def test_table3_lists_all_isaxes(self):
        text = render_table3()
        for name in ("autoinc", "dotprod", "ijmp", "sbox", "sparkle",
                     "sqrt_tightly", "sqrt_decoupled", "zol"):
            assert name in text

    def test_table4_render_with_and_without_paper(self):
        row = {"sbox": {
            core: evaluate_combination(core, [SBOX])
            for core in ("ORCA", "VexRiscv")
        }}
        with_paper = render_table4(row, include_paper=True,
                                   cores=("ORCA", "VexRiscv"))
        without = render_table4(row, include_paper=False,
                                cores=("ORCA", "VexRiscv"))
        assert "paper" in with_paper
        assert "paper" not in without
        assert "6,612" in with_paper  # ORCA baseline row
