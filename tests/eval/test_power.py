"""Tests for the power/energy model behind the Section 5.6 claim."""

import pytest

from repro.eval.power import PowerEstimate, compare, estimate_workload


def make(area=10000.0, isax=0.0, cycles=1000, freq=700.0, activity=0.0):
    return PowerEstimate(
        area_um2=area, isax_area_um2=isax, cycles=cycles, freq_mhz=freq,
        isax_activity=activity,
    )


class TestPowerEstimate:
    def test_components_positive(self):
        estimate = make()
        assert estimate.dynamic_uw > 0
        assert estimate.leakage_uw > 0
        assert estimate.power_uw == pytest.approx(
            estimate.dynamic_uw + estimate.leakage_uw
        )

    def test_runtime_and_energy(self):
        estimate = make(cycles=700, freq=700.0)
        assert estimate.runtime_us == pytest.approx(1.0)
        assert estimate.energy_nj == pytest.approx(
            estimate.power_uw / 1000.0
        )

    def test_idle_isax_adds_leakage_only(self):
        base = make(area=10000.0)
        extended = make(area=12000.0, isax=2000.0, activity=0.0)
        assert extended.dynamic_uw == pytest.approx(base.dynamic_uw)
        assert extended.leakage_uw > base.leakage_uw

    def test_active_isax_adds_dynamic_power(self):
        idle = make(area=12000.0, isax=2000.0, activity=0.0)
        busy = make(area=12000.0, isax=2000.0, activity=1.0)
        assert busy.dynamic_uw > idle.dynamic_uw

    def test_dynamic_scales_with_frequency(self):
        slow = make(freq=350.0)
        fast = make(freq=700.0)
        assert fast.dynamic_uw == pytest.approx(2 * slow.dynamic_uw)


class TestCompare:
    def test_faster_smaller_energy(self):
        baseline = make(cycles=2000)
        extended = estimate_workload(10000.0, 1600.0, 1000, 700.0,
                                     isax_cycles=500)
        result = compare(baseline, extended)
        assert result["speedup"] == pytest.approx(2.0)
        # Twice as fast with +16 % area: energy clearly drops.
        assert result["energy_savings_pct"] > 25
        assert result["energy_ratio"] == pytest.approx(
            1 - result["energy_savings_pct"] / 100
        )

    def test_activity_clamped(self):
        estimate = estimate_workload(1000.0, 100.0, 10, 700.0,
                                     isax_cycles=50)
        assert estimate.isax_activity == 1.0

    def test_section56_shape(self):
        """A 2.15x-faster run with ~28 % more area saves on the order of
        the paper's 30 % (power x shorter runtime = energy)."""
        baseline = make(area=9052.0, cycles=8600)
        extended = estimate_workload(9052.0, 2500.0, 4000, 700.0,
                                     isax_cycles=2000)
        result = compare(baseline, extended)
        assert 25 < result["energy_savings_pct"] < 70
