"""Tests for the ASIC evaluation model: technology library, area, timing,
and the Table 4 shape assertions."""

import pytest

from repro.eval import (
    AsicResult,
    TechLibrary,
    evaluate_combination,
    glue_area,
    module_area,
    module_critical_path,
)
from repro.eval.timing import forwarding_path_cycle, output_arrival_times
from repro.hls import compile_isax
from repro.ir.core import Operation
from repro.isaxes import ALL_ISAXES, DOTPROD, SBOX, SQRT_TIGHTLY
from repro.scaiev import core_datasheet
from repro.scaiev.integrate import GlueItem


def make_op(name, operand_widths, result_width, attrs=None):
    operands = []
    for width in operand_widths:
        const = Operation("comb.constant", [], [(width, None)], {"value": 0})
        operands.append(const.result)
    return Operation(name, operands, [(result_width, None)], attrs or {})


class TestTechLibrary:
    def setup_method(self):
        self.tech = TechLibrary()

    def test_multiplier_dwarfs_adder(self):
        mul = make_op("comb.mul", [32, 32], 64)
        add = make_op("comb.add", [32, 32], 32)
        assert self.tech.area_um2(mul) > 10 * self.tech.area_um2(add)
        assert self.tech.delay_ns(mul) > self.tech.delay_ns(add)

    def test_mul_uses_pre_extension_widths(self):
        narrow = make_op("comb.mul", [16, 16], 16,
                         {"op_widths": [8, 8]})
        wide = make_op("comb.mul", [16, 16], 16)
        assert self.tech.area_um2(narrow) < self.tech.area_um2(wide)

    def test_wiring_is_free(self):
        for name in ("comb.extract", "comb.concat", "comb.replicate"):
            op = make_op(name, [32], 16, {"low": 0})
            assert self.tech.area_um2(op) == 0.0
            assert self.tech.delay_ns(op) == 0.0

    def test_adder_delay_grows_with_width(self):
        add8 = make_op("comb.add", [8, 8], 8)
        add64 = make_op("comb.add", [64, 64], 64)
        assert self.tech.delay_ns(add64) > self.tech.delay_ns(add8)

    def test_sbox_rom_area_plausible(self):
        rom = make_op("comb.rom", [8], 8, {"values": list(range(256))})
        area = self.tech.area_um2(rom)
        assert 50 < area < 400  # an AES S-box is a few hundred GE

    def test_flipflop_area(self):
        reg = make_op("seq.compreg", [32, 1], 32, {"name": "r"})
        assert self.tech.area_um2(reg) == pytest.approx(64.0)


class TestAreaModel:
    def test_module_area_positive(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        area = module_area(artifact.artifact("dotp").module)
        assert 200 < area < 5000

    def test_glue_area(self):
        items = [GlueItem("storage", 96, "regs"), GlueItem("decode", 15, "d")]
        area = glue_area(items)
        assert area == pytest.approx((96 * 2.0 + 15 * 0.3) * 1.25)

    def test_sqrt_dominated_by_pipeline(self):
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        module = artifact.artifact("fsqrt").module
        tech = TechLibrary()
        reg_area = sum(tech.area_um2(op) for op in module.body.operations
                       if op.name == "seq.compreg")
        assert reg_area > 0.1 * module_area(module)


class TestTimingModel:
    def test_critical_path_positive(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        path = module_critical_path(artifact.artifact("dotp").module)
        assert 0.0 < path < 5.0

    def test_scheduled_modules_meet_cycle_time(self):
        """With technology delays in the scheduler, chain breaking keeps
        every stage within the core's cycle time (plus clocking margin)."""
        for name in ("dotprod", "sqrt_tightly", "sparkle"):
            artifact = compile_isax(ALL_ISAXES[name], "VexRiscv")
            ds = core_datasheet("VexRiscv")
            for functionality in artifact.functionalities.values():
                path = module_critical_path(functionality.module)
                assert path <= ds.cycle_time_ns + 0.15

    def test_output_arrivals(self):
        artifact = compile_isax(SBOX, "VexRiscv")
        arrivals = output_arrival_times(artifact.artifact("sbox").module)
        assert any(name.startswith("wrrd_data") for name in arrivals)

    def test_forwarding_only_on_forwarding_cores(self):
        artifact_orca = compile_isax(DOTPROD, "ORCA")
        artifact_vex = compile_isax(DOTPROD, "VexRiscv")
        assert forwarding_path_cycle(core_datasheet("ORCA"),
                                     [artifact_orca]) > 0
        assert forwarding_path_cycle(core_datasheet("VexRiscv"),
                                     [artifact_vex]) == 0.0


class TestAsicEvaluation:
    def test_result_properties(self):
        result = evaluate_combination("VexRiscv", [SBOX])
        assert isinstance(result, AsicResult)
        assert result.base_area_um2 == 9052.0
        assert result.area_overhead_pct > 0
        assert abs(result.freq_delta_pct) < 15

    def test_deterministic(self):
        a = evaluate_combination("VexRiscv", [DOTPROD])
        b = evaluate_combination("VexRiscv", [DOTPROD])
        assert a.extension_area_um2 == b.extension_area_um2
        assert a.freq_mhz == b.freq_mhz


class TestTable4Shape:
    """The qualitative claims of Table 4 that must hold in the model."""

    @pytest.fixture(scope="class")
    def rows(self):
        names = ("sbox", "ijmp", "dotprod", "sqrt_tightly", "sqrt_decoupled")
        table = {}
        for name in names:
            table[name] = {
                core: evaluate_combination(core, [ALL_ISAXES[name]])
                for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv")
            }
        return table

    def test_piccolo_has_smallest_relative_overhead(self, rows):
        """Piccolo is by far the largest base core, so relative overheads
        are smallest there (visible throughout Table 4)."""
        for name, row in rows.items():
            for core in ("ORCA", "PicoRV32", "VexRiscv"):
                assert (row["Piccolo"].area_overhead_pct
                        <= row[core].area_overhead_pct)

    def test_sqrt_is_largest_extension(self, rows):
        for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
            for name in ("sbox", "ijmp", "dotprod"):
                assert (rows["sqrt_tightly"][core].extension_area_um2
                        > rows[name][core].extension_area_um2)

    def test_sbox_and_ijmp_are_small(self, rows):
        for core in ("ORCA", "Piccolo", "PicoRV32", "VexRiscv"):
            assert rows["sbox"][core].area_overhead_pct < 10
            assert rows["ijmp"][core].area_overhead_pct < 10

    def test_orca_frequency_regression_on_dotprod(self, rows):
        """Section 5.4: dotprod regresses on ORCA due to the forwarding
        path, but not (much) on the non-forwarding cores."""
        assert rows["dotprod"]["ORCA"].freq_delta_pct < -8
        assert rows["dotprod"]["VexRiscv"].freq_delta_pct > -5
        assert rows["dotprod"]["Piccolo"].freq_delta_pct > -5

    def test_hazard_ablation_saves_area(self):
        src = ALL_ISAXES["sqrt_decoupled"]
        with_h = evaluate_combination("ORCA", [src], hazard_handling=True)
        without = evaluate_combination("ORCA", [src], hazard_handling=False)
        assert without.extension_area_um2 < with_h.extension_area_um2

    def test_combination_close_to_sum(self):
        a = evaluate_combination("VexRiscv", [ALL_ISAXES["autoinc"]])
        z = evaluate_combination("VexRiscv", [ALL_ISAXES["zol"]])
        both = evaluate_combination(
            "VexRiscv", [ALL_ISAXES["autoinc"], ALL_ISAXES["zol"]]
        )
        total = a.extension_area_um2 + z.extension_area_um2
        assert both.extension_area_um2 == pytest.approx(total, rel=0.2)


class TestUniformDelayAblation:
    """Scheduling with the paper's uniform delays produces stages that
    violate real timing — the Section 5.4 timing-closure story."""

    def test_uniform_schedules_break_timing_on_fast_cores(self):
        tech_result = evaluate_combination(
            "ORCA", [SQRT_TIGHTLY], schedule_delays="tech"
        )
        uniform_result = evaluate_combination(
            "ORCA", [SQRT_TIGHTLY], schedule_delays="uniform"
        )
        # The uniform-delay schedule needs more stages or misses frequency.
        assert (uniform_result.freq_mhz <= tech_result.freq_mhz
                or uniform_result.extension_area_um2
                > tech_result.extension_area_um2)
