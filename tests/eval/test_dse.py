"""Tests for the design-space exploration (paper Section 7 outlook)."""

import pytest

from repro.eval.dse import (
    DesignPoint,
    explore,
    pareto_frontier,
    render_design_space,
)
from repro.isaxes import DOTPROD, SQRT_TIGHTLY


def point(area, latency, **kwargs):
    defaults = dict(instruction="i", cycle_time_ns=1.0,
                    initiation_interval=1, pipeline_stages=1)
    defaults.update(kwargs)
    return DesignPoint(area_um2=area, latency_ns=latency, **defaults)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert point(10, 10).dominates(point(20, 20))

    def test_tradeoff_does_not_dominate(self):
        a, b = point(10, 20), point(20, 10)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_does_not_dominate(self):
        assert not point(10, 10).dominates(point(10, 10))

    def test_frontier_is_non_dominated(self):
        points = [point(10, 30), point(20, 20), point(30, 10),
                  point(25, 25), point(40, 40)]
        frontier = pareto_frontier(points)
        assert {(p.area_um2, p.latency_ns) for p in frontier} == \
            {(10, 30), (20, 20), (30, 10)}

    def test_frontier_sorted_by_area(self):
        frontier = pareto_frontier([point(30, 10), point(10, 30)])
        assert [p.area_um2 for p in frontier] == [10, 30]


class TestExploration:
    @pytest.fixture(scope="class")
    def sqrt_points(self):
        return explore(SQRT_TIGHTLY, "VexRiscv",
                       cycle_scales=(1.0, 2.0, 4.0),
                       initiation_intervals=(1, 2))

    def test_sweep_size(self, sqrt_points):
        assert len(sqrt_points) == 6

    def test_slower_clock_fewer_stages(self, sqrt_points):
        by_cycle = {}
        for p in sqrt_points:
            by_cycle.setdefault(round(p.cycle_time_ns, 2),
                                p.pipeline_stages)
        cycles = sorted(by_cycle)
        assert by_cycle[cycles[0]] > by_cycle[cycles[-1]]

    def test_latency_is_stages_times_cycle(self, sqrt_points):
        for p in sqrt_points:
            assert p.latency_ns == pytest.approx(
                p.pipeline_stages * p.cycle_time_ns
            )

    def test_frontier_contains_tradeoffs(self, sqrt_points):
        frontier = pareto_frontier(sqrt_points)
        assert frontier
        # The deep sqrt pipeline always has an area/latency conflict, so the
        # cheapest point is not also the fastest unless it dominates all.
        cheapest = frontier[0]
        fastest = min(sqrt_points, key=lambda p: p.latency_ns)
        assert cheapest.area_um2 <= fastest.area_um2

    def test_throughput_property(self):
        p = point(1, 1, cycle_time_ns=2.0, initiation_interval=4)
        assert p.throughput_per_us == pytest.approx(125.0)

    def test_render(self, sqrt_points):
        text = render_design_space(sqrt_points)
        assert "pareto" in text
        assert "*" in text

    def test_dotprod_explores_too(self):
        points = explore(DOTPROD, "Piccolo", cycle_scales=(1.0, 2.0),
                         initiation_intervals=(1,))
        assert len(points) == 2
        assert all(p.instruction == "dotp" for p in points)


class TestExploreDiscovered:
    def test_mines_then_sweeps_the_step_instruction(self):
        from repro.eval.dse import explore_discovered

        report, points = explore_discovered(
            "array_sum", params={"n": 16}, budget=4, trials=2,
            cycle_scales=(1.0, 2.0), initiation_intervals=(1,))
        assert report.winner is not None
        assert len(points) == 2
        assert all(p.instruction.endswith("_step") for p in points)
        assert all(p.area_um2 > 0 for p in points)

    def test_no_winner_raises(self):
        from repro.eval.dse import explore_discovered

        with pytest.raises(ValueError, match="no verified candidate"):
            # budget 0 prices nothing, so there can be no winner
            explore_discovered("array_sum", params={"n": 16}, budget=0)
