"""Error-path coverage across the flow: every stage reports malformed
input with a diagnostic rather than failing deep inside."""

import pytest

from repro.frontend import elaborate
from repro.frontend.parser import parse_description
from repro.hls import compile_isax
from repro.scaiev.datasheet import InterfaceTiming, VirtualDatasheet
from repro.utils import yaml_lite
from repro.utils.diagnostics import CoreDSLError


def isax(behavior="", state="", encoding="25'd0 :: 7'b0001011"):
    return f"""
    import "RV32I.core_desc"
    InstructionSet T extends RV32I {{
      architectural_state {{ {state} }}
      instructions {{
        t {{ encoding: {encoding}; behavior: {{ {behavior} }} }}
      }}
    }}
    """


class TestParserErrors:
    @pytest.mark.parametrize("source, fragment", [
        ("InstructionSet {", "identifier"),
        ("InstructionSet A extends {", "identifier"),
        ("Core C provides {", "identifier"),
        ("InstructionSet A { bogus_section { } }", "architectural_state"),
        ("InstructionSet A { instructions { x { encoding: } } }",
         "encoding component"),
        ("import 42", "string"),
    ])
    def test_diagnostics(self, source, fragment):
        with pytest.raises(CoreDSLError, match=fragment):
            parse_description(source)

    def test_location_reported(self):
        with pytest.raises(CoreDSLError) as info:
            parse_description("InstructionSet A {\n  junk!\n}")
        assert info.value.loc is not None
        assert info.value.loc.line == 2


class TestTypeErrors:
    def test_width_zero(self):
        with pytest.raises(CoreDSLError, match="width"):
            elaborate(isax("unsigned<0> v = 0;"))

    def test_parameterized_width_unknown(self):
        with pytest.raises(CoreDSLError, match="constant"):
            elaborate(isax("unsigned<W> v = 0;"))

    def test_shift_width_explosion(self):
        with pytest.raises(CoreDSLError, match="explicit cast"):
            elaborate(isax(
                "unsigned<32> a = X[rs1]; unsigned<32> b = X[rs2];"
                "unsigned<64> c = a << b;",
                encoding="15'd0 :: rs2[4:0] :: rs1[4:0] :: 7'b0001011",
            ))


class TestLoweringErrors:
    def test_spawn_in_branch_rejected(self):
        from repro.lowering import lower_isa

        isa = elaborate(isax(
            "unsigned<32> v = X[rs1];"
            "if (v != 0) { spawn { X[rd] = v; } }",
            encoding="15'd0 :: rs1[4:0] :: rd[4:0] :: 7'b0001011",
        ))
        with pytest.raises(CoreDSLError, match="conditional"):
            lower_isa(isa)

    def test_two_mem_reads_rejected(self):
        from repro.lowering import convert_to_lil, lower_isa

        isa = elaborate(isax(
            "unsigned<32> a = X[rs1]; unsigned<32> b = X[rs2];"
            "X[rd] = (unsigned<32>) (MEM[a+3:a] + MEM[b+3:b]);",
            encoding="10'd0 :: rs2[4:0] :: rs1[4:0] :: rd[4:0] :: 7'b0001011",
        ))
        lowered = lower_isa(isa)
        with pytest.raises(CoreDSLError, match="RdMem"):
            convert_to_lil(isa, lowered.instructions["t"])

    def test_unsupported_memory_width(self):
        from repro.lowering import convert_to_lil, lower_isa

        isa = elaborate(isax(
            "unsigned<32> a = X[rs1];"
            "unsigned<24> v = MEM[a+2:a];"
            "X[rd] = (unsigned<32>) v;",
            encoding="15'd0 :: rs1[4:0] :: rd[4:0] :: 7'b0001011",
        ))
        lowered = lower_isa(isa)
        with pytest.raises(CoreDSLError, match="24 bits"):
            convert_to_lil(isa, lowered.instructions["t"])


class TestDatasheetErrors:
    def test_unknown_interface(self):
        datasheet = VirtualDatasheet("X", 5, {"RdRS1": InterfaceTiming(2, 4)})
        with pytest.raises(KeyError, match="sub-interface"):
            datasheet.timing("RdQuantum")

    def test_compile_against_incomplete_datasheet(self):
        datasheet = VirtualDatasheet(
            "Partial", 5,
            {"RdRS1": InterfaceTiming(2, 4), "RdRS2": InterfaceTiming(2, 4)},
            base_freq_mhz=500.0, base_area_um2=1000.0,
        )
        source = isax("X[rd] = X[rs1];",
                      encoding="15'd0 :: rs1[4:0] :: rd[4:0] :: 7'b0001011")
        with pytest.raises(KeyError, match="WrRD"):
            compile_isax(source, datasheet)


class TestYamlErrors:
    def test_unterminated_flow(self):
        with pytest.raises(ValueError):
            yaml_lite.loads("x: {a: 1")

    def test_unterminated_list(self):
        with pytest.raises(ValueError):
            yaml_lite.loads("x: [1, 2")

    def test_empty_document(self):
        assert yaml_lite.loads("") is None
        assert yaml_lite.loads("# only a comment\n") is None
