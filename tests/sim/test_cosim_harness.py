"""The full verification matrix: every Table 3 ISAX co-simulated (RTL vs
golden model) on every host core — the library-level equivalent of the
paper's Section 5.3 functional verification."""

import pytest

from repro import compile_isax
from repro.isaxes import ALL_ISAXES, AUTOINC, IJMP, ZOL
from repro.scaiev import CORES
from repro.sim import ArchState
from repro.sim.cosim import cosim_always, cosim_instruction, verify_artifact


@pytest.mark.parametrize("core", CORES)
@pytest.mark.parametrize("name", sorted(ALL_ISAXES))
def test_cosim_matrix(core, name):
    artifact = compile_isax(ALL_ISAXES[name], core)
    report = verify_artifact(artifact, trials=3, seed=42)
    assert report.passed, "\n".join(
        f"{f.functionality}: "
        + "; ".join(f"{m.kind}: {m.detail}" for m in f.mismatches)
        for f in report.failures
    )


class TestTargetedCosim:
    def test_autoinc_load_effects(self):
        """lw_ai: the RTL must read MEM[ADDR], write it to rd, and write
        back ADDR+4 — all three effects compared against the golden model."""
        artifact = compile_isax(AUTOINC, "VexRiscv")
        state = ArchState(artifact.isa)
        state.write_custom("ADDR", 0x200)
        state.write_mem(0x200, 0xCAFEBABE, 4)
        result = cosim_instruction(artifact, "lw_ai", state, {"rd": 7})
        assert result.matches, result.mismatches
        gpr = next(e for e in result.golden_effects if e.kind == "gpr")
        assert gpr.value == 0xCAFEBABE
        custom = next(e for e in result.golden_effects if e.kind == "custom")
        assert custom.value == 0x204

    def test_autoinc_store_effects(self):
        artifact = compile_isax(AUTOINC, "VexRiscv")
        state = ArchState(artifact.isa)
        state.write_custom("ADDR", 0x80)
        state.write_x(9, 0x12345678)
        result = cosim_instruction(artifact, "sw_ai", state, {"rs2": 9})
        assert result.matches, result.mismatches

    def test_ijmp_pc_redirect(self):
        artifact = compile_isax(IJMP, "VexRiscv")
        state = ArchState(artifact.isa)
        state.write_x(5, 0x400)
        state.write_mem(0x400, 0xBEEF0, 4)
        result = cosim_instruction(artifact, "ijmp", state, {"rs1": 5})
        assert result.matches, result.mismatches
        pc = next(e for e in result.golden_effects if e.kind == "pc")
        assert pc.value == 0xBEEF0

    def test_zol_always_redirect_and_idle(self):
        artifact = compile_isax(ZOL, "VexRiscv")
        state = ArchState(artifact.isa)
        state.write_custom("START_PC", 0x100)
        state.write_custom("END_PC", 0x140)
        state.write_custom("COUNT", 3)
        state.pc = 0x140
        firing = cosim_always(artifact, "zol", state)
        assert firing.matches, firing.mismatches
        assert any(e.kind == "pc" for e in firing.golden_effects)

        state.pc = 0x120  # not at the loop end: no write, valids low
        idle = cosim_always(artifact, "zol", state)
        assert idle.matches, idle.mismatches
        assert not idle.golden_effects

    def test_mismatch_detection(self):
        """The harness actually detects divergence: corrupt the RTL by
        flipping a constant and expect a reported mismatch."""
        artifact = compile_isax(ALL_ISAXES["sbox"], "VexRiscv")
        module = artifact.artifact("sbox").module
        rom = next(op for op in module.body.operations
                   if op.name == "comb.rom")
        values = list(rom.attr("values"))
        values[0] ^= 0xFF
        rom.attributes["values"] = values
        state = ArchState(artifact.isa)
        state.write_x(3, 0)  # selects SBOX[0], which we corrupted
        result = cosim_instruction(artifact, "sbox", state,
                                   {"rs1": 3, "rd": 5})
        assert not result.matches
        assert any(m.kind == "gpr" for m in result.mismatches)
