"""Interpreter/RTL corner semantics the fuzzer's generator leans on:
signed operands to ``::``, full-width and single-bit range subscripts,
shift counts >= the operand width, and write-then-read of custom state
within one behavior.  Each case is both randomly co-simulated and pinned
with a targeted stimulus whose golden value is asserted explicitly."""

from repro import compile_isax
from repro.sim import ArchState
from repro.sim.cosim import cosim_instruction, verify_artifact

_ENCODING = ("encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: "
             "rd[4:0] :: 7'b0001011;")


def _isax(body: str) -> str:
    return f'''import "RV32I.core_desc"

InstructionSet corner extends RV32I {{
  architectural_state {{
    register unsigned<32> CREG;
  }}
  instructions {{
    cn {{
      {_ENCODING}
      behavior: {{
{body}
      }}
    }}
  }}
}}
'''


def _run(source: str, rs1: int, rs2: int = 0):
    artifact = compile_isax(source, "VexRiscv")
    report = verify_artifact(artifact, trials=10, seed=1)
    assert report.passed, "\n".join(str(f) for f in report.failures)
    state = ArchState(artifact.isa)
    state.write_x(3, rs1)
    state.write_x(4, rs2)
    result = cosim_instruction(artifact, "cn", state,
                               {"rs1": 3, "rs2": 4, "rd": 9})
    assert result.matches, result.mismatches
    gpr = next(e for e in result.golden_effects if e.kind == "gpr")
    return gpr.value


def test_signed_operands_to_concat_contribute_raw_bits():
    """``::`` takes the two's-complement bit patterns verbatim — a signed
    negative left operand must not smear sign bits over the right one."""
    value = _run(_isax("""\
        signed<8> a = (signed<8>) (X[rs1]);
        signed<8> b = (signed<8>) (X[rs2]);
        X[rd] = (unsigned<32>) (a :: b);
"""), rs1=0xFF, rs2=0x01)          # a = -1, b = +1
    assert value == 0xFF01


def test_full_width_range_subscript_is_identity():
    value = _run(_isax("""\
        unsigned<32> va = X[rs1];
        X[rd] = (unsigned<32>) (va[31:0]);
"""), rs1=0xDEADBEEF)
    assert value == 0xDEADBEEF


def test_single_bit_range_and_bit_subscript():
    value = _run(_isax("""\
        unsigned<32> va = X[rs1];
        X[rd] = (unsigned<32>) ((va[17:17] :: va[0:0]) + va[31]);
"""), rs1=(1 << 17) | 1)           # bits 17 and 0 set, bit 31 clear
    assert value == 0b11


def test_constant_shift_count_at_least_operand_width():
    """Shifting an N-bit value by >= N zeroes it (logical shift on the
    unsigned operand), matching across interpreter and RTL."""
    value = _run(_isax("""\
        unsigned<8> v = (unsigned<8>) (X[rs1]);
        X[rd] = (unsigned<32>) ((v >> 9) :: (v >> 8));
"""), rs1=0xAB)
    assert value == 0


def test_dynamic_shift_count_at_least_operand_width():
    value = _run(_isax("""\
        unsigned<4> v = (unsigned<4>) (X[rs1]);
        unsigned<3> s = (unsigned<3>) (X[rs2]);
        X[rd] = (unsigned<32>) (v >> s);
"""), rs1=0xF, rs2=6)              # shift 6 >= width 4
    assert value == 0


def test_write_then_read_custom_state_forwards_pending_value():
    """A read after a write in the same behavior must observe the pending
    (shadowed) value, not the stale register contents — in both models."""
    value = _run(_isax("""\
        unsigned<32> va = X[rs1];
        CREG = (unsigned<32>) (va + 5);
        unsigned<32> back = CREG;
        X[rd] = (unsigned<32>) (back);
"""), rs1=100)
    assert value == 105


def test_write_then_read_reports_single_write_effect():
    """The forwarded read must not materialize a second register-file
    port: exactly one custom-state write effect, with the final value."""
    source = _isax("""\
        CREG = (unsigned<32>) (X[rs1] ^ 3);
        unsigned<32> echo = CREG;
        X[rd] = (unsigned<32>) (echo + 1);
""")
    artifact = compile_isax(source, "VexRiscv")
    state = ArchState(artifact.isa)
    state.write_x(3, 12)
    result = cosim_instruction(artifact, "cn", state,
                               {"rs1": 3, "rs2": 4, "rd": 9})
    assert result.matches, result.mismatches
    custom = [e for e in result.golden_effects if e.kind == "custom"]
    assert len(custom) == 1
    assert custom[0].value == 15
