"""Reporting satellites of the cosim harness: the RNG seed is recorded
on the report (reproducibility), and failing trials can dump VCD traces
for waveform debugging."""

import os

from repro import compile_isax
from repro.dialects import comb
from repro.sim.cosim import verify_artifact

XOR_ISAX = '''import "RV32I.core_desc"

InstructionSet rep extends RV32I {
  instructions {
    repx {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) (X[rs1] ^ X[rs2]);
      }
    }
  }
}
'''


def test_seed_is_recorded_on_report():
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    report = verify_artifact(artifact, trials=2, seed=77)
    assert report.passed
    assert report.seed == 77
    assert "seed=77" in str(report)


def test_same_seed_reproduces_same_verdict(monkeypatch):
    """With a fault injected, two runs at the same seed must agree on the
    failing trial set — the whole point of carrying the seed around."""
    monkeypatch.setitem(comb._BINARY_EVAL, "comb.xor",
                        lambda a, b, w: (a ^ b) ^ 1)
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    # The fault is planted in the interpreting engine's eval table.
    first = verify_artifact(artifact, trials=3, seed=5, sim_engine="interp")
    second = verify_artifact(artifact, trials=3, seed=5, sim_engine="interp")
    assert not first.passed and not second.passed
    assert len(first.failures) == len(second.failures)


def test_failing_trial_dumps_vcd(tmp_path, monkeypatch):
    monkeypatch.setitem(comb._BINARY_EVAL, "comb.xor",
                        lambda a, b, w: (a ^ b) ^ 1)
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    vcd_dir = str(tmp_path / "waves")
    report = verify_artifact(artifact, trials=3, seed=0, vcd_dir=vcd_dir,
                             sim_engine="interp")
    assert not report.passed
    assert report.vcd_paths
    for path in report.vcd_paths:
        assert os.path.isfile(path)
        with open(path) as handle:
            head = handle.read(4096)
        assert "$timescale" in head
        assert "$enddefinitions" in head


def test_passing_run_dumps_no_vcd(tmp_path):
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    vcd_dir = str(tmp_path / "waves")
    report = verify_artifact(artifact, trials=2, seed=0, vcd_dir=vcd_dir)
    assert report.passed
    assert report.vcd_paths == []
    assert not os.path.isdir(vcd_dir) or not os.listdir(vcd_dir)
