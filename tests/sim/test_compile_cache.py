"""Compile-memoization regression tests.

``verify_artifact`` used to rebuild (codegen + ``exec``) the step function
of the same module up to 4x per trial through ``_steady_outputs``; the
per-module cache in :mod:`repro.sim.compile` must bring that down to one
codegen per module per engine, across an arbitrary number of trials and
simulator constructions.
"""

from repro import compile_isax
from repro.isaxes import AUTOINC
from repro.sim import (
    RTLSimulator,
    clear_compile_cache,
    compile_cache_stats,
    verify_artifact,
)

XOR_ISAX = '''import "RV32I.core_desc"

InstructionSet cachex extends RV32I {
  instructions {
    cachex {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) (X[rs1] ^ X[rs2]);
      }
    }
  }
}
'''


def test_verify_artifact_compiles_each_module_once():
    """The memoization bugfix: a full randomized verification run —
    many trials, each constructing simulators repeatedly inside the
    read-feedback fixpoint — performs exactly one scalar codegen and one
    schedule per module, not one per trial."""
    artifact = compile_isax(AUTOINC, "VexRiscv")
    clear_compile_cache()
    report = verify_artifact(artifact, trials=8, seed=3)
    assert report.passed
    stats = compile_cache_stats()
    modules = len(artifact.functionalities)
    assert modules >= 2  # lw_ai + sw_ai: the cache is actually exercised
    assert stats["scalar"] == modules
    assert stats["schedules"] == modules


def test_batched_verify_compiles_each_module_once():
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    clear_compile_cache()
    report = verify_artifact(artifact, trials=6, seed=3,
                             sim_engine="batched")
    assert report.passed
    assert report.batched_trials == 6
    assert report.scalar_fallbacks == 0
    stats = compile_cache_stats()
    assert stats["batched"] == len(artifact.functionalities) == 1
    assert stats["scalar"] == 0


def test_repeated_simulator_constructions_hit_the_cache():
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    module = artifact.artifact("cachex").module
    clear_compile_cache()
    sims = [RTLSimulator(module) for _ in range(5)]
    assert all(sim.engine == "compiled" for sim in sims)
    stats = compile_cache_stats()
    assert stats["scalar"] == 1
    assert stats["schedules"] == 1


def test_netlist_edit_invalidates_the_cache():
    """The cache is keyed by a structural digest: an in-place netlist
    edit (as the fuzz reducer and opt passes perform) must recompile
    rather than serve the stale step function."""
    artifact = compile_isax(XOR_ISAX, "VexRiscv")
    module = artifact.artifact("cachex").module
    clear_compile_cache()
    vector = {p.name: v for p, v in zip(module.inputs, (5, 3))}
    sim = RTLSimulator(module)
    before = sim.step(vector)
    constant = next(op for op in module.body.operations
                    if op.name == "comb.constant")
    constant.attributes["value"] ^= 1
    resim = RTLSimulator(module)
    assert compile_cache_stats()["scalar"] == 2
    after = resim.step(vector)
    assert before != after
