"""Tests for the CoreDSL golden interpreter and architectural state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import elaborate
from repro.isaxes import ALL_ISAXES, ZOL
from repro.sim import ArchState, CoreDSLInterpreter


def make(source, top=None):
    isa = elaborate(source, top=top)
    return isa, CoreDSLInterpreter(isa), ArchState(isa)


class TestArchState:
    def test_x0_is_hardwired_zero(self):
        isa, _interp, state = make(ALL_ISAXES["dotprod"])
        state.write_x(0, 123)
        assert state.read_x(0) == 0

    def test_memory_little_endian(self):
        isa, _interp, state = make(ALL_ISAXES["dotprod"])
        state.write_mem(0x100, 0xDEADBEEF, 4)
        assert state.read_mem_byte(0x100) == 0xEF
        assert state.read_mem_byte(0x103) == 0xDE
        assert state.read_mem(0x100, 4) == 0xDEADBEEF

    def test_custom_registers_initialized(self):
        isa, _interp, state = make(ZOL)
        assert state.read_custom("COUNT") == 0
        state.write_custom("COUNT", 42)
        assert state.read_custom("COUNT") == 42

    def test_custom_register_width_truncation(self):
        isa, _interp, state = make(ZOL)
        state.write_custom("COUNT", 1 << 40)
        assert state.read_custom("COUNT") == 0

    def test_rom_values_visible(self):
        isa, interp, state = make(ALL_ISAXES["sbox"])
        info = isa.state["SBOX"]
        assert info.init_values[0] == 0x63

    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 2 ** 32 - 1))
    def test_memory_roundtrip(self, address, value):
        isa, _interp, state = make(ALL_ISAXES["dotprod"])
        state.write_mem(address, value, 4)
        assert state.read_mem(address, 4) == value


class TestInstructionExecution:
    def test_zol_setup(self):
        isa, interp, state = make(ZOL)
        enc = isa.instructions["setup_zol"].encoding
        state.pc = 0x80
        word = enc.encode({"uimmS": 6, "uimmL": 9})
        effects = interp.execute_instruction(state, "setup_zol", word)
        assert state.read_custom("START_PC") == 0x84
        assert state.read_custom("END_PC") == 0x80 + 12
        assert state.read_custom("COUNT") == 9
        assert len(effects) == 3

    def test_zol_always_redirects(self):
        isa, interp, state = make(ZOL)
        state.write_custom("START_PC", 0x84)
        state.write_custom("END_PC", 0x8C)
        state.write_custom("COUNT", 2)
        state.pc = 0x8C
        interp.execute_always(state, "zol")
        assert state.pc == 0x84
        assert state.read_custom("COUNT") == 1

    def test_zol_always_no_redirect_when_done(self):
        isa, interp, state = make(ZOL)
        state.write_custom("END_PC", 0x8C)
        state.write_custom("COUNT", 0)
        state.pc = 0x8C
        interp.execute_always(state, "zol")
        assert state.pc == 0x8C

    def test_autoinc_load(self):
        isa, interp, state = make(ALL_ISAXES["autoinc"])
        state.write_mem(0x200, 0xCAFEBABE, 4)
        state.write_custom("ADDR", 0x200)
        enc = isa.instructions["lw_ai"].encoding
        interp.execute_instruction(state, "lw_ai", enc.encode({"rd": 7}))
        assert state.read_x(7) == 0xCAFEBABE
        assert state.read_custom("ADDR") == 0x204

    def test_autoinc_store(self):
        isa, interp, state = make(ALL_ISAXES["autoinc"])
        state.write_custom("ADDR", 0x300)
        state.write_x(9, 0x12345678)
        enc = isa.instructions["sw_ai"].encoding
        interp.execute_instruction(state, "sw_ai", enc.encode({"rs2": 9}))
        assert state.read_mem(0x300, 4) == 0x12345678
        assert state.read_custom("ADDR") == 0x304

    def test_ijmp_reads_pc_from_memory(self):
        isa, interp, state = make(ALL_ISAXES["ijmp"])
        state.write_x(5, 0x400)
        state.write_mem(0x400, 0x1234, 4)
        enc = isa.instructions["ijmp"].encoding
        interp.execute_instruction(state, "ijmp", enc.encode({"rs1": 5}))
        assert state.pc == 0x1234

    def test_sbox_lookup(self):
        isa, interp, state = make(ALL_ISAXES["sbox"])
        state.write_x(3, 0x00)  # SBOX[0] = 0x63
        enc = isa.instructions["sbox"].encoding
        interp.execute_instruction(state, "sbox",
                                   enc.encode({"rs1": 3, "rd": 6}))
        assert state.read_x(6) == 0x63

    def test_spawn_effects_marked(self):
        isa, interp, state = make(ALL_ISAXES["sqrt_decoupled"])
        state.write_x(3, 16)
        enc = isa.instructions["fsqrt"].encoding
        effects = interp.execute_instruction(
            state, "fsqrt", enc.encode({"rs1": 3, "rd": 4})
        )
        gpr_writes = [e for e in effects if e.kind == "gpr"]
        assert gpr_writes and all(e.spawned for e in gpr_writes)

    def test_match_instruction(self):
        isa, interp, _state = make(ALL_ISAXES["dotprod"])
        enc = isa.instructions["dotp"].encoding
        assert interp.match_instruction(enc.encode({})) == "dotp"
        assert interp.match_instruction(0xFFFFFFFF) is None

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 2 ** 32 - 1))
    def test_sqrt_interpreter_matches_isqrt(self, value):
        import math

        isa, interp, state = make(ALL_ISAXES["sqrt_tightly"])
        state.write_x(3, value)
        enc = isa.instructions["fsqrt"].encoding
        interp.execute_instruction(state, "fsqrt",
                                   enc.encode({"rs1": 3, "rd": 4}))
        assert state.read_x(4) == math.isqrt(value << 32)


class TestSharedState:
    def test_add_custom_state_merges(self):
        isa_a = elaborate(ALL_ISAXES["autoinc"])
        isa_z = elaborate(ZOL)
        state = ArchState(isa_a)
        state.add_custom_state(isa_z)
        assert set(state.custom) == {"ADDR", "START_PC", "END_PC", "COUNT"}
