"""Tests for the VCD waveform tracer."""

import re

import pytest

from repro import compile_isax
from repro.dialects.hw import HWModule
from repro.ir.core import Operation
from repro.isaxes import DOTPROD
from repro.sim.vcd import VCDTracer, _identifier, trace_instruction


def changes_by_timestamp(text):
    """Map VCD timestamp -> list of value-change records."""
    sections = {}
    current = None
    for line in text.splitlines():
        if line.startswith("#"):
            current = int(line[1:])
            sections.setdefault(current, [])
        elif current is not None and not line.startswith("$"):
            sections[current].append(line)
    return sections


class TestIdentifiers:
    def test_unique_and_printable(self):
        ids = [_identifier(i) for i in range(500)]
        assert len(set(ids)) == 500
        for identifier in ids:
            assert all(33 <= ord(c) <= 126 for c in identifier)

    def test_short_for_small_indices(self):
        assert len(_identifier(0)) == 1
        assert len(_identifier(93)) == 1


@pytest.fixture(scope="module")
def dotprod_artifact():
    return compile_isax(DOTPROD, "VexRiscv")


def drive(module, a, b, word):
    inputs = {}
    for port in module.inputs:
        if port.name.startswith("rs1_data"):
            inputs[port.name] = a
        elif port.name.startswith("rs2_data"):
            inputs[port.name] = b
        elif port.name.startswith("instr_word"):
            inputs[port.name] = word
    return inputs


class TestTracing:
    def test_header_declares_all_ports_and_registers(self, dotprod_artifact):
        functionality = dotprod_artifact.artifact("dotp")
        tracer = VCDTracer(functionality.module)
        tracer.step({})
        text = tracer.dumps()
        assert "$timescale 1ns $end" in text
        assert "$scope module dotp $end" in text
        for port in functionality.module.ports:
            assert f" {port.name} $end" in text
        for reg in functionality.module.registers():
            assert f" {reg.attr('name')} $end" in text

    def test_value_changes_recorded(self, dotprod_artifact):
        functionality = dotprod_artifact.artifact("dotp")
        module = functionality.module
        enc = dotprod_artifact.isa.instructions["dotp"].encoding
        word = enc.encode({"rs1": 3, "rs2": 4, "rd": 5})
        tracer = VCDTracer(module)
        for _ in range(functionality.schedule.makespan + 2):
            tracer.step(drive(module, 0x01010101, 0x02020202, word))
        text = tracer.dumps()
        # Timestamps for every cycle plus the closing marker.
        stamps = re.findall(r"^#\d+$", text, re.MULTILINE)
        assert len(stamps) == functionality.schedule.makespan + 3
        # The result (8 = 4 lanes of 1*2) appears as a binary change.
        assert f"b{8:032b}" in text

    def test_unchanged_signals_not_redumped(self, dotprod_artifact):
        functionality = dotprod_artifact.artifact("dotp")
        module = functionality.module
        tracer = VCDTracer(module)
        tracer.step({})
        first = len(tracer._changes)
        tracer.step({})  # identical inputs: steady state, few/no changes
        second = len(tracer._changes) - first
        assert second < first

    def test_register_change_lags_data_input_by_one_timestamp(self):
        """Regression: registers used to be recorded *after* the clock
        edge, so a register trace at time t showed next-cycle values while
        port traces showed cycle-t values.  All signals at one timestamp
        must be coherent: the register change appears one timestamp after
        the data input that caused it."""
        module = HWModule("skew")
        data = module.add_input("d", 8)
        reg = Operation("seq.compreg", [data], [(8, None)], {"name": "r"})
        module.body.append(reg)
        module.add_output("q", reg.result)

        tracer = VCDTracer(module)
        tracer.step({"d": 5})
        tracer.step({"d": 5})
        text = tracer.dumps()
        reg_id = re.search(r"\$var wire 8 (\S+) r \$end", text).group(1)
        out_id = re.search(r"\$var wire 8 (\S+) q \$end", text).group(1)
        sections = changes_by_timestamp(text)
        # Cycle 0: d=5 is applied, but the register still reads 0 — and so
        # does the output port it drives (coherent timestamp).
        assert f"b{0:08b} {reg_id}" in sections[0]
        assert f"b{0:08b} {out_id}" in sections[0]
        assert f"b{5:08b} {reg_id}" not in sections[0]
        # Cycle 1: the clocked value becomes visible, on both signals.
        assert f"b{5:08b} {reg_id}" in sections[1]
        assert f"b{5:08b} {out_id}" in sections[1]

    def test_tracer_records_same_waves_on_both_engines(self,
                                                       dotprod_artifact):
        functionality = dotprod_artifact.artifact("dotp")
        module = functionality.module
        enc = dotprod_artifact.isa.instructions["dotp"].encoding
        word = enc.encode({"rs1": 3, "rs2": 4, "rd": 5})
        dumps = {}
        for engine in ("interp", "compiled"):
            tracer = VCDTracer(module, engine=engine)
            assert tracer.sim.engine == engine
            for _ in range(functionality.schedule.makespan + 2):
                tracer.step(drive(module, 0x01010101, 0x02020202, word))
            dumps[engine] = tracer.dumps()
        assert dumps["interp"] == dumps["compiled"]

    def test_save(self, dotprod_artifact, tmp_path):
        path = tmp_path / "dotp.vcd"
        tracer = trace_instruction(
            dotprod_artifact, "dotp",
            drive(dotprod_artifact.artifact("dotp").module, 1, 2, 0),
        )
        tracer.save(str(path))
        content = path.read_text()
        assert content.startswith("$date")
        assert "$enddefinitions $end" in content
