"""Batched-engine parity: the numpy lane-parallel engine against the
scalar engines on hand-built netlists.

The batched engine compiles each module to vectorized numpy code with
three lane dtypes (``bool``/``uint64``/object ints) and a value-range
analysis that keeps wide (>64-bit) values on native uint64 lanes whenever
their bound proves they fit.  These tests pin the hazards of that design
deterministically — width-boundary arithmetic, division by zero, shifts
at and past the operand width, ROM out-of-range indices, per-operand
icmp sign extension — and fuzz it with hypothesis-generated random
netlists, always comparing all three engines bit for bit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import compile_isax
from repro.dialects.comb import BINARY_OPS, ICMP_PREDICATES
from repro.dialects.hw import HWModule
from repro.ir.core import Operation
from repro.isaxes import ALL_ISAXES
from repro.sim import BatchedSimulator, RTLSimulator, crosscheck_engines
from repro.utils.bits import mask, to_signed

THREE_ENGINES = ("interp", "compiled", "batched")

#: Widths straddling every lane decision: sub-byte, the uint64 boundary,
#: and genuinely wide values that need object lanes.
BOUNDARY_WIDTHS = (1, 7, 8, 31, 32, 33, 63, 64, 65, 96)


def binop_module(kind, width, predicate=None):
    """inputs a,b -> output r = a <kind> b (both at ``width``)."""
    module = HWModule(f"{kind.replace('.', '_')}_{width}")
    a = module.add_input("a", width)
    b = module.add_input("b", width)
    result_width = 1 if kind == "comb.icmp" else width
    attrs = {"predicate": predicate} if predicate else {}
    op = Operation(kind, [a, b], [(result_width, None)], attrs)
    module.body.append(op)
    module.add_output("r", op.result)
    return module


def engines_agree(module, vectors):
    """Run ``vectors`` through all three engines — the batched one with
    one lane per vector, so distinct corner values actually share a numpy
    evaluation — and return the (identical) output trace."""
    vectors = list(vectors)
    interp = RTLSimulator(module, engine="interp").run(vectors)
    compiled = RTLSimulator(module, engine="compiled").run(vectors)
    lanes = BatchedSimulator(module).run_batch([[v] for v in vectors])
    batched = [trace[0] for trace in lanes]
    assert interp == compiled, f"interp != compiled on {module.name}"
    assert interp == batched, f"interp != batched on {module.name}"
    return interp


def corner_values(width):
    m = mask(width)
    sign = 1 << (width - 1)
    return sorted({v & m
                   for v in (0, 1, 2, m, m - 1, sign, sign - 1, m >> 1)})


# ---------------------------------------------------------------------------
# Deterministic corners
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
@pytest.mark.parametrize("kind", ["comb.divu", "comb.divs",
                                  "comb.modu", "comb.mods"])
def test_division_by_zero(kind, width):
    """RISC-V semantics: x/0 = all-ones, x%0 = x — on every lane dtype."""
    module = binop_module(kind, width)
    values = corner_values(width)
    trace = engines_agree(
        module, [{"a": a, "b": 0} for a in values])
    if kind == "comb.divu":
        assert all(out["r"] == mask(width) for out in trace)
    elif kind == "comb.modu":
        assert [out["r"] for out in trace] == values


@pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
@pytest.mark.parametrize("kind", ["comb.shl", "comb.shru", "comb.shrs"])
def test_shifts_at_and_past_the_width(kind, width):
    """Shift counts of width-1, width, and the all-ones pattern: logical
    shifts flush to zero, arithmetic right shift fills with the sign."""
    module = binop_module(kind, width)
    shifts = sorted({width - 1, min(width, mask(width)), mask(width)})
    values = corner_values(width)
    trace = engines_agree(
        module, [{"a": a, "b": s} for a in values for s in shifts])
    index = 0
    for a in values:
        for s in shifts:
            out = trace[index]["r"]
            index += 1
            if s >= width:
                if kind == "comb.shrs":
                    sign = a >> (width - 1)
                    assert out == (mask(width) if sign else 0)
                else:
                    assert out == 0


@pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
@pytest.mark.parametrize(
    "kind", [k for k in BINARY_OPS
             if k not in ("comb.divu", "comb.divs", "comb.modu",
                          "comb.mods", "comb.shl", "comb.shru",
                          "comb.shrs")])
def test_arithmetic_at_width_boundaries(kind, width):
    """add/sub/mul wraparound and bitwise ops on boundary patterns; at
    width 65/96 this crosses the uint64/object lane split."""
    values = corner_values(width)
    engines_agree(
        binop_module(kind, width),
        [{"a": a, "b": b} for a in values for b in values])


@pytest.mark.parametrize("width", (8, 32, 63, 64, 65, 96))
@pytest.mark.parametrize("predicate", ICMP_PREDICATES)
def test_icmp_sign_boundaries(predicate, width):
    """Every predicate at the two's-complement boundaries (the signed
    ones flip exactly at 2^(w-1)); checked against to_signed directly."""
    module = binop_module("comb.icmp", width, predicate=predicate)
    values = corner_values(width)
    vectors = [{"a": a, "b": b} for a in values for b in values]
    trace = engines_agree(module, vectors)
    import operator

    plain = {"eq": operator.eq, "ne": operator.ne}
    unsigned = {"ult": operator.lt, "ule": operator.le,
                "ugt": operator.gt, "uge": operator.ge}
    signed = {"slt": operator.lt, "sle": operator.le,
              "sgt": operator.gt, "sge": operator.ge}
    for vector, out in zip(vectors, trace):
        a, b = vector["a"], vector["b"]
        if predicate in plain:
            expect = plain[predicate](a, b)
        elif predicate in unsigned:
            expect = unsigned[predicate](a, b)
        else:
            expect = signed[predicate](to_signed(a, width),
                                       to_signed(b, width))
        assert out["r"] == int(expect), (predicate, width, a, b)


@pytest.mark.parametrize("wa,wb", [(4, 8), (8, 4), (32, 64), (64, 65),
                                   (65, 64), (96, 8)])
def test_icmp_mixed_width_operands(wa, wb):
    """Regression for the per-operand sign-bit fix: signed predicates
    must sign-extend each operand from its *own* width.  Unequal widths
    only occur pre-verification (hand-built netlists, fuzz reducers),
    but all three engines must still agree with the golden semantics."""
    module = HWModule(f"icmp_{wa}_{wb}")
    a = module.add_input("a", wa)
    b = module.add_input("b", wb)
    for predicate in ("slt", "sle", "sgt", "sge"):
        op = Operation("comb.icmp", [a, b], [(1, None)],
                       {"predicate": predicate})
        module.body.append(op)
        module.add_output(predicate, op.result)
    vectors = [{"a": x, "b": y}
               for x in corner_values(wa) for y in corner_values(wb)]
    trace = engines_agree(module, vectors)
    import operator

    compare = {"slt": operator.lt, "sle": operator.le,
               "sgt": operator.gt, "sge": operator.ge}
    for vector, out in zip(vectors, trace):
        sa = to_signed(vector["a"], wa)
        sb = to_signed(vector["b"], wb)
        for predicate, cmp in compare.items():
            assert out[predicate] == int(cmp(sa, sb)), (
                predicate, wa, wb, vector)


def test_rom_out_of_range_reads_zero():
    module = HWModule("romtest")
    idx = module.add_input("idx", 8)
    table = [0xAB, 0x01, 0xFF, 0x7E]
    rom = Operation("comb.rom", [idx], [(8, None)], {"values": table})
    module.body.append(rom)
    module.add_output("r", rom.result)
    vectors = [{"idx": i} for i in (0, 1, 2, 3, 4, 5, 100, 255)]
    trace = engines_agree(module, vectors)
    for vector, out in zip(vectors, trace):
        expect = table[vector["idx"]] if vector["idx"] < len(table) else 0
        assert out["r"] == expect


def test_wide_value_with_proven_small_bound_rides_uint64_lanes():
    """The absint facts keep a 96-bit sum on native uint64 lanes when the
    operands are provably narrow — and the values still come out right."""
    from repro.sim.compile import compile_module_batch

    def build(masked):
        label = "masked" if masked else "raw"
        module = HWModule(f"wide_bound_{label}")
        a = module.add_input("a", 96)
        if masked:
            m = Operation("comb.constant", [], [(96, None)],
                          {"value": 0xFF})
            module.body.append(m)
            narrow = Operation("comb.and", [a, m.result], [(96, None)])
            module.body.append(narrow)
            a = narrow.result
        total = Operation("comb.add", [a, a], [(96, None)])
        module.body.append(total)
        module.add_output("r", total.result)
        return module

    bounded = compile_module_batch(build(masked=True))
    unbounded = compile_module_batch(build(masked=False))
    # hi(a & 0xFF) = 255, so the sum is bounded by 510: uint64 lanes.
    assert bounded.output_kinds == ["u"]
    # Without the mask the 96-bit sum needs exact object lanes.
    assert unbounded.output_kinds == ["o"]

    stimulus = [{"a": v} for v in (0, 0xFF, (1 << 96) - 1, 0x1234567890)]
    trace = engines_agree(build(masked=True), stimulus)
    for vector, out in zip(stimulus, trace):
        assert out["r"] == 2 * (vector["a"] & 0xFF)


def test_multi_lane_traces_match_scalar_runs():
    """Distinct stimuli on every lane of one batch reproduce, bit for
    bit, the trace and final register state of one scalar run per
    stimulus — the batched engine's core contract."""
    from repro.sim.compile import random_stimulus

    artifact = compile_isax(ALL_ISAXES["sqrt_tightly"], "VexRiscv")
    module = next(iter(artifact.functionalities.values())).module
    stimuli = [random_stimulus(module, 20, seed=s) for s in range(9)]
    sim = BatchedSimulator(module)
    traces = sim.run_batch(stimuli)
    states = sim.register_states()
    for stimulus, trace, state in zip(stimuli, traces, states):
        scalar = RTLSimulator(module, engine="compiled")
        assert scalar.run(stimulus) == trace
        assert scalar.register_state() == state


# ---------------------------------------------------------------------------
# Hypothesis: random netlists
# ---------------------------------------------------------------------------

_WIDTHS = st.sampled_from(BOUNDARY_WIDTHS)
_KINDS = st.sampled_from(
    list(BINARY_OPS)
    + ["not", "icmp", "mux", "extract", "concat", "replicate", "rom",
       "const", "reg"])


@st.composite
def random_netlists(draw):
    """A random but well-typed netlist over boundary widths: mixed-width
    plumbing (extract/concat adapters), wide values, registers."""
    module = HWModule("rand")
    pool = []
    for i in range(draw(st.integers(1, 3))):
        pool.append(module.add_input(f"in{i}", draw(_WIDTHS)))

    def emit(op):
        module.body.append(op)
        pool.append(op.result)
        return op.result

    def adapt(value, width):
        if value.width == width:
            return value
        if value.width > width:
            return emit(Operation("comb.extract", [value],
                                  [(width, None)], {"low": 0}))
        pad = Operation("comb.constant", [],
                        [(width - value.width, None)], {"value": 0})
        module.body.append(pad)
        return emit(Operation("comb.concat", [pad.result, value],
                              [(width, None)]))

    for _ in range(draw(st.integers(2, 12))):
        kind = draw(_KINDS)
        a = draw(st.sampled_from(pool))
        width = a.width
        if kind in BINARY_OPS:
            b = adapt(draw(st.sampled_from(pool)), width)
            emit(Operation(kind, [a, b], [(width, None)]))
        elif kind == "not":
            emit(Operation("comb.not", [a], [(width, None)]))
        elif kind == "icmp":
            b = adapt(draw(st.sampled_from(pool)), width)
            emit(Operation("comb.icmp", [a, b], [(1, None)],
                           {"predicate": draw(
                               st.sampled_from(ICMP_PREDICATES))}))
        elif kind == "mux":
            cond = adapt(draw(st.sampled_from(pool)), 1)
            other = adapt(draw(st.sampled_from(pool)), width)
            emit(Operation("comb.mux", [cond, a, other], [(width, None)]))
        elif kind == "extract":
            low = draw(st.integers(0, width - 1))
            out_width = draw(st.integers(1, width - low))
            emit(Operation("comb.extract", [a], [(out_width, None)],
                           {"low": low}))
        elif kind == "concat":
            b = draw(st.sampled_from(pool))
            emit(Operation("comb.concat", [a, b],
                           [(width + b.width, None)]))
        elif kind == "replicate":
            times = draw(st.integers(1, 3))
            emit(Operation("comb.replicate", [a], [(width * times, None)]))
        elif kind == "rom":
            index = adapt(a, min(width, 8))
            values = draw(st.lists(st.integers(0, 255),
                                   min_size=1, max_size=8))
            emit(Operation("comb.rom", [index], [(8, None)],
                           {"values": values}))
        elif kind == "const":
            const_width = draw(_WIDTHS)
            emit(Operation("comb.constant", [], [(const_width, None)],
                           {"value": draw(
                               st.integers(0, mask(const_width)))}))
        else:  # reg
            enable = adapt(draw(st.sampled_from(pool)), 1)
            emit(Operation("seq.compreg", [a, enable], [(width, None)],
                           {"name": f"r{len(pool)}"}))
    for i, value in enumerate(pool[-4:]):
        module.add_output(f"out{i}", value)
    return module


@settings(deadline=None, max_examples=40,
          suppress_health_check=[HealthCheck.too_slow])
@given(module=random_netlists(), seed=st.integers(0, 2 ** 16))
def test_random_netlists_three_engine_parity(module, seed):
    mismatch = crosscheck_engines(module, cycles=6, seed=seed,
                                  engines=THREE_ENGINES)
    assert mismatch is None, mismatch
