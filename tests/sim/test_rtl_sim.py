"""RTL simulator tests, including co-simulation of generated ISAX modules
against the CoreDSL golden interpreter (the reproduction's equivalent of the
paper's Section 5.3 functional verification)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects.hw import HWModule
from repro.hls import compile_isax
from repro.ir.core import IRError
from repro.isaxes import DOTPROD, SBOX, SPARKLE, SQRT_TIGHTLY
from repro.sim import ArchState, CoreDSLInterpreter, RTLSimulator
from repro.utils.bits import to_signed, to_unsigned


def make_counter_module():
    """8-bit counter with enable: reg <= en ? reg + 1 : reg."""
    module = HWModule("counter")
    from repro.ir.core import Operation

    enable = module.add_input("en", 1)
    one = Operation("comb.constant", [], [(8, None)], {"value": 1})
    module.body.append(one)
    # Create register with a placeholder data operand, then wire the loop.
    reg = Operation("seq.compreg", [one.result, enable], [(8, None)],
                    {"name": "count"})
    module.body.append(reg)
    add = Operation("comb.add", [reg.result, one.result], [(8, None)])
    module.body.append(add)
    reg.set_operand(0, add.result)
    module.add_output("value", reg.result)
    return module


class TestBasics:
    def test_counter_counts(self):
        sim = RTLSimulator(make_counter_module())
        values = [sim.step({"en": 1})["value"] for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_enable_low_holds(self):
        sim = RTLSimulator(make_counter_module())
        sim.step({"en": 1})
        sim.step({"en": 1})
        held = [sim.step({"en": 0})["value"] for _ in range(3)]
        assert held == [2, 2, 2]

    def test_reset(self):
        sim = RTLSimulator(make_counter_module())
        for _ in range(3):
            sim.step({"en": 1})
        sim.reset()
        assert sim.step({"en": 1})["value"] == 0

    def test_unknown_input_rejected(self):
        sim = RTLSimulator(make_counter_module())
        with pytest.raises(IRError):
            sim.step({"bogus": 1})

    def test_inputs_masked_to_width(self):
        sim = RTLSimulator(make_counter_module())
        out = sim.step({"en": 0xFF})  # masked to 1 bit
        assert out["value"] == 0


def run_module_steady(module, inputs, cycles):
    """Drive constant inputs until the pipeline is full; return outputs."""
    sim = RTLSimulator(module)
    out = None
    for _ in range(cycles):
        out = sim.step(inputs)
    return out


def drive(module, **values):
    inputs = {}
    for port in module.inputs:
        for prefix, value in values.items():
            if port.name.startswith(prefix):
                inputs[port.name] = value
    return inputs


class TestCoSimulation:
    """Generated RTL vs the CoreDSL golden interpreter."""

    def cosim_r_type(self, artifact, instr_name, a, b=None, rd=5):
        isa = artifact.isa
        enc = isa.instructions[instr_name].encoding
        fields = {"rd": rd}
        if "rs1" in enc.fields:
            fields["rs1"] = 3
        if "rs2" in enc.fields:
            fields["rs2"] = 4
        word = enc.encode(fields)

        state = ArchState(isa)
        state.write_x(3, a)
        if b is not None:
            state.write_x(4, b)
        interp = CoreDSLInterpreter(isa)
        interp.execute_instruction(state, instr_name, word)
        golden = state.read_x(rd)

        module = artifact.artifact(instr_name).module
        inputs = drive(module, rs1_data=a, instr_word=word)
        if b is not None:
            inputs.update(drive(module, rs2_data=b))
        depth = artifact.artifact(instr_name).schedule.makespan + 2
        out = run_module_steady(module, inputs, depth)
        data_port = next(p.name for p in module.outputs
                         if p.name.startswith("wrrd_data"))
        valid_port = next(p.name for p in module.outputs
                          if p.name.startswith("wrrd_valid"))
        assert out[valid_port] == 1
        return golden, out[data_port]

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 2 ** 32 - 1))
    def test_dotprod_cosim(self, a, b):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        golden, rtl = self.cosim_r_type(artifact, "dotp", a, b)
        assert golden == rtl

    def test_dotprod_reference_value(self):
        artifact = compile_isax(DOTPROD, "VexRiscv")
        a, b = 0x01020304, 0xFF020304

        def ref(x, y):
            total = 0
            for i in range(4):
                xa = to_signed((x >> (8 * i)) & 0xFF, 8)
                xb = to_signed((y >> (8 * i)) & 0xFF, 8)
                total += xa * xb
            return to_unsigned(total, 32)

        golden, rtl = self.cosim_r_type(artifact, "dotp", a, b)
        assert golden == rtl == ref(a, b)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 2 ** 32 - 1))
    def test_sbox_cosim(self, a):
        artifact = compile_isax(SBOX, "VexRiscv")
        golden, rtl = self.cosim_r_type(artifact, "sbox", a)
        assert golden == rtl

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 2 ** 32 - 1), st.integers(0, 2 ** 32 - 1))
    def test_sparkle_cosim(self, a, b):
        artifact = compile_isax(SPARKLE, "VexRiscv")
        for instr in ("alzette_x", "alzette_y"):
            golden, rtl = self.cosim_r_type(artifact, instr, a, b)
            assert golden == rtl

    @settings(deadline=None, max_examples=8)
    @given(st.integers(0, 2 ** 32 - 1))
    def test_sqrt_cosim(self, a):
        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        golden, rtl = self.cosim_r_type(artifact, "fsqrt", a)
        assert golden == rtl

    def test_sqrt_matches_math(self):
        import math

        artifact = compile_isax(SQRT_TIGHTLY, "VexRiscv")
        for value in (0, 1, 2, 4, 100, 65536, 2 ** 31):
            golden, rtl = self.cosim_r_type(artifact, "fsqrt", value)
            assert golden == rtl
            expected = math.isqrt(value << 32)
            assert golden == expected

    def test_pipeline_with_stalls_still_correct(self):
        """Stalling the pipeline must hold values, not corrupt them."""
        artifact = compile_isax(DOTPROD, "VexRiscv")
        module = artifact.artifact("dotp").module
        isa = artifact.isa
        enc = isa.instructions["dotp"].encoding
        a, b = 0x11223344, 0x55667788
        word = enc.encode({"rs1": 3, "rs2": 4, "rd": 5})

        state = ArchState(isa)
        state.write_x(3, a)
        state.write_x(4, b)
        CoreDSLInterpreter(isa).execute_instruction(state, "dotp", word)
        golden = state.read_x(5)

        sim = RTLSimulator(module)
        inputs = drive(module, rs1_data=a, rs2_data=b, instr_word=word)
        stall_ports = [p.name for p in module.inputs
                       if p.name.startswith("stall_in")]
        out = None
        for cycle in range(30):
            vector = dict(inputs)
            # Stall everything on every other cycle.
            if cycle % 2 == 0:
                for port in stall_ports:
                    vector[port] = 1
            out = sim.step(vector)
        data_port = next(p.name for p in module.outputs
                         if p.name.startswith("wrrd_data"))
        assert out[data_port] == golden
