"""Tests for the RV32I assembler, the functional ISS, and the core timing
models with integrated ISAXes (the Section 5.5 machinery)."""

import pytest

from repro.frontend import elaborate
from repro.hls import compile_isax
from repro.isaxes import ALL_ISAXES, AUTOINC, DOTPROD, SQRT_DECOUPLED, ZOL
from repro.scaiev import core_datasheet
from repro.sim.riscv import (
    AssemblerError,
    CoreTimingModel,
    RV32ISimulator,
    assemble,
)
from repro.sim.riscv.assembler import Assembler
from repro.utils.bits import to_unsigned


def run_program(text, isaxes=None, steps=10000, data=None):
    isa_list = [elaborate(src) for src in (isaxes or [])]
    sim = RV32ISimulator(isa_list[0]) if isa_list else RV32ISimulator(
        elaborate(DOTPROD)
    )
    for isa in isa_list[1:]:
        sim.add_isax(isa)
    sim.load_words(assemble(text, isaxes=isa_list or None))
    if data:
        for addr, words in data.items():
            for i, w in enumerate(words):
                sim.state.write_mem(addr + 4 * i, w, 4)
    sim.run(steps)
    return sim


class TestAssembler:
    def test_r_type(self):
        (word,) = assemble("add x3, x1, x2")
        assert word == 0x002081B3

    def test_i_type(self):
        (word,) = assemble("addi x1, x0, 42")
        assert word == 0x02A00093

    def test_load_store(self):
        words = assemble("lw x5, 8(x2)\nsw x5, -4(x2)")
        assert len(words) == 2

    def test_branch_to_label(self):
        words = assemble("loop:\naddi x1, x1, 1\nbne x1, x2, loop")
        assert len(words) == 2

    def test_li_small_and_large(self):
        assert len(assemble("li x1, 100")) == 1
        assert len(assemble("li x1, 0x12345")) == 2

    def test_abi_names(self):
        a = assemble("add t0, a0, sp")
        b = assemble("add x5, x10, x2")
        assert a == b

    def test_pseudo_instructions(self):
        assert assemble("nop") == [0x00000013]
        assert assemble("ecall") == [0x00000073]
        assert len(assemble("mv t0, t1")) == 1
        assert len(assemble("j somewhere\nsomewhere:")) == 1

    def test_word_directive(self):
        assert assemble(".word 0xDEADBEEF") == [0xDEADBEEF]

    def test_comments_ignored(self):
        assert len(assemble("nop # comment\n// full line\nnop")) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate x1")

    def test_invalid_register(self):
        with pytest.raises(AssemblerError):
            assemble("add x32, x0, x0")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nnop\na:\nnop")

    def test_isax_positional_operands(self):
        isa = elaborate(DOTPROD)
        (word,) = assemble("dotp x5, x3, x4", isaxes=[isa])
        enc = isa.instructions["dotp"].encoding
        assert enc.decode(word) == {"rd": 5, "rs1": 3, "rs2": 4}

    def test_isax_named_fields(self):
        isa = elaborate(ZOL)
        (word,) = assemble("setup_zol uimmS=6, uimmL=9", isaxes=[isa])
        enc = isa.instructions["setup_zol"].encoding
        assert enc.decode(word) == {"uimmS": 6, "uimmL": 9}

    def test_isax_unknown_field(self):
        isa = elaborate(ZOL)
        with pytest.raises(AssemblerError):
            assemble("setup_zol bogus=1", isaxes=[isa])


class TestISS:
    def test_arithmetic_program(self):
        sim = run_program("li t0, 20\nli t1, 22\nadd t2, t0, t1\necall")
        assert sim.state.read_x(7) == 42

    def test_memory_program(self):
        sim = run_program(
            "li t0, 0x100\nli t1, 0x1234\nsw t1, 0(t0)\nlw t2, 0(t0)\necall"
        )
        assert sim.state.read_x(7) == 0x1234

    def test_byte_halfword_access(self):
        sim = run_program(
            "li t0, 0x100\nli t1, -1\nsb t1, 0(t0)\nlbu t2, 0(t0)\n"
            "lb t3, 0(t0)\necall"
        )
        assert sim.state.read_x(7) == 0xFF
        assert sim.state.read_x(28) == to_unsigned(-1, 32)

    def test_branch_loop(self):
        sim = run_program(
            "li t0, 0\nli t1, 5\nloop:\naddi t0, t0, 1\nbne t0, t1, loop\necall"
        )
        assert sim.state.read_x(5) == 5

    def test_jal_jalr(self):
        sim = run_program(
            "jal ra, target\necall\ntarget:\nli t0, 7\njalr x0, 0(ra)"
        )
        assert sim.state.read_x(5) == 7

    def test_slt_sltu(self):
        sim = run_program(
            "li t0, -1\nli t1, 1\nslt t2, t0, t1\nsltu t3, t0, t1\necall"
        )
        assert sim.state.read_x(7) == 1   # signed: -1 < 1
        assert sim.state.read_x(28) == 0  # unsigned: 0xFFFFFFFF > 1

    def test_shifts(self):
        sim = run_program(
            "li t0, -16\nsrai t1, t0, 2\nsrli t2, t0, 28\nslli t3, t0, 1\necall"
        )
        assert sim.state.read_x(6) == to_unsigned(-4, 32)
        assert sim.state.read_x(7) == 0xF
        assert sim.state.read_x(28) == to_unsigned(-32, 32)

    def test_isax_executes_in_iss(self):
        sim = run_program(
            "li t0, 0x01010101\nli t1, 0x02020202\ndotp t2, t0, t1\necall",
            isaxes=[DOTPROD],
        )
        assert sim.state.read_x(7) == 8  # 4 lanes of 1*2

    def test_illegal_instruction(self):
        from repro.sim.riscv.isa import SimError

        sim = RV32ISimulator(elaborate(DOTPROD))
        sim.load_words([0xFFFFFFFF])
        with pytest.raises(SimError):
            sim.step()


class TestTimingModels:
    def test_baseline_cpi_reasonable(self):
        model = CoreTimingModel(core_datasheet("VexRiscv"))
        model.load_program(assemble(
            "li t0, 0\nli t1, 100\nloop:\naddi t0, t0, 1\n"
            "bne t0, t1, loop\necall"
        ))
        report = model.run()
        assert report.instret == 203
        assert report.cycles > report.instret  # branches cost extra

    def test_fsm_core_slower(self):
        program = assemble("li t0, 1\nli t1, 2\nadd t2, t0, t1\necall")
        fast = CoreTimingModel(core_datasheet("VexRiscv"))
        fast.load_program(program)
        slow = CoreTimingModel(core_datasheet("PicoRV32"))
        slow.load_program(program)
        assert slow.run().cycles > fast.run().cycles

    def test_wrong_core_artifact_rejected(self):
        from repro.sim.riscv.isa import SimError

        artifact = compile_isax(DOTPROD, "ORCA")
        with pytest.raises(SimError):
            CoreTimingModel(core_datasheet("VexRiscv"), artifacts=[artifact])

    def test_zol_loop_is_zero_overhead(self):
        """A ZOL-driven loop spends no cycles on branching."""
        core = "VexRiscv"
        zol = compile_isax(ZOL, core)
        n = 10
        model = CoreTimingModel(core_datasheet(core), artifacts=[zol])
        model.load_program(assemble(
            f"li t0, 0\nsetup_zol uimmS=4, uimmL={n - 1}\n"
            "addi t0, t0, 1\necall",
            isaxes=[zol.isa],
        ))
        report = model.run()
        assert report.state.read_x(5) == n
        # li(2 words->1 instr) + setup + n bodies + ecall, 1 cycle each.
        assert report.cycles == 3 + n

    def test_decoupled_overlaps_independent_work(self):
        """Section 2.5: instructions may overtake a decoupled sqrt."""
        core = "VexRiscv"
        sqrt = compile_isax(SQRT_DECOUPLED, core)
        independent = "\n".join(["addi t5, t5, 1"] * 20)
        dependent_first = (
            "li t0, 100\nfsqrt t1, t0\nadd t2, t1, t1\n"
            + independent + "\necall"
        )
        independent_first = (
            "li t0, 100\nfsqrt t1, t0\n" + independent
            + "\nadd t2, t1, t1\necall"
        )
        m1 = CoreTimingModel(core_datasheet(core), artifacts=[sqrt])
        m1.load_program(assemble(dependent_first, isaxes=[sqrt.isa]))
        r1 = m1.run()
        m2 = CoreTimingModel(core_datasheet(core), artifacts=[sqrt])
        m2.load_program(assemble(independent_first, isaxes=[sqrt.isa]))
        r2 = m2.run()
        # Same work, but hiding the latency behind independent instructions
        # is faster, and both compute the same result.
        assert r2.cycles < r1.cycles
        assert r1.state.read_x(7) == r2.state.read_x(7)

    def test_hazard_handling_stalls_dependents(self):
        core = "VexRiscv"
        sqrt = compile_isax(SQRT_DECOUPLED, core)
        program = "li t0, 100\nfsqrt t1, t0\nadd t2, t1, t1\necall"
        with_hazard = CoreTimingModel(core_datasheet(core), artifacts=[sqrt])
        with_hazard.load_program(assemble(program, isaxes=[sqrt.isa]))
        r_hazard = with_hazard.run()
        without = CoreTimingModel(core_datasheet(core), artifacts=[sqrt],
                                  hazard_handling=False)
        without.load_program(assemble(program, isaxes=[sqrt.isa]))
        r_without = without.run()
        assert r_hazard.stall_cycles > 0
        assert r_without.cycles < r_hazard.cycles

    def test_tightly_coupled_stalls_core(self):
        core = "VexRiscv"
        tightly = compile_isax(ALL_ISAXES["sqrt_tightly"], core)
        program = "li t0, 100\nfsqrt t1, t0\necall"
        model = CoreTimingModel(core_datasheet(core), artifacts=[tightly])
        model.load_program(assemble(program, isaxes=[tightly.isa]))
        report = model.run()
        span = tightly.artifact("fsqrt").schedule.makespan
        # The core idles for the part of the computation beyond write-back.
        assert report.cycles >= span - core_datasheet(core).writeback_stage


class TestSection55:
    """The array-sum experiment: 18n+50 baseline vs 11n+50 (paper 5.5)."""

    ARR = 0x1000

    def baseline(self, n):
        return (
            f"li t0, {self.ARR}\nli t1, {n}\nli t2, 0\n"
            "loop:\nlw t3, 0(t0)\naddi t0, t0, 4\nadd t2, t2, t3\n"
            "addi t1, t1, -1\nbne t1, zero, loop\necall"
        )

    def with_isax(self, n):
        return (
            f"li t0, {self.ARR}\nli t2, 0\nsetup_ai t0\n"
            f"setup_zol uimmS=6, uimmL={n - 1}\n"
            "lw_ai t3\nadd t2, t2, t3\necall"
        )

    def run_pair(self, n):
        core = "VexRiscv"
        autoinc = compile_isax(AUTOINC, core)
        zol = compile_isax(ZOL, core)
        data = list(range(1, n + 1))
        base = CoreTimingModel(core_datasheet(core))
        base.load_program(assemble(self.baseline(n)))
        base.load_data(data, self.ARR)
        rb = base.run()
        ext = CoreTimingModel(core_datasheet(core), artifacts=[autoinc, zol])
        ext.load_program(assemble(self.with_isax(n),
                                  isaxes=[autoinc.isa, zol.isa]))
        ext.load_data(data, self.ARR)
        rx = ext.run()
        return rb, rx, sum(data)

    def test_results_match(self):
        rb, rx, expected = self.run_pair(16)
        assert rb.state.read_x(7) == expected
        assert rx.state.read_x(7) == expected

    def test_cycle_slopes_match_paper(self):
        rb32, rx32, _ = self.run_pair(32)
        rb64, rx64, _ = self.run_pair(64)
        base_slope = (rb64.cycles - rb32.cycles) / 32
        isax_slope = (rx64.cycles - rx32.cycles) / 32
        assert base_slope == pytest.approx(18, abs=1)
        assert isax_slope == pytest.approx(11, abs=1)

    def test_speedup_over_60_percent(self):
        rb, rx, _ = self.run_pair(128)
        assert rb.cycles / rx.cycles > 1.6
