"""Tests for the evaluation workloads (Sections 5.5 and 5.6)."""

import pytest

from repro import compile_isax
from repro.isaxes import AUTOINC, ZOL
from repro.workloads import (
    AudioMLResult,
    fit_linear,
    run_array_sum,
    run_audio_ml,
)


class TestFitLinear:
    def test_exact_line(self):
        slope, const = fit_linear([1, 2, 3, 4], [12, 22, 32, 42])
        assert slope == pytest.approx(10)
        assert const == pytest.approx(2)

    def test_two_points(self):
        slope, const = fit_linear([10, 20], [100, 200])
        assert slope == pytest.approx(10)
        assert const == pytest.approx(0)

    def test_single_sample_degrades_to_constant(self):
        slope, const = fit_linear([64], [1202])
        assert slope == 0.0
        assert const == pytest.approx(1202)

    def test_identical_ns_degrade_to_mean(self):
        slope, const = fit_linear([32, 32, 32], [100, 110, 120])
        assert slope == 0.0
        assert const == pytest.approx(110)

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            fit_linear([], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [10])


class TestArraySum:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return [compile_isax(AUTOINC, "VexRiscv"),
                compile_isax(ZOL, "VexRiscv")]

    def test_checksum_verified_internally(self, artifacts):
        result = run_array_sum(12, artifacts=artifacts)
        assert result.baseline_cycles > result.isax_cycles
        assert result.speedup > 1.3

    def test_scales_linearly(self, artifacts):
        small = run_array_sum(16, artifacts=artifacts)
        large = run_array_sum(64, artifacts=artifacts)
        # 4x the elements ~ 4x the loop cycles.
        ratio = large.isax_cycles / small.isax_cycles
        assert 3.0 < ratio < 4.5

    def test_single_element(self, artifacts):
        result = run_array_sum(1, artifacts=artifacts)
        assert result.speedup > 0.5  # tiny n: overheads dominate, still runs


class TestAudioML:
    @pytest.fixture(scope="class")
    def result(self) -> AudioMLResult:
        return run_audio_ml(frames=6, words=4)

    def test_outputs_are_bytes(self, result):
        assert len(result.outputs) == 6
        assert all(0 <= value <= 0xFF for value in result.outputs)

    def test_isax_version_faster(self, result):
        assert result.speedup > 1.5

    def test_energy_model_consistent(self, result):
        # energy ratio = (isax cycles x bigger area) / (baseline x base area)
        assert 0.0 < result.energy_ratio < 1.0
        assert result.power_savings_pct == pytest.approx(
            100 * (1 - result.energy_ratio)
        )

    def test_area_overhead_reported(self, result):
        assert 5 < result.area_overhead_pct < 60
