"""Workload portability: the Section 5.5/5.6 experiments on all 5 cores.

The paper's Table 3 portability claim, applied to the measured
workloads: the same hand-written ISAX rewrites must run — and win —
on every supported core, including the opt-in experimental CVA5.
Sizes are kept small so the full matrix stays CI-friendly.
"""

import functools

import pytest

from repro import compile_isax
from repro.isaxes import AUTOINC, ZOL
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES
from repro.workloads import run_array_sum, run_audio_ml

ALL_CORES = sorted(CORES) + sorted(EXPERIMENTAL_CORES)


@functools.lru_cache(maxsize=None)
def _audio_result(core):
    return run_audio_ml(core=core, frames=2, words=4)


@pytest.mark.parametrize("core", ALL_CORES)
class TestArraySumOnEveryCore:
    def test_isax_beats_baseline(self, core):
        artifacts = [compile_isax(AUTOINC, core), compile_isax(ZOL, core)]
        result = run_array_sum(24, core=core, artifacts=artifacts)
        assert result.baseline_cycles > result.isax_cycles
        assert result.speedup > 1.0


@pytest.mark.parametrize("core", ALL_CORES)
class TestAudioMLOnEveryCore:
    @pytest.fixture
    def result(self, core):
        return _audio_result(core)

    def test_isax_beats_baseline(self, result):
        assert result.baseline_cycles > result.isax_cycles
        assert result.speedup > 1.0

    def test_power_savings_invariant(self, result):
        # Energy ratio and power savings are two views of one number,
        # and a real speedup must translate into positive savings even
        # after paying the extension's area in the power model.
        assert 0.0 < result.energy_ratio < 1.0
        assert result.power_savings_pct == pytest.approx(
            100 * (1 - result.energy_ratio))
        assert 0.0 < result.power_savings_pct < 100.0
