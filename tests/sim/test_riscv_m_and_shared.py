"""RV32M extension tests and multi-ISAX shared-state scenarios."""

import pytest

from repro.frontend import elaborate
from repro.hls import compile_isax
from repro.scaiev import core_datasheet
from repro.scaiev.integrate import integrate
from repro.sim.riscv import CoreTimingModel, RV32ISimulator, assemble
from repro.isaxes import DOTPROD
from repro.utils.bits import to_unsigned


def run(text, **kwargs):
    sim = RV32ISimulator(elaborate(DOTPROD))
    sim.load_words(assemble(text))
    sim.run()
    return sim


class TestMExtension:
    def test_mul(self):
        sim = run("li t0, 7\nli t1, -3\nmul t2, t0, t1\necall")
        assert sim.state.read_x(7) == to_unsigned(-21, 32)

    def test_mulh_signed(self):
        sim = run("li t0, -1\nli t1, -1\nmulh t2, t0, t1\necall")
        assert sim.state.read_x(7) == 0  # (-1 * -1) >> 32

    def test_mulhu(self):
        sim = run("li t0, -1\nli t1, -1\nmulhu t2, t0, t1\necall")
        assert sim.state.read_x(7) == 0xFFFFFFFE

    def test_mulhsu(self):
        sim = run("li t0, -1\nli t1, 2\nmulhsu t2, t0, t1\necall")
        assert sim.state.read_x(7) == 0xFFFFFFFF  # (-1 * 2) >> 32

    def test_div_rem(self):
        sim = run("li t0, -7\nli t1, 2\ndiv t2, t0, t1\nrem t3, t0, t1\necall")
        assert sim.state.read_x(7) == to_unsigned(-3, 32)
        assert sim.state.read_x(28) == to_unsigned(-1, 32)

    def test_divu_remu(self):
        sim = run("li t0, 7\nli t1, 2\ndivu t2, t0, t1\nremu t3, t0, t1\necall")
        assert sim.state.read_x(7) == 3
        assert sim.state.read_x(28) == 1

    def test_division_by_zero_riscv_semantics(self):
        sim = run("li t0, 5\ndiv t1, t0, zero\nrem t2, t0, zero\n"
                  "divu t3, t0, zero\necall")
        assert sim.state.read_x(6) == 0xFFFFFFFF
        assert sim.state.read_x(7) == 5
        assert sim.state.read_x(28) == 0xFFFFFFFF

    def test_signed_overflow_division(self):
        sim = run("li t0, 0x80000000\nli t1, -1\ndiv t2, t0, t1\necall")
        # -2^31 / -1 overflows; RISC-V: result = -2^31 (wrapped).
        assert sim.state.read_x(7) == 0x80000000

    def test_mul_costs_extra_cycles(self):
        program = assemble("li t0, 3\nli t1, 4\nmul t2, t0, t1\necall")
        with_mul = CoreTimingModel(core_datasheet("VexRiscv"))
        with_mul.load_program(program)
        add_prog = assemble("li t0, 3\nli t1, 4\nadd t2, t0, t1\necall")
        with_add = CoreTimingModel(core_datasheet("VexRiscv"))
        with_add.load_program(add_prog)
        assert with_mul.run().cycles > with_add.run().cycles


SHARED_WRITER = '''
import "RV32I.core_desc"
InstructionSet shared_writer extends RV32I {
  architectural_state { register unsigned<32> SHARED; }
  instructions {
    put_shared {
      encoding: 12'd0 :: rs1[4:0] :: 3'b000 :: 5'd0 :: 7'b1011011;
      behavior: { SHARED = X[rs1]; }
    }
  }
}
'''

SHARED_READER = '''
import "RV32I.core_desc"
InstructionSet shared_reader extends RV32I {
  architectural_state { register unsigned<32> SHARED; }
  instructions {
    get_shared {
      encoding: 17'd0 :: 3'b001 :: rd[4:0] :: 7'b1011011;
      behavior: { X[rd] = SHARED; }
    }
  }
}
'''


class TestSharedStateBetweenIsaxes:
    """Paper Section 6: unlike the CX proposal, SCAIE-V supports shared
    state between ISAXes."""

    def test_integration_accepts_shared_register(self):
        core = core_datasheet("VexRiscv")
        writer = compile_isax(SHARED_WRITER, core)
        reader = compile_isax(SHARED_READER, core)
        result = integrate(core, [(writer.config, None),
                                  (reader.config, None)])
        assert list(result.register_files) == ["SHARED"]

    def test_value_flows_between_isaxes(self):
        core = core_datasheet("VexRiscv")
        writer = compile_isax(SHARED_WRITER, core)
        reader = compile_isax(SHARED_READER, core)
        model = CoreTimingModel(core, artifacts=[writer, reader])
        program = assemble(
            "li t0, 0xBEEF\nput_shared t0\nget_shared t1\necall",
            isaxes=[writer.isa, reader.isa],
        )
        model.load_program(program)
        report = model.run()
        assert report.state.read_x(6) == 0xBEEF
        assert report.state.read_custom("SHARED") == 0xBEEF

    def test_arbitration_plans_shared_write_mux(self):
        core = core_datasheet("VexRiscv")
        writer = compile_isax(SHARED_WRITER, core)
        reader = compile_isax(SHARED_READER, core)
        result = integrate(core, [(writer.config, None),
                                  (reader.config, None)])
        # Only one writer: no mux needed on WrSHARED.data.
        with pytest.raises(KeyError):
            result.arbitration.mux_for("WrSHARED.data")
