"""Compiled-vs-interpreted RTL-simulation engine equivalence.

The compiled engine (:mod:`repro.sim.compile`) must be bit-identical to
the interpreting engine on every module the toolchain can produce: all 8
benchmark ISAXes on every host core, plus randomly generated fuzz
programs.  The same comparison runs in every fuzz campaign as the
``simengine`` oracle; these tests pin it down deterministically.
"""

import pytest

from repro import compile_isax
from repro.dialects.hw import HWModule
from repro.fuzz import run_oracles
from repro.fuzz.generator import generate_program
from repro.ir.core import IRError, Operation
from repro.isaxes import ALL_ISAXES
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES
from repro.sim import RTLSimulator, compile_module, crosscheck_engines
from repro.sim.compile import random_stimulus

ALL_CORES = CORES + EXPERIMENTAL_CORES

XOR_ISAX = '''import "RV32I.core_desc"

InstructionSet rep extends RV32I {
  instructions {
    repx {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) (X[rs1] ^ X[rs2]);
      }
    }
  }
}
'''


@pytest.mark.parametrize("core", ALL_CORES)
@pytest.mark.parametrize("isax", sorted(ALL_ISAXES))
def test_engines_agree_on_benchmark_isaxes(isax, core):
    """Identical output traces and register counts on every
    (benchmark ISAX, core) module."""
    artifact = compile_isax(ALL_ISAXES[isax], core)
    for name, functionality in artifact.functionalities.items():
        mismatch = crosscheck_engines(
            functionality.module, cycles=24, seed=11,
            engines=("interp", "compiled", "batched"))
        assert mismatch is None, f"{isax}/{name}@{core}: {mismatch}"


@pytest.mark.parametrize("seed", range(25))
def test_engines_agree_on_fuzz_programs(seed):
    """Identical traces on randomly generated (well-typed) programs."""
    program = generate_program(seed)
    artifact = compile_isax(program.source, "VexRiscv")
    for name, functionality in artifact.functionalities.items():
        mismatch = crosscheck_engines(
            functionality.module, cycles=16, seed=seed,
            engines=("interp", "compiled", "batched"))
        assert mismatch is None, f"seed {seed}/{name}: {mismatch}"


def test_full_trace_and_register_state_identical():
    """run() traces compare equal element-by-element, not just per-cycle."""
    artifact = compile_isax(ALL_ISAXES["sqrt_tightly"], "VexRiscv")
    functionality = next(iter(artifact.functionalities.values()))
    module = functionality.module
    stimulus = random_stimulus(module, 64, seed=7)
    interp = RTLSimulator(module, engine="interp")
    compiled = RTLSimulator(module, engine="compiled")
    assert interp.engine == "interp" and compiled.engine == "compiled"
    assert interp.run(stimulus) == compiled.run(stimulus)
    assert interp.register_state() == compiled.register_state()
    assert interp.register_count == compiled.register_count


def test_auto_uses_compiled_with_interp_fallback(monkeypatch):
    artifact = compile_isax(ALL_ISAXES["dotprod"], "VexRiscv")
    module = artifact.artifact("dotp").module
    assert RTLSimulator(module).engine == "compiled"
    # A module with an op the compiler cannot handle falls back to interp.
    import repro.sim.rtl_sim as rtl_sim

    def broken(module, order=None):
        raise IRError("no compilation rule")

    monkeypatch.setattr(rtl_sim, "compile_module", broken)
    assert RTLSimulator(module, engine="auto").engine == "interp"
    with pytest.raises(IRError):
        RTLSimulator(module, engine="compiled")


def test_invalid_engine_rejected():
    artifact = compile_isax(ALL_ISAXES["dotprod"], "VexRiscv")
    module = artifact.artifact("dotp").module
    with pytest.raises(IRError):
        RTLSimulator(module, engine="verilator")


def test_compiled_source_is_straight_line():
    """The generated step is one straight-line function: locals, literal
    masks, a single outputs literal — no per-op dict traffic."""
    artifact = compile_isax(ALL_ISAXES["dotprod"], "VexRiscv")
    module = artifact.artifact("dotp").module
    compiled = compile_module(module)
    assert compiled.source.startswith("def _step(inputs, regs):")
    assert "_outputs = {" in compiled.source
    assert "evaluate" not in compiled.source


def test_simengine_is_a_fuzz_oracle(monkeypatch):
    """A compiled-engine miscompile must surface as a 'simengine' oracle
    failure in the standard oracle stack."""
    import repro.sim.rtl_sim as rtl_sim
    from repro.sim.compile import CompiledModule
    from repro.sim.compile import compile_module as real_compile

    def miscompiled(module, order=None):
        compiled = real_compile(module, order)
        real_step = compiled.step

        def bad_step(inputs, regs):
            outputs = real_step(inputs, regs)
            return {name: value ^ 1 for name, value in outputs.items()}

        return CompiledModule(module, compiled.source, bad_step,
                              compiled.register_ops)

    monkeypatch.setattr(rtl_sim, "compile_module", miscompiled)
    report = run_oracles(XOR_ISAX, cores=("VexRiscv",), trials=2,
                         sim_engine="interp")
    assert not report.ok
    assert "simengine" in report.kinds


def test_counter_module_semantics_match_interp():
    """Registers, enables and reset behave identically in both engines on
    a handwritten module (not just generated ones)."""
    def make_counter():
        module = HWModule("counter")
        enable = module.add_input("en", 1)
        one = Operation("comb.constant", [], [(8, None)], {"value": 1})
        module.body.append(one)
        reg = Operation("seq.compreg", [one.result, enable], [(8, None)],
                        {"name": "count"})
        module.body.append(reg)
        add = Operation("comb.add", [reg.result, one.result], [(8, None)])
        module.body.append(add)
        reg.set_operand(0, add.result)
        module.add_output("value", reg.result)
        return module

    sim = RTLSimulator(make_counter(), engine="compiled")
    assert [sim.step({"en": 1})["value"] for _ in range(5)] == [0, 1, 2, 3, 4]
    assert [sim.step({"en": 0})["value"] for _ in range(3)] == [5, 5, 5]
    sim.reset()
    assert sim.cycle == 0
    assert sim.step({"en": 1})["value"] == 0
    with pytest.raises(IRError):
        sim.step({"bogus": 1})
