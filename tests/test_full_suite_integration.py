"""The kitchen-sink scenario: all eight Table 3 ISAXes integrated into one
core simultaneously, and a single program exercising every one of them.

The benchmark ISAXes' encodings are coordinated (custom-0/custom-1 opcodes
with distinct funct3 codes) so the complete set coexists — the situation
the paper's arbitration machinery (Section 3.3) exists for.
"""

import math

import pytest

from repro import ALL_ISAXES, compile_isax
from repro.scaiev import core_datasheet
from repro.scaiev.integrate import integrate
from repro.sim.riscv import CoreTimingModel, assemble
from repro.utils.bits import to_signed, to_unsigned


@pytest.fixture(scope="module")
def suite():
    core = core_datasheet("VexRiscv")
    artifacts = [compile_isax(src, core) for src in ALL_ISAXES.values()]
    return core, artifacts


class TestFullSuiteIntegration:
    def test_no_encoding_conflicts(self, suite):
        core, artifacts = suite
        result = integrate(core, [(a.config, None) for a in artifacts])
        assert len(result.configs) == len(ALL_ISAXES)

    def test_arbitration_muxes_shared_interfaces(self, suite):
        core, artifacts = suite
        result = integrate(core, [(a.config, None) for a in artifacts])
        wrrd = result.arbitration.mux_for("WrRD")
        # dotp, sbox, alzette_x/y, fsqrt x2, lw_ai all write rd.
        assert wrrd.ways >= 6
        # Static priority is total and deterministic.
        assert len(result.arbitration.priority) == \
            len(set(result.arbitration.priority))

    def test_total_extension_cost_is_sum_of_parts(self, suite):
        from repro.eval.area import glue_area, module_area

        core, artifacts = suite
        result = integrate(core, [(a.config, None) for a in artifacts])
        total = glue_area(result.glue) + sum(
            module_area(f.module)
            for a in artifacts for f in a.functionalities.values()
        )
        assert total > 0

    def test_mega_program(self, suite):
        """One program touching all 8 ISAXes, with independently computed
        expected results."""
        core, artifacts = suite
        model = CoreTimingModel(core, artifacts=artifacts)

        data = [11, 22, 33, 44]
        program = f"""
          # --- autoinc + zol: sum a 4-element array -------------------
          li   s0, 0x1000
          li   s1, 0
          setup_ai s0
          setup_zol uimmS=6, uimmL=3
          lw_ai t0
          add  s1, s1, t0

          # --- dotprod -------------------------------------------------
          li   t0, 0x01020304
          li   t1, 0x0fffff02
          dotp s2, t0, t1

          # --- sbox ----------------------------------------------------
          li   t0, 0x53
          sbox s3, t0

          # --- sparkle (alzette) ----------------------------------------
          li   t0, 0x12345678
          li   t1, 0x9abcdef0
          alzette_x s4, t0, t1
          alzette_y s5, t0, t1

          # --- sqrt, tightly and decoupled ------------------------------
          li   t0, 0x00100000
          fsqrt rd=s6, rs1=t0, 3'b110=0     # placeholder; replaced below
          ecall
        """
        # The two fsqrt variants share the mnemonic 'fsqrt'; the assembler
        # resolves to whichever ISAX registered it last, so call them via
        # explicit field syntax on separate programs instead.
        program = program.replace(
            "fsqrt rd=s6, rs1=t0, 3'b110=0     # placeholder; replaced below",
            "fsqrt s6, t0",
        )
        words = assemble(program, isaxes=[a.isa for a in artifacts])
        model.load_program(words)
        model.load_data(data, 0x1000)
        report = model.run()
        state = report.state

        # autoinc+zol sum
        assert state.read_x(9) == sum(data)
        # dotprod: lanes of (0x04,0x02)(0x03,0xff)(0x02,0xff)(0x01,0x0f)
        expected_dot = (4 * 2 + 3 * -1 + 2 * -1 + 1 * 15) & 0xFFFFFFFF
        assert state.read_x(18) == expected_dot
        # sbox: AES S-box of 0x53 is 0xED
        assert state.read_x(19) == 0xED
        # sparkle: check against an independent Alzette model
        def rotr(v, r):
            return to_unsigned((v >> r) | (v << (32 - r)), 32) if r else v

        x, y = 0x12345678, 0x9ABCDEF0
        for ra, rb in ((31, 24), (17, 17), (0, 31), (24, 16)):
            x = to_unsigned(x + rotr(y, ra), 32)
            y ^= rotr(x, rb)
            x ^= 0xB7E15162
        assert state.read_x(20) == x
        assert state.read_x(21) == y
        # sqrt: Q16.16 of 0x00100000
        assert state.read_x(22) == math.isqrt(0x00100000 << 32)
        # ZOL counter drained; autoinc pointer advanced past the array.
        assert state.read_custom("COUNT") == 0
        assert state.read_custom("ADDR") == 0x1000 + 4 * len(data)

    def test_all_cores_accept_the_full_suite(self):
        for core_name in ("ORCA", "Piccolo", "PicoRV32"):
            core = core_datasheet(core_name)
            artifacts = [compile_isax(src, core)
                         for src in ALL_ISAXES.values()]
            result = integrate(core, [(a.config, None) for a in artifacts])
            assert len(result.configs) == len(ALL_ISAXES)
