"""Delta-debugging reducer: shrinks failing programs hard while keeping
the failure alive, and rejects predicates that never held."""

import pytest

from repro.frontend import elaborate
from repro.fuzz import generate_program, reduce_program
from repro.fuzz.unparse import unparse
from repro.frontend.parser import parse_description


def _elaborates(text):
    try:
        elaborate(text)
        return True
    except Exception:
        return False


def test_reduces_to_small_reproducer():
    """A 'bug' that only needs one statement: everything else must go."""
    source = generate_program(15).source
    assert "MEM[" in source

    def predicate(text):
        return _elaborates(text) and "MEM[" in text

    reduced = reduce_program(source, predicate)
    assert predicate(reduced)
    assert len(reduced) <= len(source) // 2
    # All the incidental structure is gone.
    assert "always" not in reduced
    assert "functions" not in reduced


def test_reduction_is_monotone_and_valid():
    source = generate_program(23).source
    token = "X[rd]"

    def predicate(text):
        return _elaborates(text) and token in text

    reduced = reduce_program(source, predicate)
    assert token in reduced
    assert len(reduced) <= len(source)
    # The result is parseable and a fixed point of the printer.
    assert unparse(parse_description(reduced)) == reduced


def test_rejects_predicate_that_never_held():
    source = generate_program(1).source
    with pytest.raises(ValueError):
        reduce_program(source, lambda text: False)


def test_unwraps_conditionals_and_loops():
    source = '''import "RV32I.core_desc"

InstructionSet fuzz_s9 extends RV32I {
  instructions {
    fz9_0 {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        unsigned<32> va = X[rs1];
        if ((va[0])) {
          va = (unsigned<32>) ((va ^ 77));
        }
        for (int i0 = 0; i0 < 2; i0 += 1) {
          va = (unsigned<32>) ((va + 1));
        }
        X[rd] = (unsigned<32>) (va);
      }
    }
  }
}
'''

    def predicate(text):
        return _elaborates(text) and "^" in text

    reduced = reduce_program(source, predicate)
    assert "^" in reduced
    assert "if (" not in reduced          # guard unwrapped
    assert "for (" not in reduced         # loop unwrapped or dropped
