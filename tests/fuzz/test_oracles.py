"""The oracle stack: passes on healthy toolchains, and each oracle fires
on its own class of injected fault."""

import pytest

from repro.dialects import comb
from repro.fuzz import generate_program, run_oracles
from repro.fuzz import oracles as oracles_module
from repro.utils.diagnostics import CoreDSLError

XOR_ISAX = '''import "RV32I.core_desc"

InstructionSet fuzz_s1 extends RV32I {
  instructions {
    fz1_0 {
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {
        X[rd] = (unsigned<32>) (X[rs1] ^ X[rs2]);
      }
    }
  }
}
'''


def test_clean_program_passes_all_oracles():
    source = generate_program(3).source
    report = run_oracles(source, cores=("VexRiscv",), trials=3,
                         cosim_seed=11)
    assert report.ok, [str(f) for f in report.failures]
    assert report.functionalities >= 1
    assert report.cosim_seed == 11
    assert "PASS" in str(report)


def test_invalid_program_raises_not_reports():
    with pytest.raises(CoreDSLError):
        run_oracles("InstructionSet broken {", cores=("VexRiscv",))


def test_cosim_oracle_catches_broken_comb_op(monkeypatch):
    """A deliberately wrong RTL-side comb.xor must surface as a cosim
    failure (interpreter and netlist disagree)."""
    # The fault is planted in the *interpreting* engine's eval table, so
    # pin the cosim oracle to it (the compiled engine inlines comb.xor and
    # would not see the patch).
    monkeypatch.setitem(comb._BINARY_EVAL, "comb.xor",
                        lambda a, b, w: (a ^ b) ^ 1)
    report = run_oracles(XOR_ISAX, cores=("VexRiscv",), trials=3,
                         sim_engine="interp")
    assert not report.ok
    assert "cosim" in report.kinds


def test_schedule_oracle_catches_suboptimal_engine(monkeypatch):
    """If the fast path silently degraded to ASAP (no lifetime
    minimization), the weighted-objective cross-check must flag it."""
    real_compile = oracles_module.compile_isax

    def degraded(source, core, engine="auto", **kwargs):
        if engine == "fastpath":
            engine = "asap"
        return real_compile(source, core, engine=engine, **kwargs)

    monkeypatch.setattr(oracles_module, "compile_isax", degraded)
    source = generate_program(3).source
    report = run_oracles(source, cores=("VexRiscv",), trials=1)
    assert any(f.kind == "schedule" for f in report.failures)


def test_determinism_oracle_catches_unstable_emission(monkeypatch):
    """Any run-to-run difference in the emitted SystemVerilog must be
    reported, even when both netlists are functionally identical."""
    from repro.hls import longnail

    counter = {"n": 0}
    real_emit = longnail.emit_modules

    def unstable(modules):
        counter["n"] += 1
        return real_emit(modules) + f"\n// build {counter['n']}\n"

    monkeypatch.setattr(longnail, "emit_modules", unstable)
    report = run_oracles(XOR_ISAX, cores=("VexRiscv",), trials=1)
    assert any(f.kind == "determinism" for f in report.failures)


def test_oracles_run_on_every_requested_core():
    source = generate_program(5).source
    report = run_oracles(source, cores=("ORCA", "PicoRV32"), trials=1)
    assert report.cores == ("ORCA", "PicoRV32")
    assert report.ok, [str(f) for f in report.failures]


def test_discover_oracle_is_opt_in_and_passes():
    from repro.fuzz.oracles import ALL_ORACLES, DEFAULT_ORACLES

    assert "discover" in ALL_ORACLES
    assert "discover" not in DEFAULT_ORACLES
    report = run_oracles(XOR_ISAX, cores=("VexRiscv",), trials=2,
                         oracles=("compile", "discover"))
    assert report.ok, [str(f) for f in report.failures]


def test_discover_oracle_catches_broken_emitter(monkeypatch):
    """An emitter that drops a candidate's behaviour must be reported."""
    from repro.discover import emit as emit_module

    def hollow(kernel, candidate, **kwargs):
        raise emit_module.EmitError("injected emitter fault")

    monkeypatch.setattr(emit_module, "emit_candidate", hollow)
    report = run_oracles(XOR_ISAX, cores=("VexRiscv",), trials=1,
                         oracles=("compile", "discover"))
    assert any(f.kind == "discover" for f in report.failures)
