"""Differential fuzzing of the whole flow.

Hypothesis generates random CoreDSL instruction behaviors (expression trees
over the register operands with the full operator set, conditionals, local
variables); each generated ISAX is compiled through the complete Longnail
pipeline for a random host core, and the generated RTL is co-simulated
against the CoreDSL golden interpreter on random operand values.  Any
divergence between "what the language says" and "what the hardware does"
fails the test — this is the strongest end-to-end check in the suite.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend import elaborate
from repro.hls import compile_isax
from repro.scaiev import CORES
from repro.sim import ArchState, CoreDSLInterpreter, RTLSimulator

# ---------------------------------------------------------------------------
# Random-behavior generation: expressions are built as (text, width, signed)
# so every generated program type-checks by construction.
# ---------------------------------------------------------------------------


class _Gen:
    """Bundles a hypothesis `draw` with a fresh-name counter."""

    def __init__(self, draw):
        self.draw = draw
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"


def _literal(gen: _Gen):
    width = gen.draw(st.integers(1, 16))
    value = gen.draw(st.integers(0, (1 << width) - 1))
    return f"{width}'d{value}", width, False


def _leaf(gen: _Gen, depth: int):
    choice = gen.draw(st.integers(0, 3))
    if choice == 0:
        return "X[rs1]", 32, False
    if choice == 1:
        return "X[rs2]", 32, False
    if choice == 2:
        hi = gen.draw(st.integers(0, 31))
        lo = gen.draw(st.integers(0, hi))
        source = gen.draw(st.sampled_from(["X[rs1]", "X[rs2]"]))
        return f"{source}[{hi}:{lo}]", hi - lo + 1, False
    return _literal(gen)


def _expr(gen: _Gen, depth: int):
    if depth <= 0:
        return _leaf(gen, depth)
    kind = gen.draw(st.integers(0, 7))
    if kind == 0:
        return _leaf(gen, depth)
    if kind == 1:  # arithmetic
        op = gen.draw(st.sampled_from(["+", "-", "*"]))
        lhs, lw, ls = _expr(gen, depth - 1)
        rhs, rw, rs = _expr(gen, depth - 1)
        if op == "*" and lw + rw > 40:  # keep multipliers reasonable
            op = "+"
        from repro.frontend import types as ty

        result = {"+": ty.add_result, "-": ty.sub_result,
                  "*": ty.mul_result}[op](ty.IntType(lw, ls),
                                          ty.IntType(rw, rs))
        return f"({lhs} {op} {rhs})", result.width, result.is_signed
    if kind == 2:  # bitwise
        op = gen.draw(st.sampled_from(["&", "|", "^"]))
        lhs, lw, ls = _expr(gen, depth - 1)
        rhs, rw, rs = _expr(gen, depth - 1)
        from repro.frontend import types as ty

        result = ty.bitwise_result(ty.IntType(lw, ls), ty.IntType(rw, rs))
        return f"({lhs} {op} {rhs})", result.width, result.is_signed
    if kind == 3:  # constant shift
        lhs, lw, ls = _expr(gen, depth - 1)
        amount = gen.draw(st.integers(0, 7))
        direction = gen.draw(st.sampled_from(["<<", ">>"]))
        if direction == "<<":
            return f"({lhs} << {amount})", lw + amount, ls
        return f"({lhs} >> {amount})", lw, ls
    if kind == 4:  # explicit cast
        lhs, lw, ls = _expr(gen, depth - 1)
        width = gen.draw(st.integers(1, 33))
        signed = gen.draw(st.booleans())
        keyword = "signed" if signed else "unsigned"
        return f"(({keyword}<{width}>) {lhs})", width, signed
    if kind == 5:  # conditional
        cond, _cw, _cs = _expr(gen, depth - 1)
        lhs, lw, ls = _expr(gen, depth - 1)
        rhs, rw, rs = _expr(gen, depth - 1)
        from repro.frontend import types as ty

        result = ty.common_supertype(ty.IntType(lw, ls), ty.IntType(rw, rs))
        return (f"(({cond} != 0) ? {lhs} : {rhs})",
                result.width, result.is_signed)
    if kind == 6:  # comparison
        lhs, lw, ls = _expr(gen, depth - 1)
        rhs, rw, rs = _expr(gen, depth - 1)
        op = gen.draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        return f"({lhs} {op} {rhs})", 1, False
    # concatenation
    lhs, lw, ls = _expr(gen, depth - 1)
    rhs, rw, rs = _expr(gen, depth - 1)
    if lw + rw > 64:
        return lhs, lw, ls
    return f"({lhs} :: {rhs})", lw + rw, False


@st.composite
def random_isax(draw):
    gen = _Gen(draw)
    statements = []
    names = []
    for _ in range(draw(st.integers(1, 3))):
        text, width, signed = _expr(gen, draw(st.integers(1, 3)))
        if width > 64:
            text, width, signed = f"(unsigned<32>) ({text})", 32, False
        name = gen.fresh()
        keyword = "signed" if signed else "unsigned"
        statements.append(f"{keyword}<{width}> {name} = {text};")
        names.append((name, width, signed))
    # Combine all locals into the result.
    parts = " + ".join(f"((unsigned<32>) {n})" for n, _w, _s in names)
    statements.append(f"X[rd] = (unsigned<32>) ({parts});")
    body = "\n          ".join(statements)
    source = f"""
    import "RV32I.core_desc"
    InstructionSet fuzz extends RV32I {{
      instructions {{
        fz {{
          encoding: 7'd3 :: rs2[4:0] :: rs1[4:0] :: 3'd2 :: rd[4:0] :: 7'b0001011;
          behavior: {{
          {body}
          }}
        }}
      }}
    }}
    """
    core = draw(st.sampled_from(CORES))
    rs1 = draw(st.integers(0, 2 ** 32 - 1))
    rs2 = draw(st.integers(0, 2 ** 32 - 1))
    return source, core, rs1, rs2


def _drive(module, word, rs1, rs2):
    inputs = {}
    for port in module.inputs:
        if port.name.startswith("rs1_data"):
            inputs[port.name] = rs1
        elif port.name.startswith("rs2_data"):
            inputs[port.name] = rs2
        elif port.name.startswith("instr_word"):
            inputs[port.name] = word
    return inputs


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(random_isax())
def test_random_isax_rtl_matches_golden_model(case):
    source, core, rs1, rs2 = case
    isa = elaborate(source)
    artifact = compile_isax(isa, core)
    functionality = artifact.artifact("fz")
    module = functionality.module

    enc = isa.instructions["fz"].encoding
    word = enc.encode({"rs1": 3, "rs2": 4, "rd": 5})

    state = ArchState(isa)
    state.write_x(3, rs1)
    state.write_x(4, rs2)
    CoreDSLInterpreter(isa).execute_instruction(state, "fz", word)
    golden = state.read_x(5)

    sim = RTLSimulator(module)
    inputs = _drive(module, word, rs1, rs2)
    out = None
    for _ in range(functionality.schedule.makespan + 2):
        out = sim.step(inputs)
    data_port = next(p.name for p in module.outputs
                     if p.name.startswith("wrrd_data"))
    assert out[data_port] == golden, (
        f"RTL/golden divergence on {core}: rs1={rs1:#x} rs2={rs2:#x} "
        f"rtl={out[data_port]:#x} golden={golden:#x}\n{source}"
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(random_isax(), st.integers(0, 2 ** 32 - 1),
       st.integers(0, 2 ** 32 - 1))
def test_random_isax_schedule_and_module_invariants(case, alt_rs1, alt_rs2):
    """Structural invariants on every random ISAX: the schedule verifies,
    the module verifies, ports carry stage suffixes, and the datasheet
    windows are honored."""
    source, core, _rs1, _rs2 = case
    isa = elaborate(source)
    artifact = compile_isax(isa, core)
    functionality = artifact.artifact("fz")
    functionality.schedule.problem.verify()
    functionality.module.verify()
    datasheet = artifact.datasheet
    for entry in functionality.functionality.schedule:
        if entry.interface in ("RdRS1", "RdRS2", "RdInstr"):
            timing = datasheet.timing(entry.interface)
            assert timing.earliest <= entry.stage <= timing.latest
