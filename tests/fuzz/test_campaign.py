"""Campaign driver end-to-end: clean runs pass, an injected comb-op fault
is caught, reduced to a fraction of the original program, and
deduplicated across seeds in the corpus (ISSUE acceptance scenario)."""

import json
import os

import pytest

from repro.dialects import comb
from repro.fuzz import (
    FuzzBudget,
    FuzzConfig,
    FuzzCorpus,
    run_campaign,
)
from repro.fuzz import campaign as campaign_module
from repro.fuzz.corpus import canonical_digest
from repro.fuzz.generator import FuzzProgram


def _planted_program(seed: int) -> FuzzProgram:
    """A large program whose only interesting statement is one XOR: the
    reduction target for the broken-comb.xor fault."""
    filler = "\n        ".join(
        f"unsigned<32> f{i} = (unsigned<32>) ((va + {i}) * 3);"
        for i in range(30))
    source = f'''import "RV32I.core_desc"

InstructionSet fuzz_s{seed} extends RV32I {{
  instructions {{
    fz{seed}_0 {{
      encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
      behavior: {{
        unsigned<32> va = X[rs1];
        unsigned<32> vb = X[rs2];
        {filler}
        X[rd] = (unsigned<32>) ((va ^ vb));
      }}
    }}
  }}
}}
'''
    return FuzzProgram(seed=seed, source=source, name=f"fuzz_s{seed}",
                       features=frozenset({"planted"}))


def test_clean_campaign_passes(tmp_path):
    config = FuzzConfig(seeds=4, trials=2, cores=("VexRiscv",),
                        out_dir=str(tmp_path / "out"))
    result = run_campaign(config)
    assert result.ok
    assert result.programs == 4
    assert not result.failing_seeds
    assert os.path.exists(result.stats_path)
    stats = json.loads(open(result.stats_path).read())
    assert stats["status_counts"] == {"pass": 4}
    assert stats["corpus_size"] == 0


def test_injected_fault_caught_reduced_deduplicated(tmp_path, monkeypatch):
    """Two seeds hit the same planted bug; the campaign must report both,
    reduce each reproducer to <= 25% of the original program, and store
    exactly one corpus entry."""
    monkeypatch.setitem(comb._BINARY_EVAL, "comb.xor",
                        lambda a, b, w: (a ^ b) ^ 1)
    monkeypatch.setattr(campaign_module, "generate_program",
                        lambda seed, budget=None: _planted_program(seed))
    out = str(tmp_path / "out")
    # sim_engine="interp": the fault lives in the interpreter's eval table
    # and must actually be executed by the cosim oracle.
    config = FuzzConfig(seeds=2, seed_start=40, trials=3,
                        cores=("VexRiscv",), out_dir=out,
                        sim_engine="interp")
    result = run_campaign(config)

    assert result.failing_seeds == [40, 41]
    # The broken interpreter xor trips three oracles: cosim (interpreter
    # vs golden model), simengine (interpreter vs compiled engine) and
    # batchsim (interpreter vs the numpy batched engine).
    # Deduplication: both seeds map onto one canonical reproducer per kind.
    assert len(result.reproducers) == 6
    assert len(result.new_reproducers) == 3
    corpus = FuzzCorpus(out)
    assert len(corpus) == 3
    kinds = sorted(entry.split("-")[0] for entry in corpus.entries())
    assert kinds == ["batchsim", "cosim", "simengine"]
    name = next(entry for entry in corpus.entries()
                if entry.startswith("cosim-"))

    # Reduction quality: <= 25% of the original planted program.
    meta = json.loads(open(
        os.path.join(out, "reproducers", f"{name}.json")).read())
    assert meta["reduced_bytes"] <= meta["original_bytes"] * 0.25
    reduced = open(os.path.join(
        out, "reproducers", f"{name}.core_desc")).read()
    assert "^" in reduced                  # the bug trigger survived
    assert "f29" not in reduced            # the filler did not

    stats = json.loads(open(result.stats_path).read())
    assert stats["failing_seeds"] == [40, 41]
    assert stats["corpus_size"] == 3


def test_worker_pool_matches_inline(tmp_path):
    """workers>1 goes through the process pool; same outcomes, same
    order (the executor keeps results in input order)."""
    inline = run_campaign(FuzzConfig(
        seeds=3, trials=2, cores=("VexRiscv",), workers=1,
        out_dir=str(tmp_path / "inline")))
    pooled = run_campaign(FuzzConfig(
        seeds=3, trials=2, cores=("VexRiscv",), workers=2,
        out_dir=str(tmp_path / "pooled")))
    assert [o.status for o in inline.outcomes] == \
           [o.status for o in pooled.outcomes]
    assert [o.seed for o in pooled.outcomes] == [0, 1, 2]


def test_corpus_dedups_across_seed_stamps(tmp_path):
    corpus = FuzzCorpus(str(tmp_path / "corpus"))
    a = _planted_program(7).source
    b = _planted_program(8).source
    assert a != b                          # stamps differ...
    assert canonical_digest("cosim", a) == canonical_digest("cosim", b)
    name_a, new_a = corpus.add("cosim", a, meta={"seed": 7})
    name_b, new_b = corpus.add("cosim", b, meta={"seed": 8})
    assert new_a and not new_b
    assert name_a == name_b
    # Same program under a different oracle kind is a distinct entry.
    name_c, new_c = corpus.add("schedule", a)
    assert new_c and name_c != name_a
    assert len(corpus) == 2


def test_budget_flows_through_payload(tmp_path):
    config = FuzzConfig(seeds=2, trials=1, cores=("VexRiscv",),
                        budget=FuzzBudget.scaled(3),
                        out_dir=str(tmp_path / "out"))
    result = run_campaign(config)
    assert result.ok
    stats = json.loads(open(result.stats_path).read())
    assert stats["budget"]["statements"] == 3
