"""The printer must be a fixed point of parse->unparse — the reducer
depends on it: an edit is "whatever changed in the AST", never an artifact
of re-printing."""

import pytest

from repro.frontend.parser import parse_description
from repro.fuzz import generate_program
from repro.fuzz.unparse import unparse


@pytest.mark.parametrize("seed", range(0, 30))
def test_roundtrip_is_ast_identity(seed):
    source = generate_program(seed).source
    first = parse_description(source)
    printed = unparse(first)
    second = parse_description(printed)
    # Node equality ignores locations/inferred types (compare=False), so
    # this asserts structural identity of the whole instruction set.
    assert first.instruction_sets == second.instruction_sets
    assert first.imports == second.imports


@pytest.mark.parametrize("seed", range(0, 30))
def test_unparse_is_idempotent(seed):
    source = generate_program(seed).source
    once = unparse(parse_description(source))
    twice = unparse(parse_description(once))
    assert once == twice


def test_benchmark_isaxes_roundtrip():
    from repro.isaxes import ALL_ISAXES

    for name, source in sorted(ALL_ISAXES.items()):
        first = parse_description(source)
        second = parse_description(unparse(first))
        assert first.instruction_sets == second.instruction_sets, name
