"""The generator's core guarantee: every emitted program is well-typed by
construction (elaborates without error), reproducible from its seed, and
covers the language surface the budget enables."""

import pytest

from repro.frontend import elaborate
from repro.fuzz import FuzzBudget, generate_program


@pytest.mark.parametrize("seed", range(40))
def test_every_program_elaborates(seed):
    program = generate_program(seed)
    isa = elaborate(program.source)
    assert isa.instructions  # at least one instruction per program


def test_generation_is_deterministic():
    first = generate_program(123)
    second = generate_program(123)
    assert first.source == second.source
    assert first.features == second.features
    assert generate_program(124).source != first.source


def test_seed_is_stamped_into_names():
    program = generate_program(77)
    assert "fuzz_s77" in program.source
    assert "fz77_0" in program.source


def test_feature_coverage_over_many_seeds():
    """A modest seed range must exercise the whole feature surface the
    oracle stack is supposed to stress (ISSUE tentpole list)."""
    seen = set()
    for seed in range(150):
        seen |= generate_program(seed).features
    required = {
        "concat", "signed_concat", "cond_expr", "dyn_shift",
        "bit_subscript", "range_subscript", "function", "for_loop",
        "custom_reg", "rom", "custom_array", "mem_read", "mem_write",
        "spawn", "wr_then_rd", "pc_write", "always",
    }
    missing = required - seen
    assert not missing, f"features never generated: {sorted(missing)}"


def test_budget_gates_optional_features():
    budget = FuzzBudget(allow_memory=False, allow_spawn=False,
                        allow_always=False, allow_rom=False)
    for seed in range(30):
        program = generate_program(seed, budget)
        assert "MEM[" not in program.source
        assert "spawn" not in program.source
        assert "always" not in program.source
        assert not program.features & {"mem_read", "mem_write", "spawn",
                                       "always", "rom"}
        elaborate(program.source)


def test_budget_scaled_single_knob():
    small = FuzzBudget.scaled(2)
    large = FuzzBudget.scaled(16)
    assert small.statements == 2
    assert large.statements == 16
    assert large.depth >= small.depth
    for seed in range(5):
        elaborate(generate_program(seed, large).source)
