"""Positive and negative tests for every IVxxx verifier check."""

import pytest

import repro.dialects  # noqa: F401  (registers all operations)
from repro.analysis.verifier import (
    IR_CHECKS,
    IRVerifyError,
    ir_verify_enabled,
    require_valid,
    verify_graph,
    verify_module,
    verify_schedule,
)
from repro.dialects.hw import HWModule
from repro.hls.longnail import compile_isax
from repro.ir.builder import Builder
from repro.ir.core import Graph
from repro.isaxes import DOTPROD
from repro.scheduling.problem import LongnailProblem, OperatorType
from repro.scheduling.scheduler import ScheduleResult
from repro.utils.diagnostics import Diagnostic, Severity


def make_graph(name="g"):
    graph = Graph(name)
    return graph, Builder.at(graph)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestRegistry:
    def test_all_checks_present(self):
        assert set(IR_CHECKS) == {f"IV{n:03d}" for n in range(1, 10)}
        for check in IR_CHECKS.values():
            assert check.description


class TestSSA:
    def test_positive_foreign_value(self):
        other, other_b = make_graph("other")
        foreign = other_b.constant(1, 8)
        graph, builder = make_graph()
        builder.create("comb.not", [foreign], [(8, None)])
        assert "IV001" in codes(verify_graph(graph))

    def test_negative_local_values(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        builder.create("comb.not", [a], [(8, None)])
        assert verify_graph(graph) == []


class TestOpInvariant:
    def test_positive_width_mismatch(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(1, 16)
        builder.create("comb.add", [a, b], [(8, None)])
        assert "IV002" in codes(verify_graph(graph))

    def test_negative_consistent_widths(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 8)
        builder.create("comb.add", [a, b], [(8, None)])
        assert verify_graph(graph) == []


class TestConstantRange:
    def test_positive_out_of_range_constant(self):
        graph, builder = make_graph()
        value = builder.constant(3, 8)
        # Seeded invariant break: corrupt the constant after construction
        # (a rewrite bug the op builder can no longer catch).
        value.owner.attributes["value"] = 999
        found = verify_graph(graph)
        assert codes(found) == ["IV003"]
        assert "999" in found[0].message
        assert "8-bit" in found[0].message

    def test_positive_rom_value_too_wide(self):
        graph, builder = make_graph()
        index = builder.constant(0, 4)
        rom = builder.create("lil.rom", [index], [(8, None)],
                             {"reg": "SBOX", "values": [1, 2, 300, 4],
                              "count": 1})
        assert rom is not None
        found = verify_graph(graph)
        assert "IV003" in codes(found)
        assert any("300" in d.message and "index 2" in d.message
                   for d in found)

    def test_negative_in_range(self):
        graph, builder = make_graph()
        builder.constant(255, 8)
        index = builder.constant(0, 4)
        builder.create("lil.rom", [index], [(8, None)],
                       {"reg": "SBOX", "values": [0, 255], "count": 1})
        assert verify_graph(graph) == []


class TestCombCycle:
    def test_positive_cycle(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        x = builder.create("comb.add", [a, a], [(8, None)])
        y = builder.create("comb.add", [x.result, a], [(8, None)])
        # Close the loop: x now depends on y.
        x.set_operand(1, y.result)
        assert "IV004" in codes(verify_graph(graph))

    def test_negative_dag(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        x = builder.create("comb.add", [a, a], [(8, None)])
        builder.create("comb.add", [x.result, a], [(8, None)])
        assert verify_graph(graph) == []


def toy_schedule(start_a=0, start_b=1, latency=1, latest=10,
                 chain_breaker=False, drop_start=False):
    graph = Graph("sched")
    problem = LongnailProblem()
    problem.add_operator_type(OperatorType("op", latency=latency,
                                           incoming_delay=0.1,
                                           outgoing_delay=0.1,
                                           earliest=0, latest=latest))
    problem.add_operation("a", "op")
    problem.add_operation("b", "op")
    problem.add_dependence("a", "b", is_chain_breaker=chain_breaker)
    problem.start_time = {"a": start_a, "b": start_b}
    if drop_start:
        del problem.start_time["b"]
    return ScheduleResult(graph=graph, problem=problem, engine="test",
                          cycle_time_ns=1.0, chain_breakers=0)


class TestSchedulePrecedence:
    def test_positive_dependence_violated(self):
        # Seeded invariant break: b starts before a finishes.
        found = verify_schedule(toy_schedule(start_a=0, start_b=0))
        assert codes(found) == ["IV005"]
        assert "'a'" in found[0].message and "'b'" in found[0].message

    def test_positive_chain_breaker_needs_extra_cycle(self):
        found = verify_schedule(toy_schedule(start_a=0, start_b=1,
                                             chain_breaker=True))
        assert codes(found) == ["IV005"]

    def test_positive_missing_start_time(self):
        found = verify_schedule(toy_schedule(drop_start=True))
        assert codes(found) == ["IV005"]
        assert "no start time" in found[0].message

    def test_negative_legal_schedule(self):
        assert verify_schedule(toy_schedule(start_a=0, start_b=1)) == []


class TestScheduleWindow:
    def test_positive_start_after_latest(self):
        found = verify_schedule(toy_schedule(start_a=0, start_b=20,
                                             latest=10))
        assert codes(found) == ["IV006"]
        assert "[0, 10]" in found[0].message

    def test_negative_inside_window(self):
        assert verify_schedule(toy_schedule(start_a=0, start_b=5,
                                            latest=10)) == []


class TestModulePorts:
    def test_positive_undriven_output(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        module.add_output("out", a)
        # Seeded break: drop the hw.output op that drives the port.
        for op in list(module.body.operations):
            if op.name == "hw.output":
                op.erase()
        found = verify_module(module)
        assert codes(found) == ["IV007"]
        assert "'out'" in found[0].message

    def test_negative_all_driven(self):
        module = HWModule("m")
        a = module.add_input("a", 8)
        module.add_output("out", a)
        assert verify_module(module) == []


class TestShiftAlwaysFlushed:
    def _shift(self, amount_bits):
        graph, builder = make_graph()
        data = builder.constant(1, 8)
        # Non-constant amount (comb.or owner) with a proven interval.
        amount = builder.create(
            "comb.or",
            [builder.constant(amount_bits, 8), builder.constant(0, 8)],
            [(8, None)])
        builder.create("comb.shl", [data, amount.result], [(8, None)])
        return graph

    def test_positive_amount_proven_at_or_above_width(self):
        found = verify_graph(self._shift(12))
        assert codes(found) == ["IV008"]
        assert found[0].severity is Severity.WARNING
        assert "[12, 12]" in found[0].message

    def test_negative_amount_can_stay_below_width(self):
        assert verify_graph(self._shift(2)) == []

    def test_negative_constant_amount_is_not_iv008(self):
        # Constant flushes are LN002 / fold territory, not this check.
        graph, builder = make_graph()
        data = builder.constant(1, 8)
        builder.create("comb.shl", [data, builder.constant(12, 8)],
                       [(8, None)])
        assert "IV008" not in codes(verify_graph(graph))


class TestRomIndexOutOfRange:
    def _rom(self, index_bits):
        graph, builder = make_graph()
        index = builder.create(
            "comb.or",
            [builder.constant(index_bits, 3), builder.constant(0, 3)],
            [(3, None)])
        builder.create("comb.rom", [index.result], [(8, None)],
                       {"values": [1, 2, 3, 4]})
        return graph

    def test_positive_index_proven_past_table(self):
        found = verify_graph(self._rom(4))
        assert codes(found) == ["IV009"]
        assert found[0].severity is Severity.WARNING
        assert "4-entry" in found[0].message

    def test_negative_index_can_hit_table(self):
        assert verify_graph(self._rom(2)) == []


class TestRangeFindingsNeverFailRequireValid:
    def test_warning_findings_pass(self):
        # IV008/IV009 are warnings: require_valid must not raise on them.
        graph, builder = make_graph()
        data = builder.constant(1, 8)
        amount = builder.create(
            "comb.or",
            [builder.constant(12, 8), builder.constant(0, 8)],
            [(8, None)])
        builder.create("comb.shl", [data, amount.result], [(8, None)])
        found = verify_graph(graph)
        assert codes(found) == ["IV008"]
        require_valid("test:range", found)


class TestRequireValid:
    def test_raises_with_stage_and_findings(self):
        bad = Diagnostic("IV003", Severity.ERROR, "constant out of range")
        with pytest.raises(IRVerifyError) as excinfo:
            require_valid("lower:dotp", [bad])
        err = excinfo.value
        assert err.stage == "lower:dotp"
        assert err.diagnostics == [bad]
        assert "lower:dotp" in str(err)
        assert "constant out of range" in str(err)

    def test_no_errors_no_raise(self):
        require_valid("x", [])
        require_valid("x", [Diagnostic("LN005", Severity.WARNING, "w")])


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR_VERIFY", raising=False)
        assert not ir_verify_enabled()

    def test_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR_VERIFY", "1")
        assert ir_verify_enabled()


class TestRealArtifactIsClean:
    def test_compiled_isax_verifies(self):
        from repro.analysis.verifier import verify_artifact_ir
        artifact = compile_isax(DOTPROD, "VexRiscv")
        assert verify_artifact_ir(artifact) == []
