"""Soundness and precision tests for the abstract-interpretation engine.

Three layers:

* unit tests for the :class:`AbsVal` domain algebra (cross-refinement,
  join/meet, signed reading) and the :class:`IntRange` companion domain;
* precision tests on hand-built graphs — the facts the optimizer, the
  lint rules, and the batch codegen rely on must actually be inferred;
* a hypothesis property: on random well-typed netlists, every concrete
  value an RTL simulation produces satisfies the engine's fact for it
  (:func:`repro.fuzz.oracles.check_range_soundness`, the same predicate
  the ``rangesound`` fuzz oracle enforces).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.absint import (
    ABSINT_COUNTS,
    AbsVal,
    IntRange,
    analyze_graph,
    analyze_module,
    clear_facts_cache,
    netlist_digest,
    slice_source,
)
from repro.dialects.hw import HWModule
from repro.fuzz.oracles import check_range_soundness
from repro.ir.core import Graph, Operation
from repro.utils.bits import mask

from tests.sim.test_batched_engine import random_netlists


# ---------------------------------------------------------------------------
# AbsVal domain algebra
# ---------------------------------------------------------------------------

class TestAbsVal:
    def test_const_pins_all_bits(self):
        fact = AbsVal.const(8, 0xA5)
        assert (fact.lo, fact.hi) == (0xA5, 0xA5)
        assert fact.ones == 0xA5 and fact.zeros == 0x5A
        assert fact.is_const and fact.value == 0xA5

    def test_interval_refines_shared_leading_bits(self):
        # [0x40, 0x4F]: bits 7 and 4..6 agree across the whole interval.
        fact = AbsVal.from_interval(8, 0x40, 0x4F)
        assert fact.zeros == 0xB0
        assert fact.ones == 0x40

    def test_bits_refine_interval(self):
        fact = AbsVal.make(8, 0, 0xFF, zeros=0xF0, ones=0x01)
        assert fact.lo == 0x01
        assert fact.hi == 0x0F

    def test_contradiction_degrades_to_top(self):
        assert AbsVal.make(8, 5, 3).is_top()
        assert AbsVal.make(8, 0, 255, zeros=1, ones=1).is_top()

    def test_contains(self):
        fact = AbsVal.make(8, 0, 0x0F, zeros=0xF0)
        assert fact.contains(0) and fact.contains(0x0F)
        assert not fact.contains(0x10)

    def test_join_unions(self):
        joined = AbsVal.const(8, 4).join(AbsVal.const(8, 6))
        assert (joined.lo, joined.hi) == (4, 6)
        assert joined.contains(4) and joined.contains(6)
        # bit 2 is set in both 4 (100) and 6 (110): still known-one.
        assert joined.ones & 0b100

    def test_meet_refines_and_rejects_contradiction(self):
        met = AbsVal.from_interval(8, 0, 10).meet(AbsVal.from_interval(8, 5, 200))
        assert (met.lo, met.hi) == (5, 10)
        older = AbsVal.const(8, 3)
        # Contradictory refinement keeps the older fact, never widens.
        assert older.meet(AbsVal.const(8, 77)).same(older)

    def test_signed_interval(self):
        assert AbsVal.from_interval(8, 0, 5).signed_interval() == (0, 5)
        assert AbsVal.from_interval(8, 0xF0, 0xFF).signed_interval() == (-16, -1)
        assert AbsVal.top(8).signed_interval() is None


class TestIntRange:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            IntRange(3, 2)

    def test_arithmetic(self):
        a, b = IntRange(-2, 3), IntRange(1, 4)
        assert (a.add(b).lo, a.add(b).hi) == (-1, 7)
        assert (a.sub(b).lo, a.sub(b).hi) == (-6, 2)
        assert (a.mul(b).lo, a.mul(b).hi) == (-8, 12)
        assert (a.neg().lo, a.neg().hi) == (-3, 2)

    def test_shifts_guard_negatives(self):
        assert IntRange(-1, 1).shl(IntRange(1, 1)) is None
        assert IntRange(0, 3).shl(IntRange(0, 5000)) is None
        shifted = IntRange(1, 3).shl(IntRange(2, 2))
        assert (shifted.lo, shifted.hi) == (4, 12)

    def test_proven_compare(self):
        assert IntRange(0, 3).compare("<", IntRange(4, 9)) is True
        assert IntRange(5, 9).compare("<", IntRange(0, 5)) is False
        assert IntRange(0, 5).compare("<", IntRange(3, 9)) is None
        assert IntRange(2, 2).compare("==", IntRange(2, 2)) is True
        assert IntRange(0, 1).compare("!=", IntRange(4, 6)) is True


# ---------------------------------------------------------------------------
# Transfer precision on hand-built graphs
# ---------------------------------------------------------------------------

def _input(module_graph: Graph, width: int) -> Operation:
    op = Operation("hw.input", [], [(width, None)], {"name": "x"})
    module_graph.block.append(op)
    return op


def _emit(graph: Graph, name: str, operands, width: int, attrs=None):
    op = Operation(name, operands, [(width, None)], attrs or {})
    graph.block.append(op)
    return op


def _const(graph: Graph, value: int, width: int):
    return _emit(graph, "comb.constant", [], width, {"value": value})


class TestTransferPrecision:
    def test_and_mask_bounds(self):
        g = Graph("t")
        x = _input(g, 32)
        m = _const(g, 0xFF, 32)
        a = _emit(g, "comb.and", [x.result, m.result], 32)
        fact = analyze_graph(g).get(a.result)
        assert fact.hi == 0xFF and fact.zeros == 0xFFFFFF00

    def test_add_wraparound_window(self):
        g = Graph("t")
        x = _input(g, 8)
        m = _const(g, 0x0F, 8)
        nar = _emit(g, "comb.and", [x.result, m.result], 8)
        c = _const(g, 3, 8)
        s = _emit(g, "comb.add", [nar.result, c.result], 8)
        fact = analyze_graph(g).get(s.result)
        assert (fact.lo, fact.hi) == (3, 18)

    def test_shift_flush_is_constant_zero(self):
        g = Graph("t")
        x = _input(g, 8)
        amt = _const(g, 9, 8)
        sh = _emit(g, "comb.shl", [x.result, amt.result], 8)
        fact = analyze_graph(g).get(sh.result)
        assert fact.is_const and fact.value == 0

    def test_icmp_disjoint_intervals_proven(self):
        g = Graph("t")
        x = _input(g, 8)
        m = _const(g, 0x0F, 8)
        small = _emit(g, "comb.and", [x.result, m.result], 8)
        big = _const(g, 0x40, 8)
        lt = _emit(g, "comb.icmp", [small.result, big.result], 1,
                   {"predicate": "ult"})
        fact = analyze_graph(g).get(lt.result)
        assert fact.is_const and fact.value == 1

    def test_rom_range_covers_reachable_slice_only(self):
        g = Graph("t")
        x = _input(g, 2)
        rom = _emit(g, "comb.rom", [x.result], 8,
                    {"values": [3, 5, 7, 9]})
        fact = analyze_graph(g).get(rom.result)
        assert fact.lo == 3 and fact.hi == 9
        # Common set bit of all reachable entries (3,5,7,9 -> bit 0).
        assert fact.ones & 1

    def test_mux_joins_arms(self):
        g = Graph("t")
        c = _input(g, 1)
        a = _const(g, 4, 8)
        b = _const(g, 6, 8)
        mx = _emit(g, "comb.mux", [c.result, a.result, b.result], 8)
        fact = analyze_graph(g).get(mx.result)
        assert (fact.lo, fact.hi) == (4, 6)

    def test_concat_stacks_bounds(self):
        g = Graph("t")
        x = _input(g, 4)
        z = _const(g, 0, 4)
        cat = _emit(g, "comb.concat", [z.result, x.result], 8)
        fact = analyze_graph(g).get(cat.result)
        assert fact.hi == 0x0F and fact.zeros == 0xF0

    def test_extract_through_concat_slice_source(self):
        g = Graph("t")
        x = _input(g, 8)
        z = _const(g, 0, 8)
        cat = _emit(g, "comb.concat", [z.result, x.result], 16)
        ext = _emit(g, "comb.extract", [cat.result], 8, {"low": 8})
        src, low = slice_source(ext.operands[0], 8, 8)
        assert src is z.result and low == 0
        fact = analyze_graph(g).get(ext.result)
        assert fact.is_const and fact.value == 0


# ---------------------------------------------------------------------------
# Per-module memoization
# ---------------------------------------------------------------------------

class TestModuleCache:
    def test_cache_hit_and_digest_invalidation(self):
        module = HWModule("m")
        x = module.add_input("x", 8)
        m = Operation("comb.constant", [], [(8, None)], {"value": 0x0F})
        module.body.append(m)
        a = Operation("comb.and", [x, m.result], [(8, None)])
        module.body.append(a)
        module.add_output("y", a.result)

        clear_facts_cache()
        before = dict(ABSINT_COUNTS)
        first = analyze_module(module)
        second = analyze_module(module)
        assert second is first
        assert ABSINT_COUNTS["analyses"] == before["analyses"] + 1
        assert ABSINT_COUNTS["cache_hits"] == before["cache_hits"] + 1

        digest = netlist_digest(module)
        m.attributes["value"] = 0x3F  # in-place netlist edit
        assert netlist_digest(module) != digest
        third = analyze_module(module)
        assert third is not first
        assert third.get(a.result).hi == 0x3F


# ---------------------------------------------------------------------------
# Hypothesis: every simulated value satisfies its fact
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.too_slow])
@given(module=random_netlists(), seed=st.integers(0, 2 ** 16))
def test_random_netlists_facts_sound(module, seed):
    mismatch = check_range_soundness(module, cycles=6, seed=seed)
    assert mismatch is None, mismatch


@settings(deadline=None, max_examples=30,
          suppress_health_check=[HealthCheck.too_slow])
@given(module=random_netlists())
def test_random_netlists_facts_within_width(module):
    facts = analyze_graph(module.body)
    for op in module.body.operations:
        for result in op.results:
            fact = facts.get(result)
            w = mask(result.width)
            assert 0 <= fact.lo <= fact.hi <= w
            assert fact.zeros & fact.ones == 0
            assert (fact.zeros | fact.ones) & ~w == 0
