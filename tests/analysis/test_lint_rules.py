"""Positive and negative tests for every LNxxx lint rule."""

import pytest

from repro.analysis.lint import (
    LINT_RULES,
    lint_cross_isa,
    lint_source,
    run_lints,
)
from repro.frontend.elaboration import elaborate
from repro.isaxes import ALL_ISAXES
from repro.utils.diagnostics import Severity


def isax(body: str, name: str = "X_TEST") -> str:
    return ('import "RV32I.core_desc"\n'
            f"InstructionSet {name} extends RV32I {{\n{body}\n}}\n")


def instr(behavior: str, funct3: int = 1, name: str = "t") -> str:
    return f"""
  instructions {{
    {name} {{
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd{funct3} :: rd[4:0]
                  :: 7'b0001011;
        behavior: {{ {behavior} }}
    }}
  }}
"""


def codes(source: str, **kwargs):
    _isa, diagnostics = lint_source(source, **kwargs)
    return [d.code for d in diagnostics]


class TestRegistry:
    def test_all_rules_registered_in_order(self):
        assert sorted(LINT_RULES) == list(LINT_RULES)
        assert set(LINT_RULES) == {f"LN{n:03d}" for n in range(1, 16)}

    def test_every_rule_has_description(self):
        for rule in LINT_RULES.values():
            assert rule.description
            assert rule.name


class TestImplicitTruncation:
    def test_positive_compound_assign_wider_rhs(self):
        src = isax(instr("unsigned<8> a = 0; a += X[rs1]; X[rd] = a;"))
        assert "LN001" in codes(src)

    def test_negative_same_width(self):
        src = isax(instr("unsigned<32> a = 0; a += X[rs1]; X[rd] = a;"))
        assert "LN001" not in codes(src)


class TestShiftWidth:
    def test_positive_constant_overshift(self):
        src = isax(instr(
            "X[rd] = (unsigned<32>) (X[rs1] << 40);"))
        assert "LN002" in codes(src)

    def test_negative_in_range_shift(self):
        src = isax(instr("X[rd] = (unsigned<32>) (X[rs1] << 4);"))
        assert "LN002" not in codes(src)

    def test_negative_dynamic_shift_amount(self):
        src = isax(instr(
            "X[rd] = (unsigned<32>) (X[rs1] << X[rs2][4:0]);"))
        assert "LN002" not in codes(src)


class TestShiftWidthProvenRange:
    """LN002's range upgrade: non-constant amounts with a proven range."""

    def test_positive_proven_overshift(self):
        # rs2 decodes to [0, 31]; +32 keeps the amount >= the width.
        src = isax(instr(
            "X[rd] = (unsigned<32>)(X[rs1] << (rs2 + 32));"))
        assert "LN002" in codes(src)

    def test_negative_field_bounded_amount(self):
        # A raw 5-bit shamt tops out at 31 < 32: stays clean.
        src = isax(instr("X[rd] = (unsigned<32>)(X[rs1] << rs2);"))
        assert "LN002" not in codes(src)


class TestSignCompare:
    def test_positive_mixed_signedness(self):
        src = isax(instr(
            "if ((signed<32>) X[rs1] < X[rs2]) X[rd] = 1; else X[rd] = 0;"))
        assert "LN003" in codes(src)

    def test_negative_same_signedness(self):
        src = isax(instr(
            "if (X[rs1] < X[rs2]) X[rd] = 1; else X[rd] = 0;"))
        assert "LN003" not in codes(src)

    def test_negative_nonnegative_constant(self):
        # A non-negative literal is representable either way: quiet.
        src = isax(instr(
            "if ((signed<32>) X[rs1] < 5) X[rd] = 1; else X[rd] = 0;"))
        assert "LN003" not in codes(src)


class TestStateReadBeforeWrite:
    def test_positive_uninitialized_read_only_state(self):
        src = isax(
            "  architectural_state { register unsigned<32> ACC; }\n"
            + instr("X[rd] = ACC;"))
        assert "LN004" in codes(src)

    def test_negative_written_somewhere(self):
        src = isax(
            "  architectural_state { register unsigned<32> ACC; }\n"
            + instr("ACC = X[rs1]; X[rd] = ACC;"))
        assert "LN004" not in codes(src)

    def test_negative_initialized(self):
        src = isax(
            "  architectural_state { register unsigned<32> ACC = 0; }\n"
            + instr("X[rd] = ACC;"))
        assert "LN004" not in codes(src)


class TestUnusedState:
    def test_positive_never_referenced(self):
        src = isax(
            "  architectural_state { register unsigned<32> GHOST; }\n"
            + instr("X[rd] = X[rs1];"))
        assert "LN005" in codes(src)

    def test_negative_read(self):
        src = isax(
            "  architectural_state { register unsigned<32> ACC = 0; }\n"
            + instr("X[rd] = ACC;"))
        assert "LN005" not in codes(src)

    def test_negative_only_written(self):
        src = isax(
            "  architectural_state { register unsigned<32> ACC; }\n"
            + instr("ACC = X[rs1];"))
        assert "LN005" not in codes(src)

    def test_base_register_file_is_exempt(self):
        # X/PC/MEM come from the base core, not the ISAX: never reported.
        src = isax(instr("X[rd] = X[rs1];"))
        assert "LN005" not in codes(src)


class TestUnusedFunction:
    def test_positive_never_called(self):
        src = isax(
            "  functions { unsigned<32> orphan(unsigned<32> a) "
            "{ return a; } }\n"
            + instr("X[rd] = X[rs1];"))
        assert "LN006" in codes(src)

    def test_negative_called_from_instruction(self):
        src = isax(
            "  functions { unsigned<32> used(unsigned<32> a) "
            "{ return a; } }\n"
            + instr("X[rd] = used(X[rs1]);"))
        assert "LN006" not in codes(src)

    def test_negative_called_transitively(self):
        src = isax(
            "  functions {\n"
            "    unsigned<32> inner(unsigned<32> a) { return a; }\n"
            "    unsigned<32> outer(unsigned<32> a) { return inner(a); }\n"
            "  }\n"
            + instr("X[rd] = outer(X[rs1]);"))
        assert "LN006" not in codes(src)


class TestUnusedField:
    def test_positive_unreferenced_operand(self):
        src = isax(instr("X[rd] = X[rs1];"))
        assert "LN007" in codes(src)      # rs2 unused

    def test_negative_all_fields_used(self):
        src = isax(instr("X[rd] = X[rs1] ^ X[rs2];"))
        assert "LN007" not in codes(src)


class TestUnreachableCode:
    def test_positive_statement_after_return(self):
        src = isax(
            "  functions { unsigned<32> f(unsigned<32> a) "
            "{ return a; a = 0; } }\n"
            + instr("X[rd] = f(X[rs1]);"))
        assert "LN008" in codes(src)

    def test_negative_return_last(self):
        src = isax(
            "  functions { unsigned<32> f(unsigned<32> a) "
            "{ return a; } }\n"
            + instr("X[rd] = f(X[rs1]);"))
        assert "LN008" not in codes(src)


class TestDeadBranch:
    def test_positive_constant_if(self):
        src = isax(instr("if (1) X[rd] = X[rs1]; else X[rd] = X[rs2];"))
        assert "LN009" in codes(src)

    def test_positive_constant_conditional_expr(self):
        src = isax(instr("X[rd] = 0 ? X[rs1] : X[rs2];"))
        assert "LN009" in codes(src)

    def test_negative_dynamic_condition(self):
        src = isax(instr(
            "if (X[rs1] == 0) X[rd] = 1; else X[rd] = X[rs2];"))
        assert "LN009" not in codes(src)


class TestEncodingOverlap:
    def test_positive_identical_encodings(self):
        # Two instructions with the same fixed bits.
        body = """
  instructions {
    a {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = X[rs1] ^ X[rs2]; }
    }
    b {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = X[rs1] & X[rs2]; }
    }
  }
"""
        _isa, diagnostics = lint_source(isax(body))
        assert any(d.code == "LN010" and d.is_error for d in diagnostics)

    def test_negative_distinct_funct3(self):
        body = """
  instructions {
    a {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = X[rs1] ^ X[rs2]; }
    }
    b {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd2 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = X[rs1] & X[rs2]; }
    }
  }
"""
        assert "LN010" not in codes(isax(body))


class TestEncodingOverlapCross:
    def test_positive_two_isas_same_opcode(self):
        a = elaborate(isax(instr("X[rd] = X[rs1] ^ X[rs2];", funct3=1),
                           name="X_A"))
        b = elaborate(isax(instr("X[rd] = X[rs1] & X[rs2];", funct3=1),
                           name="X_B"))
        found = lint_cross_isa([a, b])
        assert [d.code for d in found] == ["LN011"]
        assert "X_A" in found[0].notes[0].message \
            or "X_A" in found[0].message

    def test_negative_distinct_funct3(self):
        a = elaborate(isax(instr("X[rd] = X[rs1] ^ X[rs2];", funct3=1),
                           name="X_A"))
        b = elaborate(isax(instr("X[rd] = X[rs1] & X[rs2];", funct3=2),
                           name="X_B"))
        assert lint_cross_isa([a, b]) == []

    def test_single_isa_reports_nothing(self):
        a = elaborate(isax(instr("X[rd] = X[rs1] ^ X[rs2];")))
        assert lint_cross_isa([a]) == []

    def test_benchmark_isaxes_coordinate_opcodes(self):
        isas = [elaborate(src, filename=f"{name}.core_desc")
                for name, src in sorted(ALL_ISAXES.items())]
        assert lint_cross_isa(isas) == []


class TestProvenComparison:
    def test_positive_field_vs_constant(self):
        # rs1 decodes to [0, 31]: never above 40.
        src = isax(instr("if (rs1 > 40) X[rd] = 1; else X[rd] = 0;"))
        assert "LN012" in codes(src)

    def test_positive_disjoint_field_windows(self):
        src = isax(instr(
            "if ((rs1 + 1) > (rs2 + 40)) X[rd] = 1; else X[rd] = 0;"))
        assert "LN012" in codes(src)

    def test_negative_overlapping_ranges(self):
        src = isax(instr("if (rs1 > rs2) X[rd] = 1; else X[rd] = 0;"))
        assert "LN012" not in codes(src)

    def test_negative_mixed_signedness_is_ln003_territory(self):
        # The mathematical proof would not match converted semantics;
        # LN003 owns mixed-signedness compares.
        src = isax(instr(
            "if ((signed<6>)rs1 > (rs2 + 40)) X[rd] = 1; else X[rd] = 0;"
            " X[rd] = X[rs2];"))
        found = codes(src)
        assert "LN012" not in found
        assert "LN003" in found


class TestProvenDivisionByZero:
    def test_positive_masked_to_zero_divisor(self):
        src = isax(instr("X[rd] = X[rs1] / (rs2 & 0x0);"))
        assert "LN013" in codes(src)

    def test_positive_modulo(self):
        src = isax(instr("X[rd] = X[rs1] % (rs2 & 0x0);"))
        assert "LN013" in codes(src)

    def test_negative_divisor_proven_positive(self):
        src = isax(instr("X[rd] = X[rs1] / (rs2 + 1);"))
        assert "LN013" not in codes(src)


class TestArrayIndexOutOfRange:
    def test_positive_index_proven_past_array(self):
        # rs1 + 8 stays in [8, 39]; ACC has 4 elements.
        src = isax(
            "  architectural_state { register unsigned<32> ACC[4]; }\n"
            + instr("X[rd] = ACC[rs1 + 8];"))
        assert "LN014" in codes(src)

    def test_negative_masked_index(self):
        src = isax(
            "  architectural_state { register unsigned<32> ACC[4]; }\n"
            + instr("X[rd] = ACC[rs1 & 0x3]; ACC[rs2 & 0x3] = X[rs1];"))
        assert "LN014" not in codes(src)


class TestFieldDeadBits:
    DEAD = """
  instructions {
    t {
        encoding: 7'd0 :: imm[4:1] :: 1'b0 :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = (unsigned<32>)(X[rs1] + imm); }
    }
  }
"""
    FULL = """
  instructions {
    t {
        encoding: 7'd0 :: imm[4:0] :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = (unsigned<32>)(X[rs1] + imm); }
    }
  }
"""

    def test_positive_unfilled_bit_reported_as_note(self):
        _isa, diagnostics = lint_source(isax(self.DEAD))
        found = [d for d in diagnostics if d.code == "LN015"]
        assert len(found) == 1
        assert found[0].severity is Severity.NOTE
        assert "bit 0" in found[0].message

    def test_negative_fully_covered_field(self):
        assert "LN015" not in codes(isax(self.FULL))


class TestRuleSelection:
    SRC = None

    @classmethod
    def setup_class(cls):
        cls.SRC = isax(
            "  architectural_state { register unsigned<32> GHOST; }\n"
            + instr("X[rd] = X[rs1];"))

    def test_enable_restricts(self):
        isa = elaborate(self.SRC)
        only = run_lints(isa, enable=["LN005"])
        assert {d.code for d in only} == {"LN005"}

    def test_disable_removes(self):
        isa = elaborate(self.SRC)
        remaining = run_lints(isa, disable=["LN005", "LN007"])
        assert remaining == []

    def test_unknown_code_raises(self):
        isa = elaborate(self.SRC)
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lints(isa, enable=["LN999"])


class TestBenchmarkISAXesAreClean:
    @pytest.mark.parametrize("name", sorted(ALL_ISAXES))
    def test_no_findings(self, name):
        isa = elaborate(ALL_ISAXES[name], filename=f"{name}.core_desc")
        assert run_lints(isa) == []


class TestDiagnosticQuality:
    def test_findings_carry_locations_and_rules(self):
        src = isax(
            "  architectural_state { register unsigned<32> GHOST; }\n"
            + instr("X[rd] = X[rs1];"))
        _isa, diagnostics = lint_source(src, filename="q.core_desc")
        assert diagnostics
        for d in diagnostics:
            assert d.rule
            assert d.loc is not None and d.loc.filename == "q.core_desc"
            assert d.loc.line > 0
