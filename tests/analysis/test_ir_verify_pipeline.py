"""The IR verifier wired into the compilation pipeline and fuzz oracles."""

import pytest

from repro.fuzz.oracles import run_oracles
from repro.hls.longnail import PHASES, compile_isax
from repro.isaxes import ALL_ISAXES, DOTPROD, ZOL
from repro.service.executor import run_compile_payload
from repro.service.jobs import CompileJob
from repro.service.metrics import BatchMetrics, JobMetrics


class TestPhases:
    def test_lint_and_verify_are_phases(self):
        assert "lint" in PHASES
        assert "verify" in PHASES
        # Flow order preserved around them.
        assert PHASES.index("parse") < PHASES.index("lint") \
            < PHASES.index("lower") < PHASES.index("schedule") \
            < PHASES.index("hwgen") < PHASES.index("verify") \
            < PHASES.index("emit")


class TestCompileIsaxWiring:
    def test_lint_on_by_default(self):
        artifact = compile_isax(ZOL, "VexRiscv")
        assert artifact.diagnostics == []   # zol is lint-clean

    def test_lint_disabled(self):
        times = {}
        artifact = compile_isax(
            ZOL, "VexRiscv", lint=False,
            phase_hook=lambda p, s: times.setdefault(p, s))
        assert artifact.diagnostics == []
        assert "lint" not in times

    def test_verify_ir_explicit_true_runs_verify_phase(self):
        times = {}
        compile_isax(ZOL, "VexRiscv", verify_ir=True,
                     phase_hook=lambda p, s: times.setdefault(p, s))
        assert "verify" in times

    def test_verify_ir_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_IR_VERIFY", raising=False)
        times = {}
        compile_isax(ZOL, "VexRiscv",
                     phase_hook=lambda p, s: times.setdefault(p, s))
        assert "verify" not in times

    def test_env_enables_verify(self, monkeypatch):
        monkeypatch.setenv("REPRO_IR_VERIFY", "1")
        times = {}
        compile_isax(DOTPROD, "VexRiscv",
                     phase_hook=lambda p, s: times.setdefault(p, s))
        assert "verify" in times

    @pytest.mark.parametrize("name", sorted(ALL_ISAXES))
    def test_all_benchmark_isaxes_verify_on_all_phases(self, name):
        compile_isax(ALL_ISAXES[name], "PicoRV32", verify_ir=True)


class TestLintFlowsThroughService:
    def test_payload_record_carries_lint(self):
        job = CompileJob(isax="zol", source=ZOL, core="VexRiscv")
        record = run_compile_payload(job.to_payload())
        assert record["lint"] == []
        assert record["lint_counts"] == {"error": 0, "warning": 0, "note": 0}
        assert "lint" in record["phases"]

    def test_batch_metrics_aggregate_lint(self):
        metrics = BatchMetrics()
        metrics.add(JobMetrics(
            job_id="a", isax="a", core="c", status="ok", cached=False,
            attempts=1, seconds=0.1, phases={}, ilp=[],
            lint={"error": 0, "warning": 2, "note": 0}))
        metrics.add(JobMetrics(
            job_id="b", isax="b", core="c", status="ok", cached=False,
            attempts=1, seconds=0.1, phases={}, ilp=[],
            lint={"error": 1, "warning": 1, "note": 0}))
        assert metrics.lint_totals() == {"error": 1, "warning": 3, "note": 0}
        assert metrics.to_dict()["lint_totals"]["warning"] == 3

    def test_jobs_without_lint_counts_tolerated(self):
        # Old cached artifact records predate the lint field.
        metrics = BatchMetrics()
        metrics.add(JobMetrics(
            job_id="old", isax="x", core="c", status="ok", cached=True,
            attempts=1, seconds=0.0, phases={}, ilp=[]))
        assert metrics.lint_totals() == {"error": 0, "warning": 0, "note": 0}


class TestIrverifyOracle:
    def test_clean_program_passes_oracle_stack(self):
        report = run_oracles(ZOL, cores=("VexRiscv",), trials=2)
        assert report.ok
        assert "irverify" not in report.kinds
