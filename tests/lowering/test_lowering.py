"""Lowering tests: AST -> coredsl IR -> lil CDFG (paper Figure 5 a->b->c)."""

import pytest

from repro.frontend import elaborate
from repro.ir.printer import print_graph, print_operation
from repro.lowering import convert_to_lil, lower_isa
from repro.utils.diagnostics import CoreDSLError


def lower(source, name=None):
    isa = elaborate(source)
    lowered = lower_isa(isa)
    if name is None:
        name = next(iter(lowered.instructions))
    if name in lowered.instructions:
        return isa, convert_to_lil(isa, lowered.instructions[name])
    return isa, convert_to_lil(isa, lowered.always_blocks[name])


def ops_named(graph, name):
    return [op for op in graph.operations if op.name == name]


def simple_isax(behavior, state="", encoding=None):
    encoding = encoding or "10'd0 :: rs2[4:0] :: rs1[4:0] :: rd[4:0] :: 7'b0001011"
    return f"""
    import "RV32I.core_desc"
    InstructionSet T extends RV32I {{
      architectural_state {{ {state} }}
      instructions {{
        t {{ encoding: {encoding}; behavior: {{ {behavior} }} }}
      }}
    }}
    """


ADDI = '''
import "RV32I.core_desc"
InstructionSet addi_only extends RV32I {
  instructions {
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { X[rd] = (unsigned<32>) (X[rs1] + (signed) imm); }
    }
  }
}
'''


class TestFigure5:
    """The ADDI running example of paper Figure 5."""

    def test_coredsl_level(self):
        isa = elaborate(ADDI)
        lowered = lower_isa(isa)
        text = print_operation(lowered.instructions["ADDI"])
        assert "coredsl.instruction" in text
        assert "coredsl.get" in text
        assert "hwarith.add" in text
        assert "si34" in text  # ui32 + si12 -> si34, exactly as in Figure 5b
        assert "coredsl.set" in text
        assert "coredsl.end" in text

    def test_lil_level(self):
        isa, graph = lower(ADDI, "ADDI")
        assert graph.attributes["pattern"] == "-----------------000-----0010011"
        assert len(ops_named(graph, "lil.read_rs1")) == 1
        assert len(ops_named(graph, "lil.write_rd")) == 1
        assert len(ops_named(graph, "lil.instr_word")) == 1
        # Sign extension idiom: replicate of the immediate's MSB (Figure 5c).
        assert ops_named(graph, "comb.replicate")
        assert ops_named(graph, "comb.add")
        assert ops_named(graph, "lil.sink")


class TestStateMapping:
    def test_pc_access(self):
        src = simple_isax("PC = (unsigned<32>) (PC + 8);")
        _, graph = lower(src)
        assert len(ops_named(graph, "lil.read_pc")) == 1
        assert len(ops_named(graph, "lil.write_pc")) == 1

    def test_memory_word_load(self):
        src = simple_isax(
            "unsigned<32> a = X[rs1]; X[rd] = MEM[a+3:a];"
        )
        _, graph = lower(src)
        (read,) = ops_named(graph, "lil.read_mem")
        assert read.attr("size_bits") == 32
        assert read.result.width == 32

    def test_memory_byte_store(self):
        src = simple_isax("unsigned<32> a = X[rs1]; MEM[a] = X[rs2][7:0];")
        _, graph = lower(src)
        (write,) = ops_named(graph, "lil.write_mem")
        assert write.attr("size_bits") == 8

    def test_memory_word_store(self):
        src = simple_isax("unsigned<32> a = X[rs1]; MEM[a+3:a] = X[rs2];")
        _, graph = lower(src)
        (write,) = ops_named(graph, "lil.write_mem")
        assert write.attr("size_bits") == 32

    def test_custom_scalar_register(self):
        src = simple_isax("ADDR = (unsigned<32>) (ADDR + 4);",
                          state="register unsigned<32> ADDR;")
        _, graph = lower(src)
        (read,) = ops_named(graph, "lil.read_custreg")
        (write,) = ops_named(graph, "lil.write_custreg")
        assert read.attr("reg") == "ADDR" and not read.attr("has_index")
        assert write.attr("reg") == "ADDR"

    def test_custom_array_register(self):
        src = simple_isax(
            "BUF[rs1[1:0]] = X[rs2];",
            state="register unsigned<32> BUF[4];",
        )
        _, graph = lower(src)
        (write,) = ops_named(graph, "lil.write_custreg")
        assert write.attr("has_index")
        # Index operand has the register's address width (AW = 2).
        assert write.operands[0].width == 2

    def test_rom_internalized(self):
        src = simple_isax(
            "X[rd] = (unsigned<32>) SBOX[X[rs1][1:0]];",
            state="const unsigned<8> SBOX[4] = {9, 8, 7, 6};",
        )
        _, graph = lower(src)
        (rom,) = ops_named(graph, "lil.rom")
        assert rom.attr("values") == [9, 8, 7, 6]
        # No custom-register interface is requested for constant registers.
        assert not ops_named(graph, "lil.read_custreg")

    def test_gpr_read_requires_rs_field(self):
        src = simple_isax("X[rd] = X[5];")
        with pytest.raises(CoreDSLError, match="rs1.*rs2|rs2.*rs1"):
            lower(src)

    def test_gpr_write_requires_rd_field(self):
        src = simple_isax("X[rs1] = 3;")
        with pytest.raises(CoreDSLError, match="rd"):
            lower(src)


class TestReadWriteMerging:
    def test_single_read_per_interface(self):
        """Reading X[rs1] twice produces one RdRS1 (SCAIE-V once-per-instr)."""
        src = simple_isax(
            "X[rd] = (unsigned<32>) ((X[rs1] & X[rs2]) | (X[rs1] ^ X[rs2]));"
        )
        _, graph = lower(src)
        assert len(ops_named(graph, "lil.read_rs1")) == 1
        assert len(ops_named(graph, "lil.read_rs2")) == 1

    def test_sequential_register_semantics(self):
        """A read after a write within one behavior sees the written value
        and does not emit a second interface operation."""
        src = simple_isax(
            "ADDR = X[rs1]; X[rd] = ADDR;",
            state="register unsigned<32> ADDR;",
        )
        _, graph = lower(src)
        # ADDR is never read from the interface: the shadow provides it.
        assert not ops_named(graph, "lil.read_custreg")
        (write,) = ops_named(graph, "lil.write_custreg")
        (wrrd,) = ops_named(graph, "lil.write_rd")
        # Both writes see the same rs1 value.
        assert wrrd.operands[0] is write.operands[0]

    def test_conditional_write_gets_predicate(self):
        src = simple_isax(
            "if (X[rs1] != 0) { ADDR = X[rs2]; }",
            state="register unsigned<32> ADDR;",
        )
        _, graph = lower(src)
        (write,) = ops_named(graph, "lil.write_custreg")
        pred = write.operands[-1]
        assert pred.width == 1
        assert pred.owner is not None and pred.owner.name != "comb.constant"

    def test_if_else_write_merges_to_one_set(self):
        src = simple_isax(
            "if (X[rs1] != 0) { ADDR = 1; } else { ADDR = 2; }",
            state="register unsigned<32> ADDR;",
        )
        _, graph = lower(src)
        assert len(ops_named(graph, "lil.write_custreg")) == 1

    def test_mem_read_after_write_same_address_forwarded(self):
        """Reading the address just written is served from the shadow, so
        only WrMem (not RdMem) is requested."""
        src = simple_isax(
            "unsigned<32> a = X[rs1]; MEM[a+3:a] = X[rs2];"
            "X[rd] = MEM[a+3:a];"
        )
        _, graph = lower(src)
        assert not ops_named(graph, "lil.read_mem")
        assert len(ops_named(graph, "lil.write_mem")) == 1

    def test_mem_read_after_write_other_address_rejected(self):
        src = simple_isax(
            "unsigned<32> a = X[rs1]; MEM[a+3:a] = X[rs2];"
            "unsigned<32> b = (unsigned<32>) (a + 8);"
            "X[rd] = MEM[b+3:b];"
        )
        with pytest.raises(CoreDSLError, match="read from 'MEM' after"):
            lower(src)


class TestControlFlow:
    def test_loop_unrolled(self):
        src = simple_isax(
            "unsigned<32> acc = 0;"
            "for (int i = 0; i < 4; i += 1) {"
            "  acc = (unsigned<32>) (acc + X[rs1]);"
            "}"
            "X[rd] = acc;"
        )
        _, graph = lower(src)
        adds = ops_named(graph, "comb.add")
        # Iteration 1 adds the constant 0 and is folded away, 3 adds remain.
        assert len(adds) == 3

    def test_non_constant_bounds_rejected(self):
        src = simple_isax(
            "for (int i = 0; (unsigned<32>) i < X[rs1]; i += 1) { }"
        )
        with pytest.raises(CoreDSLError, match="trip count"):
            lower(src)

    def test_constant_if_folds_away(self):
        src = simple_isax(
            "unsigned<4> v = 0;"
            "if (1 == 1) { v = 1; } else { v = 2; }"
            "X[rd] = (unsigned<32>) v;"
        )
        _, graph = lower(src)
        assert not ops_named(graph, "comb.mux")

    def test_local_merge_through_if(self):
        src = simple_isax(
            "unsigned<32> v = 0;"
            "if (X[rs1][0]) { v = X[rs2]; }"
            "X[rd] = v;"
        )
        _, graph = lower(src)
        assert ops_named(graph, "comb.mux")

    def test_nested_if_predicates_combine(self):
        src = simple_isax(
            "if (X[rs1][0]) { if (X[rs1][1]) { ADDR = 1; } }",
            state="register unsigned<32> ADDR;",
        )
        _, graph = lower(src)
        assert ops_named(graph, "comb.and")


class TestFunctionsAndSpawn:
    ROTR = """
    unsigned<32> rotr(unsigned<32> x, unsigned<5> r) {
      return (unsigned<32>) ((x >> r) | (x << (unsigned<6>) (32 - r)));
    }
    """

    def test_function_inlined(self):
        src = f"""
        import "RV32I.core_desc"
        InstructionSet T extends RV32I {{
          functions {{ {self.ROTR} }}
          instructions {{
            t {{
              encoding: 10'd0 :: rs2[4:0] :: rs1[4:0] :: rd[4:0] :: 7'b0001011;
              behavior: {{ X[rd] = rotr(X[rs1], 7); }}
            }}
          }}
        }}
        """
        _, graph = lower(src)
        # The constant-amount shifts of the rotation canonicalize into pure
        # wiring (extract + concat) and an OR combining the halves.
        assert ops_named(graph, "comb.or")
        assert ops_named(graph, "comb.extract")
        assert ops_named(graph, "comb.concat")

    def test_spawn_marks_interface_ops(self):
        src = simple_isax(
            "unsigned<32> v = X[rs1]; spawn { X[rd] = v; }"
        )
        _, graph = lower(src)
        (write,) = ops_named(graph, "lil.write_rd")
        assert write.attr("spawn") is True
        (read,) = ops_named(graph, "lil.read_rs1")
        assert not read.attr("spawn")

    def test_statements_after_spawn_rejected(self):
        src = simple_isax(
            "unsigned<32> v = X[rs1]; spawn { X[rd] = v; } v = 0;"
        )
        with pytest.raises(CoreDSLError, match="follow"):
            lower(src)


class TestAlwaysLowering:
    ZOL = '''
    import "RV32I.core_desc"
    InstructionSet zol extends RV32I {
      architectural_state { register unsigned<32> START_PC, END_PC, COUNT; }
      always {
        zol {
          if (COUNT != 0 && END_PC == PC) {
            PC = START_PC;
            --COUNT;
          }
        }
      }
    }
    '''

    def test_zol_always_block(self):
        isa = elaborate(self.ZOL)
        lowered = lower_isa(isa)
        graph = convert_to_lil(isa, lowered.always_blocks["zol"])
        assert graph.attributes["kind"] == "always"
        assert len(ops_named(graph, "lil.read_pc")) == 1
        assert len(ops_named(graph, "lil.write_pc")) == 1
        reads = {op.attr("reg") for op in ops_named(graph, "lil.read_custreg")}
        assert reads == {"START_PC", "END_PC", "COUNT"}
        writes = {op.attr("reg") for op in ops_named(graph, "lil.write_custreg")}
        assert writes == {"COUNT"}


class TestFieldExtraction:
    def test_split_immediate_reassembled(self):
        src = """
        import "RV32I.core_desc"
        InstructionSet T extends RV32I {
          instructions {
            s {
              encoding: imm[11:5] :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: imm[4:0] :: 7'b0100011;
              behavior: {
                unsigned<32> a = (unsigned<32>) (X[rs1] + imm);
                MEM[a+3:a] = X[rs2];
              }
            }
          }
        }
        """
        _, graph = lower(src, "s")
        # The split imm field requires two extracts concatenated.
        extracts = ops_named(graph, "comb.extract")
        lows = sorted(op.attr("low") for op in extracts)
        assert 7 in lows and 25 in lows
