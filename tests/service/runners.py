"""Module-level task runners for executor tests (must be importable by
worker processes, hence not defined inside test functions)."""

import pathlib
import time


def echo(payload: dict) -> dict:
    return {"echo": payload["value"]}


def sleepy(payload: dict) -> dict:
    time.sleep(payload["seconds"])
    return {"slept": payload["seconds"]}


def boom(payload: dict) -> dict:
    raise RuntimeError(payload.get("message", "boom"))


def flaky(payload: dict) -> dict:
    """Fails until the attempt counter file reaches ``fail_times``.

    The counter lives on disk so the behavior is shared between the parent
    process and pool workers.
    """
    counter = pathlib.Path(payload["counter_path"])
    seen = int(counter.read_text()) if counter.exists() else 0
    counter.write_text(str(seen + 1))
    if seen < payload["fail_times"]:
        raise RuntimeError(f"transient failure #{seen + 1}")
    return {"succeeded_on_attempt": seen + 1}
