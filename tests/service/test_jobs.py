"""Job model: grids, manifests, payload round-trips."""

import pytest

from repro.isaxes import ALL_ISAXES
from repro.service.jobs import CompileJob, job_grid, load_manifest
from repro.utils.diagnostics import CoreDSLError


class TestJobGrid:
    def test_cross_product_is_deterministic(self):
        jobs = job_grid(["dotprod", "zol"], ["VexRiscv", "ORCA"])
        assert [j.job_id for j in jobs] == [
            "dotprod/VexRiscv", "dotprod/ORCA",
            "zol/VexRiscv", "zol/ORCA",
        ]

    def test_cycle_scales_multiply_core_cycle_time(self):
        jobs = job_grid(["zol"], ["VexRiscv"], cycle_scales=(None, 2.0))
        assert jobs[0].cycle_time_ns is None
        native = jobs[0].resolve_datasheet().cycle_time_ns
        assert jobs[1].cycle_time_ns == pytest.approx(2.0 * native)

    def test_unknown_isax_rejected(self):
        with pytest.raises(CoreDSLError, match="unknown ISAX"):
            job_grid(["not_an_isax"], ["VexRiscv"])

    def test_unknown_core_rejected(self):
        with pytest.raises(KeyError, match="unknown core"):
            job_grid(["zol"], ["Rocket"])

    def test_custom_sources_override_builtins(self):
        jobs = job_grid(["mine"], ["VexRiscv"],
                        sources={"mine": ALL_ISAXES["zol"]})
        assert jobs[0].source == ALL_ISAXES["zol"]


class TestPayloadRoundTrip:
    def test_round_trip_preserves_identity(self):
        job = CompileJob(isax="zol", source=ALL_ISAXES["zol"],
                         core="ORCA", engine="asap", cycle_time_ns=3.5)
        again = CompileJob.from_payload(job.to_payload())
        assert again == job
        assert again.cache_key() == job.cache_key()


class TestManifest:
    def test_grid_style(self):
        jobs = load_manifest(
            "isaxes: [dotprod, zol]\n"
            "cores: [VexRiscv, Piccolo]\n"
        )
        assert len(jobs) == 4
        assert {j.core for j in jobs} == {"VexRiscv", "Piccolo"}

    def test_explicit_jobs_style(self):
        jobs = load_manifest(
            "jobs:\n"
            "  - {isax: zol, core: ORCA}\n"
            "  - {isax: dotprod, core: VexRiscv, cycle_time: 4.0, "
            "engine: asap}\n"
        )
        assert jobs[0].job_id == "zol/ORCA"
        assert jobs[1].cycle_time_ns == pytest.approx(4.0)
        assert jobs[1].engine == "asap"

    def test_grid_and_jobs_combine(self):
        jobs = load_manifest(
            "isaxes: [zol]\n"
            "cores: [VexRiscv]\n"
            "jobs:\n"
            "  - {isax: dotprod, core: ORCA}\n"
        )
        assert [j.job_id for j in jobs] == ["zol/VexRiscv", "dotprod/ORCA"]

    def test_empty_manifest_rejected(self):
        with pytest.raises(CoreDSLError, match="no jobs"):
            load_manifest("comment: nothing here\n")

    def test_grid_missing_cores_rejected(self):
        with pytest.raises(CoreDSLError, match="isaxes.*cores|cores"):
            load_manifest("isaxes: [zol]\n")

    def test_malformed_job_entry_rejected(self):
        with pytest.raises(CoreDSLError, match="'isax' and 'core'"):
            load_manifest("jobs:\n  - {isax: zol}\n")
