"""Executor: determinism, caching, retry, timeout, failure reporting."""

import pytest

from repro.service import ArtifactCache, BatchExecutor, TaskSpec, job_grid
from repro.service.executor import retry_backoff_s
from repro.service.jobs import digest

ECHO = "tests.service.runners:echo"
BOOM = "tests.service.runners:boom"
FLAKY = "tests.service.runners:flaky"
SLEEPY = "tests.service.runners:sleepy"


def _echo_specs(count):
    return [TaskSpec(runner=ECHO, payload={"value": i}, label=f"e{i}")
            for i in range(count)]


class TestOrderingAndParallelism:
    def test_inline_results_in_input_order(self):
        outcomes = BatchExecutor(workers=1).run_specs(_echo_specs(5))
        assert [o.result["echo"] for o in outcomes] == list(range(5))

    def test_pool_results_in_input_order(self):
        outcomes = BatchExecutor(workers=2).run_specs(_echo_specs(6))
        assert [o.result["echo"] for o in outcomes] == list(range(6))
        assert all(o.ok and not o.cached for o in outcomes)

    def test_pool_matches_serial_for_compile_grid(self, tmp_path):
        """>1 workers must produce byte-identical artifacts in the same
        order as a serial run (deterministic fan-out)."""
        jobs = job_grid(["zol", "dotprod"], ["VexRiscv", "Piccolo"])
        serial, _ = BatchExecutor(workers=1).run_compile_jobs(jobs)
        pooled, _ = BatchExecutor(workers=2).run_compile_jobs(jobs)
        assert [o.spec.label for o in serial] \
            == [o.spec.label for o in pooled]
        for left, right in zip(serial, pooled):
            assert left.ok and right.ok
            assert left.result["verilog"] == right.result["verilog"]
            assert left.result["config_yaml"] == right.result["config_yaml"]


class TestCachingPath:
    def test_cache_short_circuits_second_run(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        spec = TaskSpec(runner=ECHO, payload={"value": 7}, key=digest("k7"))
        first = BatchExecutor(workers=1, cache=cache).run_specs([spec])
        assert first[0].ok and not first[0].cached
        second = BatchExecutor(workers=1, cache=cache).run_specs([spec])
        assert second[0].ok and second[0].cached
        assert second[0].result == first[0].result
        assert second[0].attempts == 0

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        spec = TaskSpec(runner=BOOM, payload={}, key=digest("kb"))
        executor = BatchExecutor(workers=1, cache=cache, retries=0)
        (outcome,) = executor.run_specs([spec])
        assert not outcome.ok
        assert len(cache) == 0


class TestRetryAndFailure:
    def test_retry_once_recovers_transient_failure(self, tmp_path):
        counter = tmp_path / "attempts"
        spec = TaskSpec(runner=FLAKY, payload={
            "counter_path": str(counter), "fail_times": 1,
        })
        (outcome,) = BatchExecutor(workers=1, retries=1).run_specs([spec])
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.result["succeeded_on_attempt"] == 2

    def test_exhausted_retries_report_failure(self, tmp_path):
        counter = tmp_path / "attempts"
        spec = TaskSpec(runner=FLAKY, payload={
            "counter_path": str(counter), "fail_times": 5,
        })
        (outcome,) = BatchExecutor(workers=1, retries=1).run_specs([spec])
        assert not outcome.ok
        assert outcome.attempts == 2
        assert "transient failure" in outcome.error

    def test_one_failure_does_not_poison_the_batch(self):
        specs = [
            TaskSpec(runner=ECHO, payload={"value": 1}),
            TaskSpec(runner=BOOM, payload={"message": "job 2 exploded"}),
            TaskSpec(runner=ECHO, payload={"value": 3}),
        ]
        outcomes = BatchExecutor(workers=2, retries=0).run_specs(specs)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "job 2 exploded" in outcomes[1].error

    def test_per_job_timeout(self):
        specs = [
            TaskSpec(runner=SLEEPY, payload={"seconds": 3.0}, label="slow"),
            TaskSpec(runner=ECHO, payload={"value": 9}, label="fast"),
        ]
        executor = BatchExecutor(workers=2, timeout_s=0.5, retries=0)
        outcomes = executor.run_specs(specs)
        assert not outcomes[0].ok
        assert "timed out" in outcomes[0].error
        assert outcomes[1].ok


class TestBackoff:
    """Exponential backoff with deterministic jitter between retry
    rounds (the compile server shares this exact function)."""

    def test_backoff_is_deterministic_per_token_and_attempt(self):
        assert retry_backoff_s("job-a", 1, 0.05) \
            == retry_backoff_s("job-a", 1, 0.05)
        assert retry_backoff_s("job-a", 1, 0.05) \
            != retry_backoff_s("job-b", 1, 0.05)
        assert retry_backoff_s("job-a", 1, 0.05) \
            != retry_backoff_s("job-a", 2, 0.05)

    def test_backoff_grows_exponentially_within_jitter_bounds(self):
        for attempt in range(1, 6):
            raw = 0.1 * 2.0 ** (attempt - 1)
            delay = retry_backoff_s("t", attempt, 0.1, cap_s=1e9)
            # Jitter scales the raw delay into [0.5, 1.0).
            assert raw * 0.5 <= delay < raw

    def test_backoff_respects_cap_and_zero_base(self):
        assert retry_backoff_s("t", 30, 1.0, cap_s=2.0) <= 2.0
        assert retry_backoff_s("t", 1, 0.0) == 0.0
        assert retry_backoff_s("t", 0, 1.0) == 0.0

    def test_retried_job_reports_backoff_seconds(self, tmp_path):
        counter = tmp_path / "attempts"
        spec = TaskSpec(runner=FLAKY, payload={
            "counter_path": str(counter), "fail_times": 1,
        }, key=digest("flaky-backoff"))
        executor = BatchExecutor(workers=1, retries=1,
                                 backoff_base_s=0.001)
        (outcome,) = executor.run_specs([spec])
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.backoff_seconds > 0

    def test_unretried_job_reports_zero_backoff(self):
        (outcome,) = BatchExecutor(workers=1).run_specs(
            [TaskSpec(runner=ECHO, payload={"value": 1})])
        assert outcome.ok
        assert outcome.backoff_seconds == 0.0

    def test_constructor_rejects_negative_backoff(self):
        with pytest.raises(ValueError):
            BatchExecutor(backoff_base_s=-0.1)


class TestValidation:
    def test_bad_runner_reference(self):
        (outcome,) = BatchExecutor(workers=1, retries=0).run_specs(
            [TaskSpec(runner="nonsense", payload={})]
        )
        assert not outcome.ok

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BatchExecutor(workers=-1)
        with pytest.raises(ValueError):
            BatchExecutor(retries=-1)
