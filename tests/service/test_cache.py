"""Artifact cache: content addressing, accounting, eviction, atomicity."""

import json

import pytest

from repro.isaxes import ALL_ISAXES
from repro.scaiev.cores import core_datasheet
from repro.service.cache import ArtifactCache
from repro.service.jobs import CompileJob, digest


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestStore:
    def test_miss_then_hit(self, cache):
        key = digest("some", "content")
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_len_and_contains(self, cache):
        key = digest("x")
        assert key not in cache
        assert len(cache) == 0
        cache.put(key, {})
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_record_counts_as_miss_and_is_dropped(self, cache):
        key = digest("y")
        cache.put(key, {"v": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert not cache.path_for(key).exists()

    def test_put_is_atomic_no_temp_residue(self, cache):
        key = digest("z")
        cache.put(key, {"v": 1})
        leftovers = [p for p in cache.root.rglob("*.tmp")]
        assert leftovers == []

    def test_record_on_disk_is_json(self, cache):
        key = digest("j")
        cache.put(key, {"nested": {"a": [1, 2]}})
        on_disk = json.loads(cache.path_for(key).read_text())
        assert on_disk == {"nested": {"a": [1, 2]}}


class TestEviction:
    def test_bounded_cache_evicts_oldest(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_entries=2)
        keys = [digest(f"k{i}") for i in range(3)]
        for index, key in enumerate(keys):
            path = cache.put(key, {"i": index})
            # Distinct mtimes even on coarse-grained filesystems.
            import os
            os.utime(path, (index, index))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(digest(f"c{i}"), {})
        assert cache.clear() == 3
        assert len(cache) == 0


class TestKeyComposition:
    """The cache key must change with *any* input that affects the
    artifact: source text, datasheet, scheduler options."""

    def _job(self, **overrides):
        base = dict(isax="zol", source=ALL_ISAXES["zol"], core="VexRiscv")
        base.update(overrides)
        return CompileJob(**base)

    def test_same_inputs_same_key(self):
        assert self._job().cache_key() == self._job().cache_key()

    def test_source_change_invalidates(self):
        changed = self._job(source=ALL_ISAXES["zol"] + "\n// edited")
        assert changed.cache_key() != self._job().cache_key()

    def test_core_change_invalidates(self):
        assert self._job(core="ORCA").cache_key() \
            != self._job().cache_key()

    def test_datasheet_change_invalidates(self):
        """Same core name but an edited datasheet -> different key."""
        sheet = core_datasheet("VexRiscv")
        sheet.base_freq_mhz = 500.0
        inline = self._job(core="", datasheet_yaml=sheet.to_yaml())
        assert inline.cache_key() != self._job().cache_key()

    def test_scheduler_options_invalidate(self):
        assert self._job(engine="asap").cache_key() \
            != self._job().cache_key()
        assert self._job(cycle_time_ns=5.0).cache_key() \
            != self._job().cache_key()

    def test_digest_is_order_and_boundary_sensitive(self):
        assert digest("ab", "c") != digest("a", "bc")
        assert digest("a", "b") != digest("b", "a")
