"""Artifact cache: content addressing, accounting, eviction, atomicity."""

import json
import os

import pytest

from repro.isaxes import ALL_ISAXES
from repro.scaiev.cores import core_datasheet
from repro.service.cache import ArtifactCache, ShardedArtifactCache
from repro.service.jobs import CompileJob, digest


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestStore:
    def test_miss_then_hit(self, cache):
        key = digest("some", "content")
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_len_and_contains(self, cache):
        key = digest("x")
        assert key not in cache
        assert len(cache) == 0
        cache.put(key, {})
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_record_counts_as_miss_and_is_dropped(self, cache):
        key = digest("y")
        cache.put(key, {"v": 1})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert not cache.path_for(key).exists()

    def test_put_is_atomic_no_temp_residue(self, cache):
        key = digest("z")
        cache.put(key, {"v": 1})
        leftovers = [p for p in cache.root.rglob("*.tmp")]
        assert leftovers == []

    def test_record_on_disk_is_json(self, cache):
        key = digest("j")
        cache.put(key, {"nested": {"a": [1, 2]}})
        on_disk = json.loads(cache.path_for(key).read_text())
        assert on_disk == {"nested": {"a": [1, 2]}}

    def test_unsafe_keys_never_reach_the_filesystem(self, cache, tmp_path):
        """Keys are digests; anything that could name a path component
        (separators, dot segments) is refused before layout math."""
        for hostile in (
            "00abcdef/../../../tmp/evil",
            "../../escape",
            "..", "a/b", "a\\b", ".hidden-key", "key.json",
        ):
            with pytest.raises(ValueError):
                cache.path_for(hostile)
            with pytest.raises(ValueError):
                cache.put(hostile, {"v": 1})
            with pytest.raises(ValueError):
                cache.get(hostile)
        assert not (tmp_path / "tmp" / "evil").exists()
        assert len(cache) == 0


class TestEviction:
    def test_bounded_cache_evicts_oldest(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_entries=2)
        keys = [digest(f"k{i}") for i in range(3)]
        for index, key in enumerate(keys):
            path = cache.put(key, {"i": index})
            # Distinct mtimes even on coarse-grained filesystems.
            import os
            os.utime(path, (index, index))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert keys[0] not in cache
        assert keys[1] in cache and keys[2] in cache

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(digest(f"c{i}"), {})
        assert cache.clear() == 3
        assert len(cache) == 0


class TestLRUTouchAndTieBreak:
    def test_get_refreshes_recency_against_eviction(self, tmp_path):
        """A bounded cache must keep what is *used*, not what is merely
        recent-by-put: getting the oldest entry saves it."""
        cache = ArtifactCache(tmp_path, max_entries=2)
        first, second, third = (digest(f"lru{i}") for i in range(3))
        os.utime(cache.put(first, {"i": 0}), (100, 100))
        os.utime(cache.put(second, {"i": 1}), (200, 200))
        assert cache.get(first) == {"i": 0}      # touch: now newest
        cache.put(third, {"i": 2})
        assert first in cache
        assert second not in cache               # LRU victim
        assert third in cache

    def test_equal_mtime_eviction_is_deterministic_by_name(self, tmp_path):
        """Coarse filesystem timestamps collide; the victim must still be
        deterministic (mtime, then path name)."""
        for _ in range(2):
            cache = ArtifactCache(tmp_path / "c", max_entries=2)
            cache.clear()
            first, second = digest("tie0"), digest("tie1")
            os.utime(cache.put(first, {}), (100, 100))
            os.utime(cache.put(second, {}), (100, 100))
            expected_victim = min(
                (cache.path_for(first).name, first),
                (cache.path_for(second).name, second))[1]
            survivor = second if expected_victim == first else first
            cache.put(digest("tie2"), {})
            assert expected_victim not in cache
            assert survivor in cache


class TestShardedCache:
    def test_routing_is_deterministic_digest_prefix(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=4)
        for key in (digest(f"route{i}") for i in range(16)):
            shard = cache.shard_for(key)
            assert shard is cache.shards[int(key[:8], 16) % 4]
            assert cache.shard_for(key) is shard   # stable

    def test_short_key_is_rejected(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=2)
        with pytest.raises(ValueError):
            cache.shard_for("abc")

    def test_roundtrip_len_contains_clear(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=4)
        keys = [digest(f"s{i}") for i in range(10)]
        for index, key in enumerate(keys):
            cache.put(key, {"i": index})
        assert len(cache) == 10
        assert all(key in cache for key in keys)
        assert cache.get(keys[3]) == {"i": 3}
        assert cache.get(digest("absent")) is None
        assert cache.clear() == 10
        assert len(cache) == 0

    def test_stats_aggregate_across_shards(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=4)
        keys = [digest(f"agg{i}") for i in range(6)]
        for key in keys:
            cache.put(key, {})
        for key in keys:
            assert cache.get(key) == {}
        cache.get(digest("nope"))
        stats = cache.stats
        assert stats.puts == 6
        assert stats.hits == 6
        assert stats.misses == 1
        doc = cache.to_dict()
        assert doc["shards"] == 4
        assert doc["entries"] == 6
        assert len(doc["by_shard"]) == 4
        assert sum(s["puts"] for s in doc["by_shard"]) == 6

    def test_per_shard_eviction_budget(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=2,
                                     per_shard_entries=1)
        # Find two keys that land in the same shard.
        keys, index = [], 0
        while len(keys) < 2:
            key = digest(f"collide{index}")
            index += 1
            if cache.shard_for(key) is cache.shards[0]:
                keys.append(key)
        os.utime(cache.put(keys[0], {"i": 0}), (100, 100))
        cache.put(keys[1], {"i": 1})
        assert len(cache.shards[0]) == 1
        assert keys[0] not in cache
        assert keys[1] in cache
        assert cache.stats.evictions == 1


class TestKeyComposition:
    """The cache key must change with *any* input that affects the
    artifact: source text, datasheet, scheduler options."""

    def _job(self, **overrides):
        base = dict(isax="zol", source=ALL_ISAXES["zol"], core="VexRiscv")
        base.update(overrides)
        return CompileJob(**base)

    def test_same_inputs_same_key(self):
        assert self._job().cache_key() == self._job().cache_key()

    def test_source_change_invalidates(self):
        changed = self._job(source=ALL_ISAXES["zol"] + "\n// edited")
        assert changed.cache_key() != self._job().cache_key()

    def test_core_change_invalidates(self):
        assert self._job(core="ORCA").cache_key() \
            != self._job().cache_key()

    def test_datasheet_change_invalidates(self):
        """Same core name but an edited datasheet -> different key."""
        sheet = core_datasheet("VexRiscv")
        sheet.base_freq_mhz = 500.0
        inline = self._job(core="", datasheet_yaml=sheet.to_yaml())
        assert inline.cache_key() != self._job().cache_key()

    def test_scheduler_options_invalidate(self):
        assert self._job(engine="asap").cache_key() \
            != self._job().cache_key()
        assert self._job(cycle_time_ns=5.0).cache_key() \
            != self._job().cache_key()

    def test_digest_is_order_and_boundary_sensitive(self):
        assert digest("ab", "c") != digest("a", "bc")
        assert digest("a", "b") != digest("b", "a")
