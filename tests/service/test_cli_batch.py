"""CLI `batch` smoke tests: grid run, warm cache, manifest, metrics JSON."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def batch_env(tmp_path):
    return {
        "cache": str(tmp_path / "cache"),
        "out": str(tmp_path / "out"),
        "tmp": tmp_path,
    }


def _run_small_grid(env, workers="2"):
    return main([
        "batch",
        "--isax", "zol", "--isax", "dotprod",
        "--core", "VexRiscv", "--core", "Piccolo",
        "--workers", workers,
        "--cache-dir", env["cache"],
        "-o", env["out"],
    ])


class TestBatchSmoke:
    def test_cold_run_compiles_grid(self, batch_env, capsys):
        assert _run_small_grid(batch_env) == 0
        out = capsys.readouterr().out
        assert "4/4 jobs ok" in out
        assert "0 from cache" in out
        for core in ("VexRiscv", "Piccolo"):
            for isax in ("zol", "dotprod"):
                base = batch_env["tmp"] / "out" / core / isax
                assert base.with_suffix(".sv").is_file()
                assert base.with_suffix(".scaiev.yaml").is_file()

    def test_warm_run_hits_cache_for_all_jobs(self, batch_env, capsys):
        assert _run_small_grid(batch_env) == 0
        capsys.readouterr()
        assert _run_small_grid(batch_env) == 0
        out = capsys.readouterr().out
        assert "4 from cache" in out
        assert "4 hits / 0 misses (100%)" in out

    def test_metrics_json_has_per_phase_timing_for_every_job(
            self, batch_env, capsys):
        assert _run_small_grid(batch_env, workers="1") == 0
        doc = json.loads(
            (batch_env["tmp"] / "out" / "batch_metrics.json").read_text()
        )
        assert doc["jobs_total"] == 4
        assert doc["jobs_ok"] == 4
        for job in doc["jobs"]:
            for phase in ("parse", "lower", "schedule", "hwgen", "emit"):
                assert phase in job["phases"]
            assert job["ilp"], job["job_id"]
            entry = job["ilp"][0]
            assert entry["engine"] in ("fastpath", "milp", "asap")
            assert entry["components"] >= 1
            assert entry["schedule_cache_hits"] + \
                entry["schedule_cache_misses"] >= 1
        sched = doc["scheduler"]
        assert sched["graphs"] >= 4
        assert sched["engines"].get("fastpath", 0) >= 4
        assert 0.0 <= sched["schedule_cache_hit_rate"] <= 1.0

    def test_manifest_run(self, batch_env, capsys):
        manifest = batch_env["tmp"] / "grid.yaml"
        manifest.write_text(
            "jobs:\n"
            "  - {isax: zol, core: VexRiscv}\n"
            "  - {isax: zol, core: ORCA, engine: asap}\n",
            encoding="utf-8",
        )
        rc = main(["batch", "--manifest", str(manifest),
                   "--workers", "1",
                   "--cache-dir", batch_env["cache"],
                   "-o", batch_env["out"]])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2/2 jobs ok" in out

    def test_missing_manifest_is_one_line_error(self, batch_env, capsys):
        rc = main(["batch", "--manifest", str(batch_env["tmp"] / "no.yaml"),
                   "--cache-dir", batch_env["cache"]])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not found" in err


class TestCompileHardening:
    def test_unknown_core_is_one_line_error(self, tmp_path, capsys):
        from repro.isaxes import ZOL

        path = tmp_path / "zol.core_desc"
        path.write_text(ZOL, encoding="utf-8")
        rc = main(["compile", str(path), "--core", "Rocket",
                   "-o", str(tmp_path)])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "unknown core" in err
        assert "Traceback" not in err

    def test_missing_file_is_one_line_error(self, tmp_path, capsys):
        rc = main(["compile", str(tmp_path / "ghost.core_desc")])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not found" in err

    def test_compile_for_experimental_core(self, tmp_path, capsys):
        from repro.isaxes import ZOL

        path = tmp_path / "zol.core_desc"
        path.write_text(ZOL, encoding="utf-8")
        rc = main(["compile", str(path), "--core", "CVA5",
                   "-o", str(tmp_path)])
        assert rc == 0
        assert "compiled for CVA5" in capsys.readouterr().out
