"""Integration: optimizer config through compile_isax, caches, service,
metrics, and the HTTP surface."""

import asyncio

import pytest

from repro.hls.longnail import compile_isax
from repro.isaxes import isax_source
from repro.opt.pipeline import OptOptions
from repro.scheduling.cache import schedule_fingerprint
from repro.scheduling.problem import LongnailProblem
from repro.server import CompileServer, CompileServerApp, CompileServerClient
from repro.server.client import CompileServerError
from repro.service.executor import run_compile_payload
from repro.service.jobs import CACHE_FORMAT_VERSION, CompileJob, job_grid
from repro.service.metrics import BatchMetrics, JobMetrics


def run_http(coro_fn, **core_kwargs):
    core_kwargs.setdefault("backend", "thread")

    async def _body():
        core = CompileServer(**core_kwargs)
        app = CompileServerApp(core)
        host, port = await app.start("127.0.0.1", 0)
        client = CompileServerClient(f"http://{host}:{port}")
        try:
            await coro_fn(client, core)
        finally:
            await app.close(drain=False)

    asyncio.run(_body())


class TestCacheKeys:
    def test_cache_format_version_bumped(self):
        # "2" introduced the optimizer fingerprint in the key material.
        assert CACHE_FORMAT_VERSION == "2"

    def test_opt_level_separates_cache_keys(self):
        keys = {
            CompileJob(isax="autoinc", source=isax_source("autoinc"),
                       core="VexRiscv", opt_level=level).cache_key()
            for level in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_pass_overrides_separate_cache_keys(self):
        base = CompileJob(isax="autoinc", source=isax_source("autoinc"),
                          core="VexRiscv", opt_level=2)
        tuned = CompileJob(isax="autoinc", source=isax_source("autoinc"),
                           core="VexRiscv", opt_level=2,
                           opt_passes=("-share",))
        assert base.cache_key() != tuned.cache_key()

    def test_payload_roundtrip(self):
        job = CompileJob(isax="sbox", source=isax_source("sbox"), core="ORCA",
                         opt_level=2, opt_passes=("-share", "strength"))
        clone = CompileJob.from_payload(job.to_payload())
        assert clone == job
        assert clone.opt_options().pipeline() == job.opt_options().pipeline()

    def test_job_grid_propagates_opt_config(self):
        jobs = job_grid(["autoinc"], ["VexRiscv", "ORCA"], opt_level=1,
                        opt_passes=("strength",))
        assert len(jobs) == 2
        for job in jobs:
            assert job.opt_level == 1
            assert "strength" in job.opt_options().pipeline()

    def test_job_grid_rejects_bad_passes(self):
        with pytest.raises(ValueError):
            job_grid(["autoinc"], ["VexRiscv"], opt_passes=("inliner",))


class TestScheduleFingerprintSalt:
    def test_salt_changes_fingerprint(self):
        artifact = compile_isax(isax_source("autoinc"), "VexRiscv",
                                schedule_cache=False)
        problem = next(iter(artifact.functionalities.values())) \
            .schedule.problem
        assert isinstance(problem, LongnailProblem)
        plain = schedule_fingerprint(problem)
        salted = schedule_fingerprint(problem, salt="O2")
        other = schedule_fingerprint(problem, salt="O1")
        assert len({plain, salted, other}) == 3
        assert schedule_fingerprint(problem, salt="O2") == salted


class TestCompileIsaxOpt:
    def test_o2_shrinks_and_never_slows(self):
        baseline = compile_isax(isax_source("dotprod"), "VexRiscv",
                                schedule_cache=False)
        optimized = compile_isax(isax_source("dotprod"), "VexRiscv",
                                 schedule_cache=False, opt=2)
        assert optimized.optimizer is not None
        report = optimized.optimizer
        assert report.nodes_after < report.nodes_before
        for name, fn in optimized.functionalities.items():
            fn.graph.verify()
            assert fn.schedule.makespan <= \
                baseline.functionalities[name].schedule.makespan

    def test_o0_has_no_report(self):
        artifact = compile_isax(isax_source("autoinc"), "VexRiscv",
                                schedule_cache=False)
        assert artifact.optimizer is None

    def test_opt_accepts_bare_int_and_options(self):
        via_int = compile_isax(isax_source("autoinc"), "VexRiscv",
                               schedule_cache=False, opt=1)
        via_options = compile_isax(isax_source("autoinc"), "VexRiscv",
                                   schedule_cache=False,
                                   opt=OptOptions(level=1))
        a, b = via_int.optimizer.to_dict(), via_options.optimizer.to_dict()
        for timed in (a, b):
            timed.pop("seconds")
            for stats in timed["passes"].values():
                stats.pop("seconds")
        assert a == b


class TestServiceMetrics:
    def test_run_compile_payload_reports_optimizer(self):
        record = run_compile_payload(
            CompileJob(isax="autoinc", source=isax_source("autoinc"),
                       core="VexRiscv", opt_level=2).to_payload())
        assert record["optimizer"]
        assert record["optimizer"]["node_reduction_pct"] > 0

    def test_o0_payload_reports_empty_optimizer(self):
        record = run_compile_payload(
            CompileJob(isax="autoinc", source=isax_source("autoinc"),
                       core="VexRiscv").to_payload())
        assert record["optimizer"] == {}

    def test_batch_metrics_aggregates_optimizer(self):
        metrics = BatchMetrics()
        metrics.jobs.append(JobMetrics(
            job_id="a/VexRiscv", isax="a", core="VexRiscv", status="ok",
            cached=False, attempts=1, seconds=0.1, phases={}, ilp=[],
            optimizer={"graphs": 2, "nodes_before": 100, "nodes_after": 80,
                       "ops_removed": 15, "ops_rewritten": 5,
                       "seconds": 0.01,
                       "passes": {"cse": {"runs": 2, "ops_removed": 10,
                                          "ops_rewritten": 0,
                                          "seconds": 0.004}}}))
        metrics.jobs.append(JobMetrics(
            job_id="b/VexRiscv", isax="b", core="VexRiscv", status="ok",
            cached=False, attempts=1, seconds=0.1, phases={}, ilp=[],
            optimizer={"graphs": 1, "nodes_before": 50, "nodes_after": 45,
                       "ops_removed": 5, "ops_rewritten": 0,
                       "seconds": 0.005,
                       "passes": {"cse": {"runs": 1, "ops_removed": 5,
                                          "ops_rewritten": 0,
                                          "seconds": 0.002}}}))
        totals = metrics.optimizer_totals()
        assert totals["jobs"] == 2
        assert totals["graphs"] == 3
        assert totals["nodes_before"] == 150
        assert totals["nodes_after"] == 125
        assert totals["node_reduction_pct"] == pytest.approx(16.67, abs=0.01)
        assert totals["passes"]["cse"]["runs"] == 3
        assert "optimizer" in metrics.to_dict()

    def test_optimizer_totals_empty_without_reports(self):
        metrics = BatchMetrics()
        metrics.jobs.append(JobMetrics(
            job_id="a/VexRiscv", isax="a", core="VexRiscv", status="ok",
            cached=False, attempts=1, seconds=0.1, phases={}, ilp=[]))
        totals = metrics.optimizer_totals()
        assert totals["jobs"] == 0


class TestHttpOptSurface:
    def test_compile_with_opt_level(self):
        async def body(client, core):
            job = await client.compile(isax="autoinc", core="VexRiscv",
                                       opt_level=2, wait=True)
            assert job["state"] == "ok"
            metrics = await client.metrics()
            totals = metrics["optimizer"]
            assert totals["jobs"] == 1
            assert totals["node_reduction_pct"] > 0

        run_http(body, workers=1)

    def test_opt_level_separates_server_cache(self):
        async def body(client, core):
            cold = await client.compile(isax="autoinc", core="VexRiscv",
                                        wait=True)
            assert cold["cached"] is None
            tuned = await client.compile(isax="autoinc", core="VexRiscv",
                                         opt_level=2, wait=True)
            assert tuned["cached"] is None  # distinct key, no false hit
            warm = await client.compile(isax="autoinc", core="VexRiscv",
                                        opt_level=2, wait=True)
            assert warm["cached"] == "memory"

        run_http(body, workers=1)

    @pytest.mark.parametrize("bad_level", (3, -1, True, "2"))
    def test_bad_opt_level_is_400(self, bad_level):
        async def body(client, core):
            with pytest.raises(CompileServerError) as err:
                await client._request("POST", "/v1/compile", {
                    "isax": "autoinc", "core": "VexRiscv",
                    "opt_level": bad_level, "wait": True,
                })
            assert err.value.status == 400

        run_http(body, workers=1)

    @pytest.mark.parametrize("bad_passes", ("cse", ["inliner"], [1]))
    def test_bad_opt_passes_is_400(self, bad_passes):
        async def body(client, core):
            with pytest.raises(CompileServerError) as err:
                await client._request("POST", "/v1/compile", {
                    "isax": "autoinc", "core": "VexRiscv",
                    "opt_passes": bad_passes, "wait": True,
                })
            assert err.value.status == 400

        run_http(body, workers=1)
