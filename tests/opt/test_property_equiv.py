"""Property tests: every optimizer pass preserves graph semantics.

A seeded generator builds random well-formed CDFGs over the comb dialect
with ``lil`` interface reads as free inputs and a ``lil.write_rd`` as the
observed output.  A reference interpreter (``comb.evaluate`` keyed by the
interface ops, which no pass may touch) evaluates the graph on random
stimulus before and after optimization; the results must be identical for
every pass individually and for the full -O1/-O2 pipelines.

A second property drives whole ISAXes end-to-end: fuzz-generated CoreDSL
programs compiled at -O0 and -O2 must produce byte-identical architectural
traces (the same check the ``optequiv`` fuzz oracle performs).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.dialects  # noqa: F401
from repro.dialects import comb
from repro.ir.builder import Builder
from repro.ir.core import Graph
from repro.opt.passes import (
    canonicalize_pass,
    cse_pass,
    dce_pass,
    propagate_pass,
    share_pass,
    strength_pass,
)
from repro.opt.pipeline import OptOptions, PassManager

_INPUT_OPS = ("lil.read_rs1", "lil.read_rs2", "lil.instr_word")

_BINARY = ("comb.add", "comb.sub", "comb.mul", "comb.and", "comb.or",
           "comb.xor", "comb.shl", "comb.shru", "comb.shrs",
           "comb.divu", "comb.modu")

_PREDICATES = ("eq", "ne", "ult", "ule", "ugt", "uge",
               "slt", "sle", "sgt", "sge")


def build_random_graph(seed):
    """Random single-output CDFG; returns (graph, input ops, output op)."""
    rng = random.Random(seed)
    graph = Graph(f"fuzz{seed}")
    builder = Builder.at(graph)
    inputs = [builder.create(name, [], [(32, None)])
              for name in _INPUT_OPS[:rng.randint(2, 3)]]
    pool = {32: [op.result for op in inputs], 1: []}
    for _ in range(rng.randint(2, 4)):
        width = rng.choice((1, 32))
        pool.setdefault(width, []).append(
            builder.constant(rng.getrandbits(width), width))

    def pick(width):
        return rng.choice(pool[width])

    for _ in range(rng.randint(4, 18)):
        choice = rng.random()
        if choice < 0.45:
            name = rng.choice(_BINARY)
            op = builder.create(name, [pick(32), pick(32)], [(32, None)])
            pool[32].append(op.result)
        elif choice < 0.55:
            op = builder.create("comb.icmp", [pick(32), pick(32)],
                                [(1, None)],
                                {"predicate": rng.choice(_PREDICATES)})
            pool[1].append(op.result)
        elif choice < 0.65 and pool[1]:
            op = builder.create("comb.mux", [pick(1), pick(32), pick(32)],
                                [(32, None)])
            pool[32].append(op.result)
        elif choice < 0.75:
            op = builder.create("comb.not", [pick(32)], [(32, None)])
            pool[32].append(op.result)
        elif choice < 0.85:
            low = rng.randint(0, 24)
            width = rng.randint(1, 32 - low)
            op = builder.create("comb.extract", [pick(32)], [(width, None)],
                                {"low": low})
            if width in (1, 32):
                pool[width].append(op.result)
        else:
            lo = builder.create("comb.extract", [pick(32)], [(16, None)],
                                {"low": rng.randint(0, 16)})
            hi = builder.create("comb.extract", [pick(32)], [(16, None)],
                                {"low": rng.randint(0, 16)})
            op = builder.create("comb.concat", [hi.result, lo.result],
                                [(32, None)])
            pool[32].append(op.result)

    value = pool[32][-1]
    pred = pick(1) if pool[1] and rng.random() < 0.5 \
        else builder.constant(1, 1)
    output = builder.create("lil.write_rd", [value, pred], [])
    graph.verify()
    return graph, inputs, output


def evaluate_graph(graph, input_values, output):
    """Reference interpretation: interface reads from ``input_values``
    (keyed by op object), everything else via ``comb.evaluate``."""
    env = {}
    for op in graph.topological_order():
        if op in input_values:
            env[op.result] = input_values[op]
        elif op.name.startswith("comb."):
            operands = [env[v] for v in op.operands]
            env[op.result] = comb.evaluate(op, operands)
    return tuple(env[v] for v in output.operands)


def stimulus(inputs, seed, trials=4):
    rng = random.Random(seed ^ 0x5EED)
    return [{op: rng.getrandbits(32) for op in inputs}
            for _ in range(trials)]


PASSES = {
    "canonicalize": canonicalize_pass,
    "propagate": propagate_pass,
    "cse": cse_pass,
    "strength": strength_pass,
    "share": share_pass,
    "dce": dce_pass,
}


@pytest.mark.parametrize("pass_name", sorted(PASSES))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1))
def test_single_pass_preserves_semantics(pass_name, seed):
    graph, inputs, output = build_random_graph(seed)
    vectors = stimulus(inputs, seed)
    before = [evaluate_graph(graph, v, output) for v in vectors]
    PASSES[pass_name](graph)
    graph.verify()
    after = [evaluate_graph(graph, v, output) for v in vectors]
    assert before == after


@pytest.mark.parametrize("level", (1, 2))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1))
def test_pipeline_preserves_semantics(level, seed):
    graph, inputs, output = build_random_graph(seed)
    vectors = stimulus(inputs, seed)
    before = [evaluate_graph(graph, v, output) for v in vectors]
    manager = PassManager(OptOptions(level=level))
    manager.run(graph)
    graph.verify()
    after = [evaluate_graph(graph, v, output) for v in vectors]
    assert before == after


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**32 - 1))
def test_pipeline_never_grows_graph_much(seed):
    """O2 must not balloon the graph: a small additive slack covers the
    wiring ops strength reduction introduces."""
    graph, _inputs, _output = build_random_graph(seed)
    before = len(graph.operations)
    PassManager(OptOptions(level=2)).run(graph)
    assert len(graph.operations) <= before + 4


@pytest.mark.parametrize("seed", range(5))
def test_fuzz_program_o0_vs_o2_trace_identical(seed):
    """End-to-end: fuzz-generated ISAXes keep byte-identical architectural
    traces across -O0/-O2 (the optequiv oracle's check, inline)."""
    from repro.fuzz.generator import FuzzBudget, generate_program
    from repro.hls.longnail import compile_isax
    from repro.opt.equiv import compare_artifacts

    program = generate_program(seed, FuzzBudget())
    baseline = compile_isax(program.source, "VexRiscv",
                            schedule_cache=False)
    optimized = compile_isax(program.source, "VexRiscv",
                             schedule_cache=False, opt=2)
    assert compare_artifacts(baseline, optimized, trials=3, seed=seed) is None
