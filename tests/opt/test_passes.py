"""Positive/negative unit tests for each optimizer pass."""

import repro.dialects  # noqa: F401
from repro.ir.builder import Builder
from repro.ir.core import Graph
from repro.opt.passes import (
    canonicalize_pass,
    cse_pass,
    dce_pass,
    propagate_pass,
    share_pass,
    strength_pass,
)


def make_graph(name="test"):
    graph = Graph(name)
    return graph, Builder.at(graph)


def _inputs(builder, count=2):
    ops = ("lil.read_rs1", "lil.read_rs2", "lil.instr_word")
    return [builder.create(ops[i], [], [(32, None)]).result
            for i in range(count)]


def _sink(builder, value, width=32):
    pred = builder.constant(1, 1)
    if width != 32:
        pad = builder.constant(0, 32 - width)
        value = builder.create("comb.concat", [pad, value],
                               [(32, None)]).result
    builder.create("lil.write_rd", [value, pred], [])


def _names(graph):
    return [op.name for op in graph.operations]


class TestCanonicalize:
    def test_commutative_constant_moves_right(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(5, 32)
        add = builder.create("comb.add", [c, x], [(32, None)])
        _sink(builder, add.result)
        canonicalize_pass(graph)
        assert add.operands[1] is c or add.parent is None

    def test_xor_self_is_zero(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        xor = builder.create("comb.xor", [x, x], [(32, None)])
        _sink(builder, xor.result)
        removed, rewritten = canonicalize_pass(graph)
        # The xor is erased but its replacement constant is minted, so
        # the net ``removed`` count may be zero; the firing must still
        # be visible as a rewrite.
        assert removed + rewritten >= 1
        assert "comb.xor" not in _names(graph)

    def test_extract_of_extract_merges(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        outer = builder.create("comb.extract", [x], [(16, None)], {"low": 8})
        inner = builder.create("comb.extract", [outer.result], [(8, None)],
                               {"low": 4})
        _sink(builder, inner.result, width=8)
        canonicalize_pass(graph)
        dce_pass(graph)
        extracts = [op for op in graph.operations
                    if op.name == "comb.extract"]
        assert len(extracts) == 1
        assert extracts[0].attr("low") == 12
        assert extracts[0].operands[0] is x

    def test_extract_of_concat_selects_operand(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        cat = builder.create("comb.concat", [x, y], [(64, None)])
        # Bits [32, 64) of the concat are exactly x.
        ext = builder.create("comb.extract", [cat.result], [(32, None)],
                             {"low": 32})
        _sink(builder, ext.result)
        canonicalize_pass(graph)
        write = next(op for op in graph.operations
                     if op.name == "lil.write_rd")
        assert write.operands[0] is x

    def test_double_not_cancels(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        n1 = builder.create("comb.not", [x], [(32, None)])
        n2 = builder.create("comb.not", [n1.result], [(32, None)])
        _sink(builder, n2.result)
        canonicalize_pass(graph)
        write = next(op for op in graph.operations
                     if op.name == "lil.write_rd")
        assert write.operands[0] is x

    def test_interface_ops_untouched(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        add = builder.create("comb.add", [x, y], [(32, None)])
        _sink(builder, add.result)
        before = [op for op in graph.operations
                  if op.name.startswith("lil.")]
        canonicalize_pass(graph)
        after = [op for op in graph.operations if op.name.startswith("lil.")]
        assert before == after


class TestPropagate:
    def test_constant_chain_folds(self):
        graph, builder = make_graph()
        a = builder.constant(3, 32)
        b = builder.constant(4, 32)
        add = builder.create("comb.add", [a, b], [(32, None)])
        mul = builder.create("comb.mul", [add.result, add.result],
                             [(32, None)])
        _sink(builder, mul.result)
        propagate_pass(graph)
        dce_pass(graph)
        assert "comb.add" not in _names(graph)
        assert "comb.mul" not in _names(graph)
        values = {op.attr("value") for op in graph.operations
                  if op.name == "comb.constant"}
        assert 49 in values

    def test_duplicate_constants_merge(self):
        graph, builder = make_graph()
        a = builder.create("comb.constant", [], [(8, None)], {"value": 7})
        b = builder.create("comb.constant", [], [(8, None)], {"value": 7})
        add = builder.create("comb.add", [a.result, b.result], [(8, None)])
        _sink(builder, add.result, width=8)
        removed, _ = propagate_pass(graph)
        assert removed >= 1

    def test_non_constant_not_folded(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        add = builder.create("comb.add", [x, y], [(32, None)])
        _sink(builder, add.result)
        _, rewritten = propagate_pass(graph)
        assert rewritten == 0
        assert "comb.add" in _names(graph)


class TestCSE:
    def test_identical_ops_merge(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        add1 = builder.create("comb.add", [x, y], [(32, None)])
        add2 = builder.create("comb.add", [x, y], [(32, None)])
        xor = builder.create("comb.xor", [add1.result, add2.result],
                             [(32, None)])
        _sink(builder, xor.result)
        removed, _ = cse_pass(graph)
        assert removed == 1
        assert _names(graph).count("comb.add") == 1
        assert xor.operands[0] is xor.operands[1]

    def test_different_attrs_not_merged(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        e1 = builder.create("comb.extract", [x], [(8, None)], {"low": 0})
        e2 = builder.create("comb.extract", [x], [(8, None)], {"low": 8})
        cat = builder.create("comb.concat", [e1.result, e2.result],
                             [(16, None)])
        _sink(builder, cat.result, width=16)
        removed, _ = cse_pass(graph)
        assert removed == 0

    def test_side_effecting_never_merged(self):
        graph, builder = make_graph()
        r1 = builder.create("lil.read_rs1", [], [(32, None)])
        r2 = builder.create("lil.read_rs1", [], [(32, None)])
        add = builder.create("comb.add", [r1.result, r2.result],
                             [(32, None)])
        _sink(builder, add.result)
        removed, _ = cse_pass(graph)
        assert removed == 0
        assert _names(graph).count("lil.read_rs1") == 2


class TestStrength:
    def test_mul_by_power_of_two_becomes_wiring(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(8, 32)
        mul = builder.create("comb.mul", [x, c], [(32, None)])
        _sink(builder, mul.result)
        _, rewritten = strength_pass(graph)
        assert rewritten >= 1
        assert "comb.mul" not in _names(graph)
        assert "comb.concat" in _names(graph)

    def test_mul_by_repunit_becomes_shift_sub(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(7, 32)     # 2^3 - 1
        mul = builder.create("comb.mul", [x, c], [(32, None)])
        _sink(builder, mul.result)
        strength_pass(graph)
        assert "comb.mul" not in _names(graph)
        assert "comb.sub" in _names(graph)

    def test_mul_by_six_untouched(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(6, 32)
        mul = builder.create("comb.mul", [x, c], [(32, None)])
        _sink(builder, mul.result)
        _, rewritten = strength_pass(graph)
        assert "comb.mul" in _names(graph)

    def test_divu_by_power_of_two_becomes_wiring(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(4, 32)
        div = builder.create("comb.divu", [x, c], [(32, None)])
        _sink(builder, div.result)
        strength_pass(graph)
        assert "comb.divu" not in _names(graph)

    def test_divs_by_power_of_two_untouched(self):
        # Signed division by 2^k rounds toward zero; an arithmetic shift
        # rounds toward minus infinity.  Must NOT be rewritten.
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(4, 32)
        div = builder.create("comb.divs", [x, c], [(32, None)])
        _sink(builder, div.result)
        strength_pass(graph)
        assert "comb.divs" in _names(graph)

    def test_modu_by_power_of_two_becomes_mask(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(16, 32)
        mod = builder.create("comb.modu", [x, c], [(32, None)])
        _sink(builder, mod.result)
        strength_pass(graph)
        assert "comb.modu" not in _names(graph)
        assert "comb.and" in _names(graph)

    def test_div_by_one_is_identity(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(1, 32)
        div = builder.create("comb.divu", [x, c], [(32, None)])
        _sink(builder, div.result)
        strength_pass(graph)
        write = next(op for op in graph.operations
                     if op.name == "lil.write_rd")
        assert write.operands[0] is x

    def test_icmp_reflexive_folds(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        cmp_op = builder.create("comb.icmp", [x, x], [(1, None)],
                                {"predicate": "eq"})
        mux = builder.create("comb.mux", [cmp_op.result, x, x],
                             [(32, None)])
        _sink(builder, mux.result)
        strength_pass(graph)
        assert "comb.icmp" not in _names(graph)

    def test_icmp_constant_lhs_swaps(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        c = builder.constant(5, 32)
        cmp_op = builder.create("comb.icmp", [c, x], [(1, None)],
                                {"predicate": "ult"})
        pad = builder.constant(0, 31)
        wide = builder.create("comb.concat", [pad, cmp_op.result],
                              [(32, None)])
        _sink(builder, wide.result)
        strength_pass(graph)
        assert cmp_op.operands[0] is x
        assert cmp_op.attr("predicate") == "ugt"

    def test_not_of_icmp_inverts_predicate(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        cmp_op = builder.create("comb.icmp", [x, y], [(1, None)],
                                {"predicate": "ult"})
        inv = builder.create("comb.not", [cmp_op.result], [(1, None)])
        pad = builder.constant(0, 31)
        wide = builder.create("comb.concat", [pad, inv.result], [(32, None)])
        _sink(builder, wide.result)
        strength_pass(graph)
        dce_pass(graph)
        assert "comb.not" not in _names(graph)
        icmp = next(op for op in graph.operations if op.name == "comb.icmp")
        assert icmp.attr("predicate") == "uge"


class TestShare:
    def test_mux_of_two_muls_shares_one_unit(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        sel = builder.create("comb.extract", [x], [(1, None)], {"low": 0})
        m1 = builder.create("comb.mul", [x, y], [(32, None)])
        m2 = builder.create("comb.mul", [y, x], [(32, None)])
        mux = builder.create("comb.mux", [sel.result, m1.result, m2.result],
                             [(32, None)])
        _sink(builder, mux.result)
        removed, rewritten = share_pass(graph)
        assert removed == 2 and rewritten == 1
        assert _names(graph).count("comb.mul") == 1
        # The steering muxes sit in front of the shared multiplier.
        assert _names(graph).count("comb.mux") == 2
        graph.verify()

    def test_cheap_ops_not_shared(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        sel = builder.create("comb.extract", [x], [(1, None)], {"low": 0})
        a1 = builder.create("comb.add", [x, y], [(32, None)])
        a2 = builder.create("comb.add", [y, x], [(32, None)])
        mux = builder.create("comb.mux", [sel.result, a1.result, a2.result],
                             [(32, None)])
        _sink(builder, mux.result)
        removed, rewritten = share_pass(graph)
        assert (removed, rewritten) == (0, 0)

    def test_multi_use_arm_not_shared(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        sel = builder.create("comb.extract", [x], [(1, None)], {"low": 0})
        m1 = builder.create("comb.mul", [x, y], [(32, None)])
        m2 = builder.create("comb.mul", [y, x], [(32, None)])
        mux = builder.create("comb.mux", [sel.result, m1.result, m2.result],
                             [(32, None)])
        xor = builder.create("comb.xor", [mux.result, m1.result],
                             [(32, None)])
        _sink(builder, xor.result)
        removed, rewritten = share_pass(graph)
        assert (removed, rewritten) == (0, 0)


class TestDCE:
    def test_dead_chain_removed(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        dead = builder.create("comb.add", [x, y], [(32, None)])
        builder.create("comb.mul", [dead.result, dead.result], [(32, None)])
        live = builder.create("comb.xor", [x, y], [(32, None)])
        _sink(builder, live.result)
        removed, _ = dce_pass(graph)
        assert removed == 2
        assert "comb.add" not in _names(graph)

    def test_interface_ops_survive_without_uses(self):
        graph, builder = make_graph()
        builder.create("lil.read_rs1", [], [(32, None)])
        dce_pass(graph)
        assert "lil.read_rs1" in _names(graph)
