"""Per-rule unit tests for the range-narrow pass.

Each test builds a small graph whose facts the abstract-interpretation
engine can prove, runs :func:`range_narrow_pass` once, and asserts the
specific rewrite fired (or, for the guards, did not).
"""

import repro.dialects  # noqa: F401
from repro.ir.builder import Builder
from repro.ir.core import Graph
from repro.opt.narrow import range_narrow_pass


def make_graph(name="test"):
    graph = Graph(name)
    return graph, Builder.at(graph)


def _inputs(builder, count=2):
    ops = ("lil.read_rs1", "lil.read_rs2", "lil.instr_word")
    return [builder.create(ops[i], [], [(32, None)]).result
            for i in range(count)]


def _sink(builder, value, width=32):
    pred = builder.constant(1, 1)
    if width != 32:
        pad = builder.constant(0, 32 - width)
        value = builder.create("comb.concat", [pad, value],
                               [(32, None)]).result
    builder.create("lil.write_rd", [value, pred], [])


def _names(graph):
    return [op.name for op in graph.operations]


def _sink_op(graph):
    return next(op for op in graph.operations
                if op.name == "lil.write_rd")


class TestSingletonResult:
    def test_disjoint_icmp_folds_to_constant(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        narrowed = builder.create(
            "comb.and", [x, builder.constant(0xF, 32)], [(32, None)])
        cmp_op = builder.create(
            "comb.icmp", [narrowed.result, builder.constant(0x40, 32)],
            [(1, None)], {"predicate": "ult"})
        _sink(builder, cmp_op.result, width=1)
        removed, rewritten = range_narrow_pass(graph)
        assert rewritten >= 1
        assert "comb.icmp" not in _names(graph)

    def test_flushed_shift_folds_to_zero(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        shifted = builder.create(
            "comb.shl", [x, builder.constant(40, 32)], [(32, None)])
        _sink(builder, shifted.result)
        range_narrow_pass(graph)
        assert "comb.shl" not in _names(graph)
        folded = _sink_op(graph).operands[0]
        assert folded.owner.name == "comb.constant"
        assert folded.owner.attr("value") == 0

    def test_signed_result_is_not_folded(self):
        graph, builder = make_graph()
        zero = builder.constant(0, 32)
        signed_and = builder.create("comb.and", [zero, zero], [(32, True)])
        pred = builder.constant(1, 1)
        builder.create("lil.write_rd", [signed_and.result, pred], [])
        range_narrow_pass(graph)
        # Facts describe unsigned bit patterns; signed results are left
        # to passes that track the flag.
        assert "comb.and" in _names(graph)


class TestAndMaskDrop:
    def test_redundant_wider_mask_dropped(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        narrowed = builder.create(
            "comb.and", [x, builder.constant(0xF, 32)], [(32, None)])
        redundant = builder.create(
            "comb.and", [narrowed.result, builder.constant(0xFF, 32)],
            [(32, None)])
        _sink(builder, redundant.result)
        range_narrow_pass(graph)
        assert _sink_op(graph).operands[0] is narrowed.result

    def test_meaningful_mask_kept(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        masked = builder.create(
            "comb.and", [x, builder.constant(0xF, 32)], [(32, None)])
        _sink(builder, masked.result)
        range_narrow_pass(graph)
        assert "comb.and" in _names(graph)


class TestZeroOperandDrop:
    def test_or_with_proven_zero_dropped(self):
        graph, builder = make_graph()
        (x,) = _inputs(builder, 1)
        or_op = builder.create(
            "comb.or", [x, builder.constant(0, 32)], [(32, None)])
        _sink(builder, or_op.result)
        range_narrow_pass(graph)
        assert _sink_op(graph).operands[0] is x

    def test_chains_across_invocations(self):
        # A *derived* zero first folds to a constant (one invocation),
        # which the next invocation's fresh facts then drop — mirroring
        # the pass manager's dirty-round fixpoint.
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        zero = builder.create(
            "comb.and", [y, builder.constant(0, 32)], [(32, None)])
        or_op = builder.create(
            "comb.or", [x, zero.result], [(32, None)])
        _sink(builder, or_op.result)
        range_narrow_pass(graph)
        range_narrow_pass(graph)
        assert _sink_op(graph).operands[0] is x


class TestModuIdentity:
    def test_dividend_below_divisor(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        dividend = builder.create(
            "comb.and", [x, builder.constant(0x7, 32)], [(32, None)])
        small = builder.create(
            "comb.and", [y, builder.constant(0x7, 32)], [(32, None)])
        divisor = builder.create(
            "comb.or", [small.result, builder.constant(8, 32)],
            [(32, None)])
        mod = builder.create(
            "comb.modu", [dividend.result, divisor.result], [(32, None)])
        _sink(builder, mod.result)
        range_narrow_pass(graph)
        assert _sink_op(graph).operands[0] is dividend.result

    def test_possible_wrap_kept(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        dividend = builder.create(
            "comb.and", [x, builder.constant(0xF, 32)], [(32, None)])
        divisor = builder.create(
            "comb.or", [y, builder.constant(8, 32)], [(32, None)])
        mod = builder.create(
            "comb.modu", [dividend.result, divisor.result], [(32, None)])
        _sink(builder, mod.result)
        range_narrow_pass(graph)
        assert "comb.modu" in _names(graph)


class TestZeroShiftIdentity:
    def test_proven_zero_amount(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        amount = builder.create(
            "comb.and", [y, builder.constant(0, 32)], [(32, None)])
        shift = builder.create(
            "comb.shru", [x, amount.result], [(32, None)])
        _sink(builder, shift.result)
        range_narrow_pass(graph)
        range_narrow_pass(graph)
        assert _sink_op(graph).operands[0] is x


class TestCorrelatedMux:
    def test_same_condition_arms_collapse(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        cond = builder.create(
            "comb.icmp", [x, y], [(1, None)], {"predicate": "ult"})
        a = builder.constant(1, 32)
        b = builder.constant(2, 32)
        c = builder.constant(3, 32)
        inner1 = builder.create(
            "comb.mux", [cond.result, a, b], [(32, None)])
        inner2 = builder.create(
            "comb.mux", [cond.result, b, c], [(32, None)])
        outer = builder.create(
            "comb.mux", [cond.result, inner1.result, inner2.result],
            [(32, None)])
        _sink(builder, outer.result)
        range_narrow_pass(graph)
        # Under cond=1 the true arm takes inner1's true arm; under cond=0
        # the false arm takes inner2's false arm.
        assert outer.operands[1] is a
        assert outer.operands[2] is c

    def test_not_inverted_condition_resolves(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        cond = builder.create(
            "comb.icmp", [x, y], [(1, None)], {"predicate": "ult"})
        ncond = builder.create(
            "comb.not", [cond.result], [(1, None)])
        a = builder.constant(1, 32)
        b = builder.constant(2, 32)
        inner = builder.create(
            "comb.mux", [ncond.result, a, b], [(32, None)])
        outer = builder.create(
            "comb.mux", [cond.result, inner.result, a], [(32, None)])
        _sink(builder, outer.result)
        range_narrow_pass(graph)
        # In the true arm cond=1, so ncond=0: inner resolves to b.
        assert outer.operands[1] is b

    def test_implied_icmp_resolves(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        strict = builder.create(
            "comb.icmp", [x, y], [(1, None)], {"predicate": "ult"})
        loose = builder.create(
            "comb.icmp", [x, y], [(1, None)], {"predicate": "ule"})
        a = builder.constant(1, 32)
        b = builder.constant(2, 32)
        inner = builder.create(
            "comb.mux", [loose.result, a, b], [(32, None)])
        outer = builder.create(
            "comb.mux", [strict.result, inner.result, b], [(32, None)])
        _sink(builder, outer.result)
        range_narrow_pass(graph)
        # x <u y implies x <=u y: in the true arm inner takes a.
        assert outer.operands[1] is a

    def test_unrelated_condition_kept(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        cond1 = builder.create(
            "comb.icmp", [x, y], [(1, None)], {"predicate": "ult"})
        cond2 = builder.create(
            "comb.icmp", [y, builder.constant(5, 32)], [(1, None)],
            {"predicate": "eq"})
        a = builder.constant(1, 32)
        b = builder.constant(2, 32)
        inner = builder.create(
            "comb.mux", [cond2.result, a, b], [(32, None)])
        outer = builder.create(
            "comb.mux", [cond1.result, inner.result, a], [(32, None)])
        _sink(builder, outer.result)
        range_narrow_pass(graph)
        assert outer.operands[1] is inner.result


class TestPinSingletonOperands:
    def test_proven_constant_operand_rewired(self):
        graph, builder = make_graph()
        x, y = _inputs(builder, 2)
        # y & 0 | 5 is provably 5 but not syntactically constant.
        zero = builder.create(
            "comb.and", [y, builder.constant(0, 32)], [(32, None)])
        five = builder.create(
            "comb.or", [zero.result, builder.constant(5, 32)],
            [(32, None)])
        add = builder.create(
            "comb.add", [x, five.result], [(32, None)])
        _sink(builder, add.result)
        range_narrow_pass(graph)
        operand = add.operands[1]
        assert operand.owner.name == "comb.constant"
        assert operand.owner.attr("value") == 5
