"""Pass-manager, options, metrics, and cross-ISAX pooling tests."""

import pytest

import repro.dialects  # noqa: F401
from repro.ir.builder import Builder
from repro.ir.core import Graph
from repro.opt.pipeline import (
    LEVEL_PIPELINES,
    PASS_ORDER,
    OptOptions,
    PassManager,
    optimize_graphs,
)
from repro.opt.share import pool_cross_isax


def _graph_with_redundancy(name="g"):
    graph = Graph(name)
    builder = Builder.at(graph)
    x = builder.create("lil.read_rs1", [], [(32, None)]).result
    y = builder.create("lil.read_rs2", [], [(32, None)]).result
    a1 = builder.create("comb.add", [x, y], [(32, None)])
    a2 = builder.create("comb.add", [x, y], [(32, None)])
    xor = builder.create("comb.xor", [a1.result, a2.result], [(32, None)])
    pred = builder.constant(1, 1)
    builder.create("lil.write_rd", [xor.result, pred], [])
    return graph


def _graph_with_mul(name, widths=(32, 32)):
    graph = Graph(name)
    builder = Builder.at(graph)
    x = builder.create("lil.read_rs1", [], [(32, None)]).result
    y = builder.create("lil.read_rs2", [], [(32, None)]).result
    mul = builder.create("comb.mul", [x, y], [(32, None)])
    pred = builder.constant(1, 1)
    builder.create("lil.write_rd", [mul.result, pred], [])
    return graph


class TestOptOptions:
    def test_level_pipelines(self):
        assert OptOptions(level=0).pipeline() == ()
        assert OptOptions(level=1).pipeline() == (
            "canonicalize", "propagate", "cse", "dce")
        assert OptOptions(level=2).pipeline() == PASS_ORDER

    def test_enable_disable(self):
        options = OptOptions(level=1, enable=("strength",),
                             disable=("cse",))
        assert options.pipeline() == (
            "canonicalize", "propagate", "strength", "dce")

    def test_pipeline_order_is_canonical(self):
        # However flags are given, execution order follows PASS_ORDER.
        options = OptOptions(level=0, enable=("dce", "canonicalize"))
        assert options.pipeline() == ("canonicalize", "dce")

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            OptOptions(level=3)

    def test_invalid_pass_rejected(self):
        with pytest.raises(ValueError):
            OptOptions(level=1, enable=("inliner",))

    def test_from_flags_minus_prefix_disables(self):
        options = OptOptions.from_flags(2, ("-share", "strength"))
        assert "share" not in options.pipeline()
        assert "strength" in options.pipeline()

    def test_coerce(self):
        assert OptOptions.coerce(None).level == 0
        assert OptOptions.coerce(2).level == 2
        options = OptOptions(level=1)
        assert OptOptions.coerce(options) is options

    def test_fingerprint_distinguishes_configs(self):
        prints = {
            OptOptions(level=0).fingerprint(),
            OptOptions(level=1).fingerprint(),
            OptOptions(level=2).fingerprint(),
            OptOptions(level=2, disable=("share",)).fingerprint(),
            OptOptions(level=1, enable=("strength",)).fingerprint(),
        }
        assert len(prints) == 5

    def test_fingerprint_stable_under_flag_order(self):
        a = OptOptions(level=2, enable=("cse", "dce"))
        b = OptOptions(level=2, enable=("dce", "cse"))
        assert a.fingerprint() == b.fingerprint()


class TestPassManager:
    def test_o0_is_noop(self):
        graph = _graph_with_redundancy()
        before = len(graph.operations)
        report = PassManager(OptOptions(level=0)).run(graph)
        assert len(graph.operations) == before
        assert report.graphs == 0
        assert report.nodes_before == 0

    def test_o1_removes_redundancy(self):
        graph = _graph_with_redundancy()
        report = PassManager(OptOptions(level=1)).run(graph)
        assert report.nodes_after < report.nodes_before
        assert report.ops_removed >= 1
        names = [op.name for op in graph.operations]
        assert names.count("comb.add") <= 1

    def test_stats_per_pass(self):
        graph = _graph_with_redundancy()
        report = PassManager(OptOptions(level=1)).run(graph)
        assert set(report.passes) <= set(LEVEL_PIPELINES[1])
        cse = report.passes["cse"]
        assert cse.runs >= 1
        assert cse.seconds >= 0.0

    def test_report_to_dict_schema(self):
        graph = _graph_with_redundancy()
        report = PassManager(OptOptions(level=2)).run(graph)
        doc = report.to_dict()
        for key in ("level", "pipeline", "graphs", "nodes_before",
                    "nodes_after", "node_reduction_pct", "ops_removed",
                    "ops_rewritten", "seconds", "passes", "cross_isax"):
            assert key in doc
        for stats in doc["passes"].values():
            assert set(stats) == {"runs", "ops_removed", "ops_rewritten",
                                  "seconds"}

    def test_verify_mode_runs_clean(self):
        graph = _graph_with_redundancy()
        PassManager(OptOptions(level=2), verify=True).run(graph)
        graph.verify()

    def test_fixpoint_terminates(self):
        graph = _graph_with_redundancy()
        report = PassManager(OptOptions(level=2, max_rounds=4)).run(graph)
        # Rounds stop once a full sweep changes nothing.
        assert report.passes["cse"].runs <= 4


class TestOptimizeGraphs:
    def test_cross_isax_annotations(self):
        g1 = _graph_with_mul("i1")
        g2 = _graph_with_mul("i2")
        report = optimize_graphs(
            [("i1", "instruction", g1), ("i2", "instruction", g2)],
            OptOptions(level=2))
        assert report.cross_isax
        assert report.cross_isax["units_saved"] >= 1
        units = set()
        for graph in (g1, g2):
            for op in graph.operations:
                if op.name == "comb.mul":
                    units.add(op.attr("shared_unit"))
        assert len(units) == 1 and None not in units

    def test_single_instruction_no_pooling(self):
        g1 = _graph_with_mul("solo")
        report = optimize_graphs([("solo", "instruction", g1)],
                                 OptOptions(level=2))
        assert report.cross_isax == {}

    def test_share_disabled_no_pooling(self):
        g1 = _graph_with_mul("i1")
        g2 = _graph_with_mul("i2")
        report = optimize_graphs(
            [("i1", "instruction", g1), ("i2", "instruction", g2)],
            OptOptions(level=2, disable=("share",)))
        assert report.cross_isax == {}


class TestPoolCrossIsax:
    def test_different_widths_not_pooled(self):
        g1 = Graph("a")
        b1 = Builder.at(g1)
        x = b1.create("lil.read_rs1", [], [(32, None)]).result
        narrow = b1.create("comb.extract", [x], [(16, None)], {"low": 0})
        m1 = b1.create("comb.mul", [narrow.result, narrow.result],
                       [(16, None)])
        pad = b1.constant(0, 16)
        wide = b1.create("comb.concat", [pad, m1.result], [(32, None)])
        pred = b1.constant(1, 1)
        b1.create("lil.write_rd", [wide.result, pred], [])
        g2 = _graph_with_mul("b")
        pooled = pool_cross_isax(
            [("a", "instruction", g1), ("b", "instruction", g2)])
        assert pooled == {} or pooled.get("units_saved", 0) == 0

    def test_always_blocks_excluded(self):
        g1 = _graph_with_mul("i1")
        g2 = _graph_with_mul("bg")
        pooled = pool_cross_isax(
            [("i1", "instruction", g1), ("bg", "always", g2)])
        assert pooled == {} or pooled.get("units_saved", 0) == 0
