"""Regression tests for the `_simplify_algebraic` gap fixes.

The original helper only recognized identity constants on the right-hand
side (``x + 0``) and width-guarded forms that the binary verifier already
guarantees; this pins down the symmetric left-hand-side forms and the
multiplicative/mask identities the optimizer's canonicalize pass relies on.
"""

import repro.dialects  # noqa: F401
from repro.ir.builder import Builder
from repro.ir.core import Graph
from repro.ir.passes import _simplify_algebraic


def _prep(width=8):
    graph = Graph("t")
    builder = Builder.at(graph)
    x = builder.create("lil.read_rs1", [], [(32, None)]).result
    if width != 32:
        x = builder.create("comb.extract", [x], [(width, None)],
                           {"low": 0}).result
    return graph, builder, x


def _binary(builder, name, lhs, rhs, width):
    return builder.create(name, [lhs, rhs], [(width, None)])


class TestLeftIdentity:
    """0 on the LHS of add/or/xor simplifies just like on the RHS."""

    def test_zero_plus_x(self):
        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        op = _binary(builder, "comb.add", zero, x, 8)
        assert _simplify_algebraic(op) is x

    def test_zero_or_x(self):
        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        op = _binary(builder, "comb.or", zero, x, 8)
        assert _simplify_algebraic(op) is x

    def test_zero_xor_x(self):
        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        op = _binary(builder, "comb.xor", zero, x, 8)
        assert _simplify_algebraic(op) is x


class TestMultiplicativeIdentity:
    def test_x_times_one(self):
        graph, builder, x = _prep()
        one = builder.constant(1, 8)
        op = _binary(builder, "comb.mul", x, one, 8)
        assert _simplify_algebraic(op) is x

    def test_one_times_x(self):
        graph, builder, x = _prep()
        one = builder.constant(1, 8)
        op = _binary(builder, "comb.mul", one, x, 8)
        assert _simplify_algebraic(op) is x


class TestAndAllOnes:
    def test_x_and_mask(self):
        graph, builder, x = _prep()
        ones = builder.constant(0xFF, 8)
        op = _binary(builder, "comb.and", x, ones, 8)
        assert _simplify_algebraic(op) is x

    def test_mask_and_x(self):
        graph, builder, x = _prep()
        ones = builder.constant(0xFF, 8)
        op = _binary(builder, "comb.and", ones, x, 8)
        assert _simplify_algebraic(op) is x

    def test_partial_mask_not_simplified(self):
        graph, builder, x = _prep()
        partial = builder.constant(0x7F, 8)
        op = _binary(builder, "comb.and", x, partial, 8)
        assert _simplify_algebraic(op) is None


class TestNegative:
    """Identities must not fire where they would change semantics."""

    def test_zero_sub_x_not_x(self):
        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        op = _binary(builder, "comb.sub", zero, x, 8)
        # 0 - x == -x, not x.
        assert _simplify_algebraic(op) is not x

    def test_x_sub_zero_is_x(self):
        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        op = _binary(builder, "comb.sub", x, zero, 8)
        assert _simplify_algebraic(op) is x

    def test_non_constant_untouched(self):
        graph, builder, x = _prep()
        y = builder.create("lil.read_rs2", [], [(32, None)]).result
        y8 = builder.create("comb.extract", [y], [(8, None)],
                            {"low": 0}).result
        op = _binary(builder, "comb.add", x, y8, 8)
        assert _simplify_algebraic(op) is None


class TestDivModByZeroConstant:
    """A constant divisor of 0 passes the naive power-of-two test
    (``0 & -1 == 0``); the strength pass must leave the op alone rather
    than synthesize a shift by ``bit_length(0) - 1 == -1`` bits."""

    def test_divu_by_zero_left_intact(self):
        from repro.opt.passes import strength_pass

        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        div = _binary(builder, "comb.divu", x, zero, 8)
        pred = builder.constant(1, 1)
        builder.create("lil.write_rd", [div.result, pred], [])
        strength_pass(graph)
        assert "comb.divu" in [op.name for op in graph.operations]
        graph.verify()

    def test_modu_by_zero_left_intact(self):
        from repro.opt.passes import strength_pass

        graph, builder, x = _prep()
        zero = builder.constant(0, 8)
        mod = _binary(builder, "comb.modu", x, zero, 8)
        pred = builder.constant(1, 1)
        builder.create("lil.write_rd", [mod.result, pred], [])
        strength_pass(graph)
        assert "comb.modu" in [op.name for op in graph.operations]
        graph.verify()
