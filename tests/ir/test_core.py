"""Tests for the mini-MLIR IR infrastructure."""

import pytest

import repro.dialects  # noqa: F401  (registers all operations)
from repro.ir.builder import Builder
from repro.ir.core import Graph, IRError, OpDef, Operation, lookup_op, register_op


def make_graph():
    graph = Graph("test")
    builder = Builder.at(graph)
    return graph, builder


class TestRegistry:
    def test_lookup_registered(self):
        assert lookup_op("comb.add").name == "comb.add"

    def test_lookup_unknown(self):
        with pytest.raises(IRError):
            lookup_op("bogus.op")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(IRError):
            register_op(OpDef("comb.add"))


class TestDefUse:
    def test_uses_tracked(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 8)
        add = builder.create("comb.add", [a, b], [(8, None)])
        assert (add, 0) in a.uses
        assert (add, 1) in b.uses

    def test_replace_all_uses(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 8)
        c = builder.constant(3, 8)
        add = builder.create("comb.add", [a, b], [(8, None)])
        a.replace_all_uses_with(c)
        assert add.operands[0] is c
        assert not a.uses
        assert (add, 0) in c.uses

    def test_erase_with_uses_rejected(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        builder.create("comb.not", [a], [(8, None)])
        with pytest.raises(IRError):
            a.owner.erase()

    def test_erase_removes_operand_uses(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        nt = builder.create("comb.not", [a], [(8, None)])
        nt.erase()
        assert not a.uses
        assert nt not in graph.operations


class TestBuilder:
    def test_constant_uniquing(self):
        graph, builder = make_graph()
        a = builder.constant(5, 8)
        b = builder.constant(5, 8)
        c = builder.constant(5, 16)
        assert a is b
        assert a is not c

    def test_value_width_validation(self):
        graph, builder = make_graph()
        with pytest.raises(IRError):
            builder.create("comb.constant", [], [(0, None)], {"value": 0})


class TestGraph:
    def test_topological_order(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 8)
        add = builder.create("comb.add", [a, b], [(8, None)])
        order = graph.topological_order()
        assert order.index(a.owner) < order.index(add)
        assert order.index(b.owner) < order.index(add)

    def test_dead_code_elimination(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 8)
        builder.create("comb.add", [a, b], [(8, None)])  # dead
        removed = graph.remove_dead_code()
        assert removed == 3
        assert len(graph.operations) == 0

    def test_dce_keeps_side_effects(self):
        graph, builder = make_graph()
        value = builder.constant(1, 32)
        pred = builder.constant(1, 1)
        builder.create("lil.write_rd", [value, pred], [])
        removed = graph.remove_dead_code()
        assert removed == 0
        assert len(graph.operations) == 3


class TestVerifiers:
    def test_comb_width_mismatch(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 16)
        op = builder.create("comb.add", [a, b], [(16, None)])
        with pytest.raises(IRError):
            op.verify()

    def test_icmp_bad_predicate(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        op = builder.create("comb.icmp", [a, a], [(1, None)],
                            {"predicate": "bogus"})
        with pytest.raises(IRError):
            op.verify()

    def test_extract_out_of_range(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        op = builder.create("comb.extract", [a], [(4, None)], {"low": 6})
        with pytest.raises(IRError):
            op.verify()

    def test_concat_width_checked(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        op = builder.create("comb.concat", [a, a], [(17, None)])
        with pytest.raises(IRError):
            op.verify()

    def test_mux_condition_width(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        op = builder.create("comb.mux", [a, a, a], [(8, None)])
        with pytest.raises(IRError):
            op.verify()

    def test_valid_graph_verifies(self):
        graph, builder = make_graph()
        a = builder.constant(200, 8)
        b = builder.constant(100, 8)
        builder.create("comb.add", [a, b], [(8, None)]).verify()
