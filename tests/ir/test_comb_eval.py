"""Width-correctness regressions for comb evaluation and construction.

Two historical bugs: ``comb.constant`` evaluation returned the raw
attribute without truncating to the result width, and ``comb.replicate``
ORed the raw operand into the result without the ``to_unsigned``
normalization that ``comb.concat`` applies.  Both must stay masked, and
the IR builder must reject out-of-range constants at construction time
instead of silently masking an overflowed computation.
"""

import pytest

from repro.dialects import comb
from repro.ir.builder import Builder
from repro.ir.core import Graph, IRError, Operation


def test_constant_evaluation_masked_to_result_width():
    # Construct the op directly (bypassing builder/verifier) with an
    # out-of-range attribute: evaluation must still truncate.
    op = Operation("comb.constant", [], [(8, None)], {"value": 0x1FF})
    assert comb.evaluate(op, []) == 0xFF


def test_constant_folder_masked_to_result_width():
    op = Operation("comb.constant", [], [(8, None)], {"value": 0x123})
    assert op.opdef.folder(op, []) == 0x23


def test_replicate_normalizes_oversized_operand():
    graph = Graph("g")
    builder = Builder.at(graph)
    nibble = builder.constant(0, 4)
    op = builder.create("comb.replicate", [nibble], [(8, None)])
    # Operand value wider than its declared 4 bits: the extra bits must
    # not bleed into the replicated result (matches comb.concat).
    assert comb.evaluate(op, [0x1F]) == 0xFF
    assert comb.evaluate(op, [0x5]) == 0x55


def test_concat_and_replicate_agree_on_normalization():
    graph = Graph("g")
    builder = Builder.at(graph)
    nibble = builder.constant(0, 4)
    concat = builder.create("comb.concat", [nibble, nibble], [(8, None)])
    replicate = builder.create("comb.replicate", [nibble], [(8, None)])
    for raw in (0x5, 0x1F, 0xFF):
        assert (comb.evaluate(concat, [raw, raw])
                == comb.evaluate(replicate, [raw]))


def test_builder_rejects_out_of_range_constants():
    builder = Builder.at(Graph("g"))
    with pytest.raises(IRError):
        builder.constant(256, 8)
    with pytest.raises(IRError):
        builder.constant(-129, 8)


def test_builder_accepts_full_range_and_twos_complement():
    builder = Builder.at(Graph("g"))
    assert builder.constant(255, 8).owner.attr("value") == 0xFF
    assert builder.constant(-1, 8).owner.attr("value") == 0xFF
    assert builder.constant(-128, 8).owner.attr("value") == 0x80


def test_verifier_rejects_out_of_range_attribute():
    op = Operation("comb.constant", [], [(8, None)], {"value": 0x100})
    with pytest.raises(IRError):
        op.verify()


def test_rom_lookup_masked_to_result_width():
    graph = Graph("g")
    builder = Builder.at(graph)
    index = builder.constant(0, 2)
    op = builder.create("comb.rom", [index], [(8, None)],
                        {"values": [0x1FF, 2, 3, 4]})
    assert comb.evaluate(op, [0]) == 0xFF
    assert comb.evaluate(op, [3]) == 4
