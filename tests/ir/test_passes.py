"""Tests for canonicalization: constant folding, dedup, DCE."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.dialects  # noqa: F401
from repro.dialects import comb
from repro.ir.builder import Builder
from repro.ir.core import Graph, Operation
from repro.ir.passes import canonicalize, dedupe_constants, fold_constants
from repro.utils.bits import to_signed, to_unsigned


def make_graph():
    graph = Graph("test")
    return graph, Builder.at(graph)


def keep(builder, value):
    """Anchor a value with a side-effecting consumer so DCE keeps it."""
    pred = builder.create("comb.constant", [], [(1, None)], {"value": 1}).result
    wide = value
    if value.width != 32:
        pad = builder.create(
            "comb.constant", [], [(32 - value.width, None)], {"value": 0}
        ).result
        wide = builder.create("comb.concat", [pad, value], [(32, None)]).result
    builder.create("lil.write_rd", [wide, pred], [])


class TestFolding:
    def test_add_folds(self):
        graph, builder = make_graph()
        a = builder.constant(3, 8)
        b = builder.constant(4, 8)
        add = builder.create("comb.add", [a, b], [(8, None)])
        keep(builder, add.result)
        canonicalize(graph)
        constants = [op for op in graph.operations if op.name == "comb.constant"]
        values = {op.attr("value") for op in constants}
        assert 7 in values
        assert not any(op.name == "comb.add" for op in graph.operations)

    def test_wrap_around(self):
        graph, builder = make_graph()
        a = builder.constant(255, 8)
        b = builder.constant(2, 8)
        add = builder.create("comb.add", [a, b], [(8, None)])
        keep(builder, add.result)
        canonicalize(graph)
        values = {op.attr("value") for op in graph.operations
                  if op.name == "comb.constant"}
        assert 1 in values

    def test_mux_constant_condition(self):
        graph, builder = make_graph()
        cond = builder.constant(1, 1)
        a = builder.create("comb.constant", [], [(8, None)], {"value": 10}).result
        b = builder.create("comb.constant", [], [(8, None)], {"value": 20}).result
        mux = builder.create("comb.mux", [cond, a, b], [(8, None)])
        keep(builder, mux.result)
        canonicalize(graph)
        assert not any(op.name == "comb.mux" for op in graph.operations)

    def test_add_zero_identity(self):
        graph, builder = make_graph()
        x = builder.create("lil.read_rs1", [], [(32, None)])
        zero = builder.constant(0, 32)
        add = builder.create("comb.add", [x.result, zero], [(32, None)])
        pred = builder.constant(1, 1)
        builder.create("lil.write_rd", [add.result, pred], [])
        canonicalize(graph)
        assert not any(op.name == "comb.add" for op in graph.operations)
        write = next(op for op in graph.operations if op.name == "lil.write_rd")
        assert write.operands[0] is x.result

    def test_mux_same_arms(self):
        graph, builder = make_graph()
        x = builder.create("lil.read_rs1", [], [(32, None)])
        cond = builder.create("lil.read_rs2", [], [(32, None)])
        cond_bit = builder.create("comb.extract", [cond.result], [(1, None)],
                                  {"low": 0})
        mux = builder.create("comb.mux", [cond_bit.result, x.result, x.result],
                             [(32, None)])
        pred = builder.constant(1, 1)
        builder.create("lil.write_rd", [mux.result, pred], [])
        canonicalize(graph)
        assert not any(op.name == "comb.mux" for op in graph.operations)

    def test_dedupe_constants(self):
        graph, builder = make_graph()
        a = builder.create("comb.constant", [], [(8, None)], {"value": 7})
        b = builder.create("comb.constant", [], [(8, None)], {"value": 7})
        add = builder.create("comb.add", [a.result, b.result], [(8, None)])
        removed = dedupe_constants(graph)
        assert removed == 1
        assert add.operands[0] is add.operands[1]

    def test_interface_ops_never_folded(self):
        graph, builder = make_graph()
        read = builder.create("lil.read_rs1", [], [(32, None)])
        keep(builder, read.result)
        canonicalize(graph)
        assert any(op.name == "lil.read_rs1" for op in graph.operations)


class TestEvaluation:
    """comb evaluation semantics, shared by folder and RTL simulator."""

    def eval_binary(self, name, a, b, width):
        graph, builder = make_graph()
        va = builder.constant(a, width)
        vb = builder.constant(b, width)
        op = builder.create(name, [va, vb], [(width, None)])
        return comb.evaluate(op, [a, b])

    def test_sub_wraps(self):
        assert self.eval_binary("comb.sub", 0, 1, 8) == 0xFF

    def test_divu_by_zero_all_ones(self):
        assert self.eval_binary("comb.divu", 10, 0, 8) == 0xFF

    def test_divs_negative(self):
        a = to_unsigned(-7, 8)
        b = to_unsigned(2, 8)
        result = self.eval_binary("comb.divs", a, b, 8)
        assert to_signed(result, 8) == -3  # truncating division

    def test_mods_sign_follows_dividend(self):
        a = to_unsigned(-7, 8)
        result = self.eval_binary("comb.mods", a, 2, 8)
        assert to_signed(result, 8) == -1

    def test_shl_overshift_is_zero(self):
        assert self.eval_binary("comb.shl", 0xFF, 9, 8) == 0

    def test_shrs_fills_sign(self):
        a = to_unsigned(-128, 8)
        assert to_signed(self.eval_binary("comb.shrs", a, 3, 8), 8) == -16

    def test_shru_zero_fill(self):
        assert self.eval_binary("comb.shru", 0x80, 3, 8) == 0x10

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_matches_python(self, a, b):
        assert self.eval_binary("comb.add", a, b, 8) == (a + b) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_icmp_slt(self, a, b):
        graph, builder = make_graph()
        va = builder.constant(a, 8)
        vb = builder.constant(b, 8)
        op = builder.create("comb.icmp", [va, vb], [(1, None)],
                            {"predicate": "slt"})
        expected = int(to_signed(a, 8) < to_signed(b, 8))
        assert comb.evaluate(op, [a, b]) == expected

    def test_concat_msb_first(self):
        graph, builder = make_graph()
        hi = builder.constant(0xA, 4)
        lo = builder.constant(0x5, 4)
        op = builder.create("comb.concat", [hi, lo], [(8, None)])
        assert comb.evaluate(op, [0xA, 0x5]) == 0xA5

    def test_replicate(self):
        graph, builder = make_graph()
        bit = builder.constant(1, 1)
        op = builder.create("comb.replicate", [bit], [(4, None)])
        assert comb.evaluate(op, [1]) == 0xF

    def test_rom_lookup(self):
        graph, builder = make_graph()
        index = builder.constant(2, 4)
        op = builder.create("comb.rom", [index], [(8, None)],
                            {"values": [10, 20, 30, 40]})
        assert comb.evaluate(op, [2]) == 30
        assert comb.evaluate(op, [9]) == 0  # out of range reads as 0
