"""Tests for the generic IR printer."""

import repro.dialects  # noqa: F401
from repro.ir.builder import Builder
from repro.ir.core import Block, Graph, Operation, Region
from repro.ir.printer import print_graph, print_operation


def make_graph():
    graph = Graph("g", {"kind": "instruction"})
    return graph, Builder.at(graph)


class TestPrintGraph:
    def test_values_numbered_in_order(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        b = builder.constant(2, 8)
        builder.create("comb.add", [a, b], [(8, None)])
        text = print_graph(graph)
        assert "%0 = comb.constant" in text
        assert "%2 = comb.add(%0, %1)" in text

    def test_types_printed(self):
        graph, builder = make_graph()
        builder.create("hwarith.constant", [], [(12, True)], {"value": 3})
        builder.create("comb.constant", [], [(12, None)], {"value": 3})
        text = print_graph(graph)
        assert ": si12" in text
        assert ": i12" in text

    def test_attributes_sorted_and_typed(self):
        graph, builder = make_graph()
        a = builder.constant(1, 8)
        builder.create("comb.extract", [a], [(4, None)], {"low": 2})
        text = print_graph(graph)
        assert "{low: 2}" in text

    def test_graph_attributes_shown(self):
        graph, _builder = make_graph()
        assert 'kind: "instruction"' in print_graph(graph)

    def test_string_and_list_attributes(self):
        graph, builder = make_graph()
        a = builder.constant(5, 4)
        builder.create("lil.rom", [a], [(8, None)],
                       {"reg": "T", "values": [1, 2]})
        text = print_graph(graph)
        assert 'reg: "T"' in text
        assert "values: [1, 2]" in text


class TestPrintOperation:
    def test_nested_regions_indented(self):
        inner = Block()
        inner_builder = Builder(inner)
        inner_builder.create("coredsl.end", [], [])
        op = Operation("coredsl.instruction", [], [],
                       {"name": "x"}, regions=[Region([inner])])
        text = print_operation(op)
        lines = text.splitlines()
        assert lines[0].startswith("coredsl.instruction")
        assert lines[1] == "{"
        assert lines[2].strip() == "coredsl.end"
        assert lines[3] == "}"
