"""Type-checking tests: the no-implicit-information-loss rules of Section 2.3
applied to whole behaviors."""

import pytest

from repro.frontend import elaborate
from repro.frontend.types import signed, unsigned
from repro.utils.diagnostics import CoreDSLError


def isax(state="", behavior="x0 = 0;", functions="", encoding=None):
    encoding = encoding or "25'd0 :: 7'b0001011"
    return f"""
    import "RV32I.core_desc"
    InstructionSet T extends RV32I {{
      architectural_state {{ {state} }}
      functions {{ {functions} }}
      instructions {{
        t {{
          encoding: {encoding};
          behavior: {{ {behavior} }}
        }}
      }}
    }}
    """


def check(behavior, **kwargs):
    return elaborate(isax(behavior=behavior, **kwargs))


class TestImplicitConversionRules:
    def test_u4_from_u5_rejected(self):
        with pytest.raises(CoreDSLError, match="implicit conversion"):
            check("unsigned<5> u5 = 0; unsigned<4> u4 = u5;")

    def test_u4_from_s4_rejected(self):
        with pytest.raises(CoreDSLError, match="implicit conversion"):
            check("signed<4> s4 = 0; unsigned<4> u4 = s4;")

    def test_explicit_cast_accepted(self):
        check(
            "unsigned<5> u5 = 0; signed<4> s4 = 0;"
            "unsigned<4> u4 = (unsigned<4>) (u5 + s4);"
        )

    def test_widening_accepted(self):
        check("unsigned<4> u4 = 0; unsigned<5> u5 = u4;")

    def test_literal_fitting_signed_target(self):
        # 0 has type unsigned<1> but fits any signed type.
        check("signed<32> res = 0;")

    def test_large_literal_rejected_for_narrow_target(self):
        with pytest.raises(CoreDSLError):
            check("unsigned<4> u4 = 300;")

    def test_compound_assignment_truncates_back(self):
        # res += prod is legal despite res + prod being wider (Figure 1).
        check("signed<32> res = 0; signed<16> prod = 0; res += prod;")


class TestExpressionTyping:
    def get_type(self, init_stmts, expr):
        isa = check(f"{init_stmts} unsigned<64> sink = (unsigned<64>) ({expr});")
        behavior = isa.instructions["t"].behavior
        cast = behavior.statements[-1].init
        return cast.operand.ctype

    def test_paper_addition_type(self):
        t = self.get_type("unsigned<5> u5 = 0; signed<4> s4 = 0;", "u5 + s4")
        assert t == signed(7)

    def test_concat_type(self):
        t = self.get_type("unsigned<5> a = 0;", "a :: 1'b0")
        assert t == unsigned(6)

    def test_gpr_read_type(self):
        isa = check("unsigned<32> v = X[rs1];",
                    encoding="20'd0 :: rs1[4:0] :: 7'b0001011")
        stmt = isa.instructions["t"].behavior.statements[0]
        assert stmt.init.ctype == unsigned(32)

    def test_slice_of_gpr(self):
        isa = check("unsigned<8> b = X[rs1][7:0];",
                    encoding="20'd0 :: rs1[4:0] :: 7'b0001011")
        stmt = isa.instructions["t"].behavior.statements[0]
        assert stmt.init.ctype == unsigned(8)

    def test_memory_range_is_32_bits(self):
        isa = check(
            "unsigned<32> a = X[rs1]; unsigned<32> w = MEM[a+3:a];",
            encoding="20'd0 :: rs1[4:0] :: 7'b0001011",
        )
        stmt = isa.instructions["t"].behavior.statements[1]
        assert stmt.init.ctype == unsigned(32)

    def test_comparison_is_bool(self):
        isa = check("unsigned<1> c = PC == 0;")
        stmt = isa.instructions["t"].behavior.statements[0]
        assert stmt.init.ctype == unsigned(1)

    def test_field_type_from_encoding(self):
        isa = check("unsigned<12> v = uimmL;",
                    encoding="uimmL[11:0] :: 13'd0 :: 7'b0001011")
        assert isa.instructions["t"].fields["uimmL"] == unsigned(12)


class TestRangeRules:
    def test_same_variable_offset_ok(self):
        check(
            "unsigned<32> v = X[rs1];"
            "for (int i = 0; i < 32; i += 8) { unsigned<8> b = v[i+7:i]; }",
            encoding="20'd0 :: rs1[4:0] :: 7'b0001011",
        )

    def test_different_variables_rejected(self):
        with pytest.raises(CoreDSLError, match="range bounds"):
            check(
                "unsigned<32> v = 0;"
                "for (int i = 0; i < 8; i += 1) {"
                " for (int j = 0; j < 8; j += 1) {"
                " unsigned<1> b = v[i:j]; } }"
            )

    def test_reversed_constant_range_rejected(self):
        with pytest.raises(CoreDSLError):
            check("unsigned<32> v = 0; unsigned<4> b = v[0:3];")

    def test_out_of_range_bit_rejected(self):
        with pytest.raises(CoreDSLError):
            check("unsigned<8> v = 0; unsigned<1> b = v[9];")


class TestStateAccess:
    def test_unknown_identifier(self):
        with pytest.raises(CoreDSLError, match="unknown identifier"):
            check("unsigned<8> v = bogus;")

    def test_register_file_needs_index(self):
        with pytest.raises(CoreDSLError, match="must be indexed"):
            check("unsigned<32> v = X;")

    def test_write_to_rom_rejected(self):
        with pytest.raises(CoreDSLError, match="constant register"):
            check(
                "SBOX[0] = 1;",
                state="const unsigned<8> SBOX[2] = {1, 2};",
            )

    def test_write_to_encoding_field_rejected(self):
        with pytest.raises(CoreDSLError, match="encoding field"):
            check("rs1 = 3;", encoding="20'd0 :: rs1[4:0] :: 7'b0001011")

    def test_custom_scalar_register_readwrite(self):
        check("ADDR = (unsigned<32>) (ADDR + 4);",
              state="register unsigned<32> ADDR;")

    def test_pc_readwrite(self):
        check("PC = (unsigned<32>) (PC + 4);")


class TestFunctionChecks:
    ROTR = """
    unsigned<32> rotr(unsigned<32> x, unsigned<5> amount) {
      return (unsigned<32>) ((x >> amount) | (x << (unsigned<6>) (32 - amount)));
    }
    """

    def test_valid_call(self):
        check("unsigned<32> v = rotr(X[rs1], 31);",
              functions=self.ROTR,
              encoding="20'd0 :: rs1[4:0] :: 7'b0001011")

    def test_wrong_arity(self):
        with pytest.raises(CoreDSLError, match="expects 2 arguments"):
            check("unsigned<32> v = rotr(PC);", functions=self.ROTR)

    def test_argument_narrowing_rejected(self):
        with pytest.raises(CoreDSLError, match="argument"):
            check("unsigned<33> wide = 0; unsigned<32> v = rotr(wide, 1);",
                  functions=self.ROTR)

    def test_unknown_function(self):
        with pytest.raises(CoreDSLError, match="unknown function"):
            check("unsigned<32> v = nothere(1);")

    def test_void_function_as_value_rejected(self):
        with pytest.raises(CoreDSLError, match="void function"):
            check("unsigned<32> v = donothing();",
                  functions="void donothing() { }")

    def test_return_type_checked(self):
        with pytest.raises(CoreDSLError):
            check("unsigned<8> v = bad(1);",
                  functions="unsigned<8> bad(unsigned<8> x) { return 300; }")


class TestSpawnPlacement:
    def test_spawn_in_instruction_ok(self):
        isa = check("unsigned<32> v = X[rs1]; spawn { X[rd] = v; }",
                    encoding="15'd0 :: rs1[4:0] :: rd[4:0] :: 7'b0001011")
        assert isa.instructions["t"].has_spawn

    def test_spawn_in_always_rejected(self):
        text = """
        import "RV32I.core_desc"
        InstructionSet T extends RV32I {
          always { a { spawn { PC = 0; } } }
        }
        """
        with pytest.raises(CoreDSLError, match="spawn"):
            elaborate(text)

    def test_spawn_in_function_rejected(self):
        with pytest.raises(CoreDSLError, match="spawn"):
            check("unsigned<8> v = 0;",
                  functions="void f() { spawn { } }")


class TestLocals:
    def test_redeclaration_rejected(self):
        with pytest.raises(CoreDSLError, match="redeclaration"):
            check("unsigned<8> v = 0; unsigned<8> v = 1;")

    def test_scoping_in_blocks(self):
        check("if (1) { unsigned<8> v = 0; } if (1) { unsigned<8> v = 1; }")

    def test_for_scope(self):
        check("for (int i = 0; i < 4; i += 1) { } for (int i = 0; i < 4; i += 1) { }")
