"""Unit tests for the encoding-overlap predicate (``Encoding.overlaps``).

The predicate underpins both the intra-ISA LN010 lint and the cross-ISAX
LN011 lint: two encodings overlap iff some 32-bit instruction word matches
both, i.e. their fixed bits agree wherever both encodings constrain a bit.
"""

from repro.frontend import ast_nodes as ast
from repro.frontend.elaboration import Encoding


def encoding(*components) -> Encoding:
    return Encoding(list(components))


def bits(width: int, value: int) -> ast.EncBits:
    return ast.EncBits(width=width, value=value)


def field(name: str, hi: int, lo: int) -> ast.EncField:
    return ast.EncField(name=name, hi=hi, lo=lo)


def rtype(opcode: int, funct3: int, funct7: int = 0) -> Encoding:
    return encoding(
        bits(7, funct7), field("rs2", 4, 0), field("rs1", 4, 0),
        bits(3, funct3), field("rd", 4, 0), bits(7, opcode),
    )


class TestOverlapsPredicate:
    def test_identical_encodings_overlap(self):
        assert rtype(0x0B, 1).overlaps(rtype(0x0B, 1))

    def test_reflexive(self):
        enc = rtype(0x2B, 5)
        assert enc.overlaps(enc)

    def test_symmetric(self):
        a, b = rtype(0x0B, 1), rtype(0x0B, 1, funct7=3)
        assert a.overlaps(b) == b.overlaps(a)

    def test_disjoint_fixed_bits_do_not_overlap(self):
        assert not rtype(0x0B, 1).overlaps(rtype(0x0B, 2))
        assert not rtype(0x0B, 1).overlaps(rtype(0x2B, 1))

    def test_fully_disjoint_masks_overlap(self):
        # One encoding fixes only the low opcode bits, the other only the
        # high funct7 bits: the word 0b0..0_0001011 with funct7==0 matches
        # both, so they overlap even though their masks share no bit.
        low_only = encoding(field("imm", 24, 0), bits(7, 0x0B))
        high_only = encoding(bits(7, 0), field("rest", 24, 0))
        assert low_only.overlaps(high_only)

    def test_partially_overlapping_dont_care_bits(self):
        # a fixes funct3 and opcode; b fixes funct7 and opcode with the
        # funct3 bits as don't-care.  Common fixed bits (the opcode) agree,
        # so a word with a's funct3 and b's funct7 matches both.
        a = rtype(0x0B, 3)                       # funct7 = 0 fixed
        b = encoding(bits(7, 0), field("rs2", 4, 0), field("rs1", 4, 0),
                     field("f3", 2, 0), field("rd", 4, 0), bits(7, 0x0B))
        assert a.overlaps(b)

    def test_partial_dont_care_disagreeing_fixed_bits(self):
        # Same shapes, but the common fixed bits (funct7) disagree.
        a = rtype(0x0B, 3, funct7=1)
        b = encoding(bits(7, 2), field("rs2", 4, 0), field("rs1", 4, 0),
                     field("f3", 2, 0), field("rd", 4, 0), bits(7, 0x0B))
        assert not a.overlaps(b)

    def test_overlap_witness_word_matches_both(self):
        a = rtype(0x0B, 1)
        b = rtype(0x0B, 1, funct7=0)
        assert a.overlaps(b)
        # Construct the witness: all operand bits zero.
        word = a.match
        assert a.matches(word) and b.matches(word)
