"""Tests for the language extensions the paper lists as planned work
(Section 2.4): while / do-while loops and switch statements."""

import pytest

from repro.frontend import elaborate
from repro.lowering import convert_to_lil, lower_isa
from repro.sim import ArchState, CoreDSLInterpreter
from repro.utils.diagnostics import CoreDSLError


def build(behavior, state=""):
    source = f"""
    import "RV32I.core_desc"
    InstructionSet T extends RV32I {{
      architectural_state {{ {state} }}
      instructions {{
        t {{
          encoding: 10'd0 :: rs2[4:0] :: rs1[4:0] :: rd[4:0] :: 7'b0001011;
          behavior: {{ {behavior} }}
        }}
      }}
    }}
    """
    return elaborate(source)


def run(isa, rs1=0, rs2=0, rd=6):
    interp = CoreDSLInterpreter(isa)
    state = ArchState(isa)
    state.write_x(3, rs1)
    state.write_x(4, rs2)
    enc = isa.instructions["t"].encoding
    interp.execute_instruction(
        state, "t", enc.encode({"rs1": 3, "rs2": 4, "rd": rd})
    )
    return state.read_x(rd)


def lower(isa):
    lowered = lower_isa(isa)
    return convert_to_lil(isa, lowered.instructions["t"])


class TestWhile:
    def test_while_loop_unrolls(self):
        isa = build(
            "unsigned<32> acc = 0; int i = 0;"
            "while (i < 5) { acc = (unsigned<32>) (acc + X[rs1]); i += 1; }"
            "X[rd] = acc;"
        )
        graph = lower(isa)
        assert sum(1 for op in graph.operations
                   if op.name == "comb.add") >= 4
        assert run(isa, rs1=3) == 15

    def test_do_while_executes_at_least_once(self):
        isa = build(
            "unsigned<32> acc = 0; int i = 10;"
            "do { acc = (unsigned<32>) (acc + 1); i += 1; } while (i < 5);"
            "X[rd] = acc;"
        )
        assert run(isa) == 1
        lower(isa)  # synthesizable: one unrolled body

    def test_while_false_never_runs(self):
        isa = build(
            "unsigned<32> acc = 7;"
            "while (0) { acc = 0; }"
            "X[rd] = acc;"
        )
        assert run(isa) == 7

    def test_dynamic_while_rejected_for_synthesis(self):
        isa = build(
            "unsigned<32> v = X[rs1];"
            "while (v != 0) { v = (unsigned<32>) (v >> 1); }"
            "X[rd] = v;"
        )
        with pytest.raises(CoreDSLError, match="trip count"):
            lower(isa)


class TestSwitch:
    SWITCH = (
        "unsigned<2> sel = X[rs2][1:0];"
        "unsigned<32> out = 0;"
        "switch (sel) {"
        "  case 0: out = 10; break;"
        "  case 1: out = (unsigned<32>) (X[rs1] + 1); break;"
        "  default: out = 99; break;"
        "}"
        "X[rd] = out;"
    )

    def test_interpreted_semantics(self):
        isa = build(self.SWITCH)
        assert run(isa, rs2=0) == 10
        assert run(isa, rs1=41, rs2=1) == 42
        assert run(isa, rs2=2) == 99
        assert run(isa, rs2=3) == 99

    def test_lowers_to_mux_chain(self):
        isa = build(self.SWITCH)
        graph = lower(isa)
        assert any(op.name == "comb.mux" for op in graph.operations)
        assert any(op.name == "comb.icmp" for op in graph.operations)

    def test_switch_without_default(self):
        isa = build(
            "unsigned<32> out = 5;"
            "switch (X[rs2][0]) { case 1: out = 6; break; }"
            "X[rd] = out;"
        )
        assert run(isa, rs2=0) == 5
        assert run(isa, rs2=1) == 6

    def test_constant_selector_folds(self):
        isa = build(
            "unsigned<32> out = 0;"
            "switch (2'd1) { case 0: out = 1; break; case 1: out = 2; break; }"
            "X[rd] = out;"
        )
        graph = lower(isa)
        # The whole switch folds to the selected arm: no comparison left.
        assert not any(op.name == "comb.icmp" for op in graph.operations)
        assert run(isa) == 2

    def test_fallthrough_rejected(self):
        with pytest.raises(CoreDSLError, match="break"):
            build(
                "unsigned<32> out = 0;"
                "switch (X[rs1][0]) { case 0: out = 1; case 1: out = 2; break; }"
            )

    def test_non_constant_label_rejected(self):
        with pytest.raises(CoreDSLError, match="compile-time constants"):
            build(
                "unsigned<32> out = 0;"
                "switch (X[rs1][0]) { case X[rs2][0]: out = 1; break; }"
            )

    def test_unrepresentable_label_rejected(self):
        with pytest.raises(CoreDSLError, match="representable"):
            build(
                "unsigned<1> sel = X[rs1][0];"
                "unsigned<32> out = 0;"
                "switch (sel) { case 5: out = 1; break; }"
            )

    def test_duplicate_default_rejected(self):
        with pytest.raises(CoreDSLError, match="default"):
            build(
                "switch (X[rs1][0]) { default: break; default: break; }"
            )

    def test_switch_arm_writing_state(self):
        isa = build(
            "switch (X[rs2][0]) {"
            "  case 0: ADDR = 1; break;"
            "  case 1: ADDR = 2; break;"
            "}"
            "X[rd] = ADDR;",
            state="register unsigned<32> ADDR;",
        )
        graph = lower(isa)
        writes = [op for op in graph.operations
                  if op.name == "lil.write_custreg"]
        assert len(writes) == 1  # merged into one predicated write
        assert run(isa, rs2=1) == 2
