"""Tests for the CoreDSL tokenizer."""

import pytest

from repro.frontend.lexer import tokenize
from repro.utils.diagnostics import CoreDSLError


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasics:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        toks = tokenize("InstructionSet my_isa extends RV32I")
        assert [t.kind for t in toks[:-1]] == ["keyword", "ident", "keyword", "ident"]

    def test_punctuation(self):
        assert texts("{ } ( ) [ ] ; ,") == ["{", "}", "(", ")", "[", "]", ";", ","]

    def test_multichar_operators_maximal_munch(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("x::y") == ["x", "::", "y"]
        assert texts("i += 8") == ["i", "+=", "8"]
        assert texts("--COUNT") == ["--", "COUNT"]

    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CoreDSLError):
            tokenize("/* never ends")

    def test_string_literal(self):
        toks = tokenize('import "RV32I.core_desc"')
        assert toks[1].kind == "string"
        assert toks[1].text == "RV32I.core_desc"

    def test_locations(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3


class TestNumbers:
    def test_decimal(self):
        tok = tokenize("42")[0]
        assert tok.kind == "number" and tok.value == 42

    def test_hex(self):
        assert tokenize("0xcafe")[0].value == 0xCAFE

    def test_binary(self):
        assert tokenize("0b1011")[0].value == 0b1011

    def test_underscores(self):
        assert tokenize("1_000_000")[0].value == 1000000

    def test_verilog_decimal(self):
        tok = tokenize("6'd42")[0]
        assert tok.kind == "verilog_number"
        assert tok.value == 42 and tok.width == 6 and not tok.signed

    def test_verilog_binary(self):
        tok = tokenize("3'b111")[0]
        assert tok.value == 7 and tok.width == 3

    def test_verilog_hex(self):
        tok = tokenize("12'hfff")[0]
        assert tok.value == 0xFFF and tok.width == 12

    def test_verilog_signed(self):
        tok = tokenize("8'shff")[0]
        assert tok.signed and tok.width == 8 and tok.value == 0xFF

    def test_verilog_overflow_rejected(self):
        with pytest.raises(CoreDSLError):
            tokenize("3'd9")

    def test_verilog_bad_digits_rejected(self):
        with pytest.raises(CoreDSLError):
            tokenize("4'b3")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CoreDSLError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(CoreDSLError):
            tokenize('"no end')
