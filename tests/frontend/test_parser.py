"""Parser tests, covering the grammar of paper Figure 2."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_description
from repro.frontend.types import signed, unsigned
from repro.utils.diagnostics import CoreDSLError


def parse_single_set(text):
    desc = parse_description(text)
    assert len(desc.instruction_sets) == 1
    return desc.instruction_sets[0]


class TestTopLevel:
    def test_imports(self):
        desc = parse_description('import "RV32I.core_desc";\nInstructionSet A {}')
        assert desc.imports == ["RV32I.core_desc"]

    def test_import_without_semicolon(self):
        desc = parse_description('import "RV32I.core_desc"\nInstructionSet A {}')
        assert desc.imports == ["RV32I.core_desc"]

    def test_instruction_set_extends(self):
        iset = parse_single_set("InstructionSet X extends RV32I {}")
        assert iset.name == "X"
        assert iset.extends == "RV32I"

    def test_core_provides(self):
        desc = parse_description("Core MyCore provides A, B {}")
        assert desc.cores[0].name == "MyCore"
        assert desc.cores[0].provides == ["A", "B"]

    def test_garbage_rejected(self):
        with pytest.raises(CoreDSLError):
            parse_description("bogus")


class TestArchitecturalState:
    def test_register_declaration(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state {"
            " register unsigned<32> COUNT; } }"
        )
        decl = iset.body.state[0]
        assert decl.storage == "register"
        assert decl.name == "COUNT"
        assert not decl.is_signed

    def test_multiple_declarators(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state {"
            " register unsigned<32> START_PC, END_PC, COUNT; } }"
        )
        names = [d.name for d in iset.body.state]
        assert names == ["START_PC", "END_PC", "COUNT"]

    def test_array_with_attribute(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state {"
            " register unsigned<32> X[32] [[is_main_reg]]; } }"
        )
        decl = iset.body.state[0]
        assert decl.array_size_expr is not None
        assert decl.attributes == ["is_main_reg"]

    def test_scalar_with_attribute(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state {"
            " register unsigned<32> PC [[is_pc]]; } }"
        )
        assert iset.body.state[0].attributes == ["is_pc"]

    def test_parameter_declaration(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state { unsigned int XLEN = 32; } }"
        )
        decl = iset.body.state[0]
        assert decl.storage == "param"
        assert decl.init is not None

    def test_extern_address_space(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state {"
            " extern unsigned<8> MEM[4294967296] [[is_main_mem]]; } }"
        )
        assert iset.body.state[0].storage == "extern"

    def test_const_rom_with_initializer_list(self):
        iset = parse_single_set(
            "InstructionSet A { architectural_state {"
            " const unsigned<8> SBOX[4] = {1, 2, 3, 4}; } }"
        )
        decl = iset.body.state[0]
        assert decl.storage == "const"
        assert len(decl.init_list) == 4


class TestEncodings:
    ISAX = """
    InstructionSet A {
      instructions {
        foo {
          encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
          behavior: { }
        }
      }
    }
    """

    def test_components(self):
        iset = parse_single_set(self.ISAX)
        enc = iset.body.instructions[0].encoding
        assert isinstance(enc[0], ast.EncBits)
        assert enc[0].width == 7 and enc[0].value == 0
        assert isinstance(enc[1], ast.EncField)
        assert enc[1].name == "rs2" and enc[1].hi == 4 and enc[1].lo == 0

    def test_unsized_literal_rejected(self):
        bad = "InstructionSet A { instructions { foo { encoding: 15; behavior: {} } } }"
        with pytest.raises(CoreDSLError):
            parse_description(bad)


class TestStatements:
    def wrap(self, body):
        text = (
            "InstructionSet A { instructions { foo {"
            " encoding: 25'd0 :: 7'b0001011;"
            f" behavior: {{ {body} }} }} }} }}"
        )
        iset = parse_single_set(text)
        return iset.body.instructions[0].behavior.statements

    def test_var_decl_with_init(self):
        (stmt,) = self.wrap("signed<32> res = 0;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.is_signed and stmt.name == "res"

    def test_assignment(self):
        (stmt,) = self.wrap("COUNT = 5;")
        assert isinstance(stmt, ast.Assign) and stmt.op == "="

    def test_compound_assignment(self):
        (stmt,) = self.wrap("res += prod;")
        assert stmt.op == "+="

    def test_prefix_decrement(self):
        (stmt,) = self.wrap("--COUNT;")
        assert isinstance(stmt, ast.Assign) and stmt.op == "-="

    def test_postfix_increment(self):
        (stmt,) = self.wrap("ADDR++;")
        assert isinstance(stmt, ast.Assign) and stmt.op == "+="

    def test_if_else(self):
        (stmt,) = self.wrap("if (a) { b = 1; } else { b = 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_body is not None

    def test_for_loop(self):
        (stmt,) = self.wrap("for (int i = 0; i < 32; i += 8) { }")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.VarDecl)

    def test_spawn_block(self):
        (stmt,) = self.wrap("spawn { X[rd] = (unsigned) res; }")
        assert isinstance(stmt, ast.SpawnStmt)

    def test_indexed_assignment(self):
        (stmt,) = self.wrap("X[rd] = val;")
        assert isinstance(stmt.target, ast.IndexExpr)

    def test_range_assignment(self):
        (stmt,) = self.wrap("MEM[addr+3:addr] = val;")
        assert isinstance(stmt.target, ast.RangeExpr)


class TestExpressions:
    def expr(self, text):
        src = (
            "InstructionSet A { instructions { foo {"
            " encoding: 25'd0 :: 7'b0001011;"
            f" behavior: {{ x = {text}; }} }} }} }}"
        )
        desc = parse_description(src)
        stmt = desc.instruction_sets[0].body.instructions[0].behavior.statements[0]
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert e.op == "+" and e.rhs.op == "*"

    def test_precedence_shift_over_concat(self):
        e = self.expr("a :: b << 2")
        assert e.op == "::" and e.rhs.op == "<<"

    def test_precedence_concat_over_comparison(self):
        e = self.expr("a :: b == c :: d")
        assert e.op == "==" and e.lhs.op == "::" and e.rhs.op == "::"

    def test_conditional(self):
        e = self.expr("a ? b : c")
        assert isinstance(e, ast.Conditional)

    def test_cast_sign_only(self):
        e = self.expr("(unsigned) res")
        assert isinstance(e, ast.Cast)
        assert e.width_expr is None and not e.target_signed

    def test_cast_with_width(self):
        e = self.expr("(signed<16>) v")
        assert isinstance(e, ast.Cast) and e.target_signed

    def test_cast_alias(self):
        e = self.expr("(int) v")
        assert isinstance(e, ast.Cast) and e.target_signed

    def test_cast_binds_tighter_than_mul(self):
        e = self.expr("(signed) a * (signed) b")
        assert e.op == "*"
        assert isinstance(e.lhs, ast.Cast) and isinstance(e.rhs, ast.Cast)

    def test_nested_subscripts(self):
        e = self.expr("X[rs1][i+7:i]")
        assert isinstance(e, ast.RangeExpr)
        assert isinstance(e.base, ast.IndexExpr)

    def test_single_bit_index(self):
        e = self.expr("v[3]")
        assert isinstance(e, ast.IndexExpr)

    def test_call_with_args(self):
        e = self.expr("rotr(a, 31)")
        assert isinstance(e, ast.FunctionCall)
        assert e.callee == "rotr" and len(e.args) == 2

    def test_verilog_literal_type(self):
        e = self.expr("3'b111")
        assert e.explicit_type == unsigned(3)

    def test_parenthesized(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*" and e.lhs.op == "+"

    def test_unary_minus(self):
        e = self.expr("-a")
        assert isinstance(e, ast.UnaryOp) and e.op == "-"

    def test_logical_ops(self):
        e = self.expr("a != 0 && b == c")
        assert e.op == "&&"


class TestFunctions:
    def test_function_definition(self):
        text = """
        InstructionSet A {
          functions {
            unsigned<32> rotr(unsigned<32> x, unsigned<5> amount) {
              return (unsigned<32>) ((x >> amount) | (x << (32 - amount)));
            }
          }
        }
        """
        iset = parse_single_set(text)
        fn = iset.body.functions[0]
        assert fn.name == "rotr"
        assert len(fn.params) == 2
        assert fn.return_width_expr is not None

    def test_void_function(self):
        text = "InstructionSet A { functions { void nop() { } } }"
        iset = parse_single_set(text)
        assert iset.body.functions[0].return_width_expr is None


class TestAlways:
    def test_always_block(self):
        text = "InstructionSet A { always { zol { PC = START_PC; } } }"
        iset = parse_single_set(text)
        assert iset.body.always_blocks[0].name == "zol"
