"""Import resolution from the filesystem and the builtin library."""

import pytest

from repro.frontend import elaborate
from repro.frontend.stdlib import BUILTIN_SOURCES
from repro.utils.diagnostics import CoreDSLError


class TestBuiltinLibrary:
    def test_rv32i_registered(self):
        assert "RV32I.core_desc" in BUILTIN_SOURCES

    def test_base_state_attributes(self):
        isa = elaborate('import "RV32I.core_desc"\n'
                        "InstructionSet A extends RV32I {}")
        assert isa.main_reg.attributes == ["is_main_reg"]
        assert isa.pc.attributes == ["is_pc"]
        assert isa.main_mem.attributes == ["is_main_mem"]
        assert isa.main_mem.element.width == 8


class TestFilesystemImports:
    def test_import_from_directory(self, tmp_path):
        (tmp_path / "lib.core_desc").write_text(
            "InstructionSet Lib { architectural_state {"
            " register unsigned<8> R; } }",
            encoding="utf-8",
        )
        isa = elaborate(
            'import "lib.core_desc"\nInstructionSet A extends Lib {}',
            import_dirs=[str(tmp_path)],
        )
        assert "R" in isa.state

    def test_transitive_imports(self, tmp_path):
        (tmp_path / "base.core_desc").write_text(
            "InstructionSet Base { architectural_state {"
            " register unsigned<8> B; } }",
            encoding="utf-8",
        )
        (tmp_path / "mid.core_desc").write_text(
            'import "base.core_desc"\n'
            "InstructionSet Mid extends Base { architectural_state {"
            " register unsigned<8> M; } }",
            encoding="utf-8",
        )
        isa = elaborate(
            'import "mid.core_desc"\nInstructionSet A extends Mid {}',
            import_dirs=[str(tmp_path)],
        )
        assert {"B", "M"} <= set(isa.state)

    def test_repeated_import_loaded_once(self, tmp_path):
        (tmp_path / "once.core_desc").write_text(
            "InstructionSet Once { architectural_state {"
            " register unsigned<8> O; } }",
            encoding="utf-8",
        )
        source = (
            'import "once.core_desc"\n'
            'import "once.core_desc"\n'
            "InstructionSet A extends Once {}"
        )
        isa = elaborate(source, import_dirs=[str(tmp_path)])
        assert "O" in isa.state

    def test_extra_sources_take_precedence(self, tmp_path):
        (tmp_path / "dup.core_desc").write_text(
            "InstructionSet D { architectural_state {"
            " register unsigned<8> FROM_FILE; } }",
            encoding="utf-8",
        )
        extra = {"dup.core_desc":
                 "InstructionSet D { architectural_state {"
                 " register unsigned<8> FROM_EXTRA; } }"}
        isa = elaborate(
            'import "dup.core_desc"\nInstructionSet A extends D {}',
            extra_sources=extra, import_dirs=[str(tmp_path)],
        )
        assert "FROM_EXTRA" in isa.state
        assert "FROM_FILE" not in isa.state

    def test_missing_import(self):
        with pytest.raises(CoreDSLError, match="cannot resolve"):
            elaborate('import "ghost.core_desc"\nInstructionSet A {}')
