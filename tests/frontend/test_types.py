"""Tests for the bitwidth-aware CoreDSL type system (paper Section 2.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend import types as ty
from repro.frontend.types import signed, unsigned
from repro.utils.diagnostics import CoreDSLError


class TestIntType:
    def test_ranges(self):
        assert unsigned(4).min_value == 0
        assert unsigned(4).max_value == 15
        assert signed(4).min_value == -8
        assert signed(4).max_value == 7

    def test_str(self):
        assert str(signed(7)) == "signed<7>"
        assert str(unsigned(32)) == "unsigned<32>"

    def test_zero_width_rejected(self):
        with pytest.raises(CoreDSLError):
            unsigned(0)

    def test_aliases(self):
        assert ty.ALIASES["int"] == signed(32)
        assert ty.ALIASES["char"] == signed(8)
        assert ty.ALIASES["bool"] == unsigned(1)


class TestImplicitConversion:
    """The paper's examples: u4 = u5 and u4 = s4 are forbidden."""

    def test_narrowing_forbidden(self):
        assert not unsigned(5).implicitly_convertible_to(unsigned(4))

    def test_sign_loss_forbidden(self):
        assert not signed(4).implicitly_convertible_to(unsigned(4))
        assert not signed(4).implicitly_convertible_to(unsigned(64))

    def test_widening_allowed(self):
        assert unsigned(4).implicitly_convertible_to(unsigned(5))
        assert signed(4).implicitly_convertible_to(signed(8))

    def test_unsigned_to_wider_signed(self):
        assert unsigned(4).implicitly_convertible_to(signed(5))
        assert not unsigned(4).implicitly_convertible_to(signed(4))

    def test_identity(self):
        assert unsigned(8).implicitly_convertible_to(unsigned(8))

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.booleans(),
        st.booleans(),
    )
    def test_conversion_iff_range_inclusion(self, w1, w2, s1, s2):
        a = ty.IntType(w1, s1)
        b = ty.IntType(w2, s2)
        expected = a.min_value >= b.min_value and a.max_value <= b.max_value
        assert a.implicitly_convertible_to(b) == expected


class TestOperatorResults:
    def test_paper_example_addition(self):
        """u5 + s4 yields signed<7> (paper Section 2.3)."""
        assert ty.add_result(unsigned(5), signed(4)) == signed(7)

    def test_same_sign_addition(self):
        assert ty.add_result(unsigned(8), unsigned(8)) == unsigned(9)
        assert ty.add_result(signed(8), signed(4)) == signed(9)

    def test_subtraction_always_signed(self):
        assert ty.sub_result(unsigned(8), unsigned(8)) == signed(9)

    def test_multiplication(self):
        assert ty.mul_result(unsigned(8), unsigned(8)) == unsigned(16)
        assert ty.mul_result(signed(16), signed(16)) == signed(32)
        assert ty.mul_result(unsigned(8), signed(8)) == signed(17)

    def test_bitwise(self):
        assert ty.bitwise_result(unsigned(8), unsigned(4)) == unsigned(8)
        assert ty.bitwise_result(signed(8), signed(16)) == signed(16)

    def test_shift_left_constant(self):
        assert ty.shl_result(unsigned(5), unsigned(1), shift_const=1) == unsigned(6)

    def test_shift_left_dynamic(self):
        # Unknown 3-bit shift amount: up to 7 extra bits.
        assert ty.shl_result(unsigned(8), unsigned(3)) == unsigned(15)

    def test_shift_right_keeps_type(self):
        assert ty.shr_result(signed(32), unsigned(5)) == signed(32)

    def test_negation(self):
        assert ty.neg_result(unsigned(8)) == signed(9)
        assert ty.neg_result(signed(8)) == signed(9)

    def test_concat_unsigned(self):
        assert ty.concat_result(unsigned(5), unsigned(1)) == unsigned(6)
        assert ty.concat_result(signed(4), unsigned(4)) == unsigned(8)

    def test_slice(self):
        assert ty.slice_result(7, 0) == unsigned(8)
        assert ty.slice_result(3, 3) == unsigned(1)

    def test_slice_invalid(self):
        with pytest.raises(CoreDSLError):
            ty.slice_result(0, 3)

    def test_width_explosion_rejected(self):
        with pytest.raises(CoreDSLError):
            ty.shl_result(unsigned(32), unsigned(32))

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=32),
        st.booleans(),
        st.booleans(),
    )
    def test_add_result_covers_all_values(self, w1, w2, s1, s2):
        a, b = ty.IntType(w1, s1), ty.IntType(w2, s2)
        result = ty.add_result(a, b)
        assert result.can_represent(a.min_value + b.min_value)
        assert result.can_represent(a.max_value + b.max_value)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.booleans(),
        st.booleans(),
    )
    def test_mul_result_covers_all_values(self, w1, w2, s1, s2):
        a, b = ty.IntType(w1, s1), ty.IntType(w2, s2)
        result = ty.mul_result(a, b)
        for x in (a.min_value, a.max_value):
            for y in (b.min_value, b.max_value):
                assert result.can_represent(x * y)

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=32),
        st.booleans(),
        st.booleans(),
    )
    def test_common_supertype_covers_both(self, w1, w2, s1, s2):
        a, b = ty.IntType(w1, s1), ty.IntType(w2, s2)
        result = ty.common_supertype(a, b)
        assert a.implicitly_convertible_to(result)
        assert b.implicitly_convertible_to(result)


class TestLiterals:
    def test_minimal_unsigned_type(self):
        assert ty.literal_type(0) == unsigned(1)
        assert ty.literal_type(1) == unsigned(1)
        assert ty.literal_type(42) == unsigned(6)
        assert ty.literal_type(0xCAFE) == unsigned(16)

    def test_negative_rejected(self):
        with pytest.raises(CoreDSLError):
            ty.literal_type(-1)
