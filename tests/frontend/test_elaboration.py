"""Elaboration tests: imports, inheritance, parameters, encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend import elaborate
from repro.frontend.elaboration import Encoding
from repro.frontend.parser import parse_description
from repro.frontend.types import unsigned
from repro.utils.diagnostics import CoreDSLError

DOTPROD = '''
import "RV32I.core_desc"
InstructionSet X_DOTP extends RV32I {
  instructions {
    dotp {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd0 :: rd[4:0] :: 7'b0001011;
        behavior: {
          signed<32> res = 0;
          for (int i = 0; i < 32; i += 8) {
            signed<16> prod = (signed) X[rs1][i+7:i] * (signed) X[rs2][i+7:i];
            res += prod;
          }
          X[rd] = (unsigned) res;
        }
    }
  }
}
'''


class TestBuiltinImport:
    def test_rv32i_state(self):
        isa = elaborate(DOTPROD)
        assert isa.main_reg is not None and isa.main_reg.name == "X"
        assert isa.main_reg.size == 32
        assert isa.main_reg.element == unsigned(32)
        assert isa.pc is not None and isa.pc.name == "PC"
        assert isa.main_mem is not None and isa.main_mem.name == "MEM"

    def test_xlen_parameter(self):
        isa = elaborate(DOTPROD)
        assert isa.parameters["XLEN"] == 32

    def test_unresolvable_import(self):
        with pytest.raises(CoreDSLError, match="cannot resolve import"):
            elaborate('import "nothere.core_desc"\nInstructionSet A {}')

    def test_extra_sources(self):
        extra = {"my.core_desc": "InstructionSet Base { }"}
        isa = elaborate(
            'import "my.core_desc"\nInstructionSet A extends Base {}',
            extra_sources=extra,
        )
        assert isa.name == "A"


class TestInheritance:
    THREE_LEVEL = """
    InstructionSet A {
      architectural_state { register unsigned<8> RA; }
    }
    InstructionSet B extends A {
      architectural_state { register unsigned<8> RB; }
    }
    InstructionSet C extends B {
      architectural_state { register unsigned<8> RC; }
    }
    """

    def test_state_merged_along_chain(self):
        isa = elaborate(self.THREE_LEVEL, top="C")
        assert set(isa.state) >= {"RA", "RB", "RC"}

    def test_top_defaults_to_last_set(self):
        isa = elaborate(self.THREE_LEVEL)
        assert isa.name == "C"

    def test_intermediate_top(self):
        isa = elaborate(self.THREE_LEVEL, top="B")
        assert "RB" in isa.state and "RC" not in isa.state

    def test_unknown_parent(self):
        with pytest.raises(CoreDSLError, match="unknown instruction set"):
            elaborate("InstructionSet A extends Nope {}")

    def test_cyclic_extends(self):
        text = """
        InstructionSet A extends B {}
        InstructionSet B extends A {}
        """
        with pytest.raises(CoreDSLError, match="cyclic"):
            elaborate(text, top="A")


class TestCores:
    def test_core_provides_multiple_sets(self):
        text = """
        InstructionSet A { architectural_state { register unsigned<8> RA; } }
        InstructionSet B { architectural_state { register unsigned<8> RB; } }
        Core MyCore provides A, B { }
        """
        isa = elaborate(text)
        assert isa.name == "MyCore"
        assert "RA" in isa.state and "RB" in isa.state

    def test_core_parameter_override(self):
        text = """
        InstructionSet A {
          architectural_state {
            unsigned int SIZE = 4;
            register unsigned<8> BUF[SIZE];
          }
        }
        Core Big provides A {
          architectural_state { unsigned int SIZE = 16; }
        }
        """
        # Parameter assignment in the core is evaluated before storage
        # declarations are resolved (elaboration phase, paper Section 2.2).
        isa = elaborate(text, top="Big")
        assert isa.parameters["SIZE"] == 16
        assert isa.state["BUF"].size == 16

    def test_shared_parent_not_duplicated(self):
        text = """
        InstructionSet Base { architectural_state { register unsigned<8> R0; } }
        InstructionSet A extends Base { }
        InstructionSet B extends Base { }
        Core C provides A, B { }
        """
        isa = elaborate(text)
        assert isa.name == "C"


class TestParameters:
    def test_parameter_in_width(self):
        text = """
        InstructionSet A {
          architectural_state {
            unsigned int W = 16;
            register unsigned<W> R;
          }
        }
        """
        isa = elaborate(text)
        assert isa.state["R"].element == unsigned(16)

    def test_parameter_expression(self):
        text = """
        InstructionSet A {
          architectural_state {
            unsigned int W = 8;
            unsigned int W2 = W * 2 + 1;
            register unsigned<W2> R;
          }
        }
        """
        isa = elaborate(text)
        assert isa.state["R"].element.width == 17

    def test_non_constant_parameter(self):
        with pytest.raises(CoreDSLError, match="compile-time constant"):
            elaborate(
                "InstructionSet A { architectural_state {"
                " unsigned int W = Q; } }"
            )


class TestStateElaboration:
    def test_rom_initializers(self):
        text = """
        InstructionSet A {
          architectural_state {
            const unsigned<8> SBOX[4] = {0x63, 0x7c, 0x77, 0x7b};
          }
        }
        """
        isa = elaborate(text)
        info = isa.state["SBOX"]
        assert info.kind == "rom"
        assert info.init_values == [0x63, 0x7C, 0x77, 0x7B]

    def test_rom_size_inferred(self):
        text = (
            "InstructionSet A { architectural_state {"
            " const unsigned<8> T[] = {1, 2, 3}; } }"
        )
        # Size comes from the initializer list when omitted... the grammar
        # requires a size expression, so provide one and check the mismatch.
        with pytest.raises(CoreDSLError):
            elaborate(
                "InstructionSet A { architectural_state {"
                " const unsigned<8> T[4] = {1, 2}; } }"
            )

    def test_rom_without_initializer_rejected(self):
        with pytest.raises(CoreDSLError, match="initializer"):
            elaborate(
                "InstructionSet A { architectural_state {"
                " const unsigned<8> T[4]; } }"
            )

    def test_redefinition_rejected(self):
        with pytest.raises(CoreDSLError, match="redefinition"):
            elaborate(
                "InstructionSet A { architectural_state {"
                " register unsigned<8> R; register unsigned<8> R; } }"
            )

    def test_custom_state_excludes_base(self):
        isa = elaborate(DOTPROD)
        assert isa.custom_state() == []


class TestEncodingResolution:
    def test_dotprod_pattern(self):
        isa = elaborate(DOTPROD)
        enc = isa.instructions["dotp"].encoding
        assert enc.pattern == "0000000----------000-----0001011"

    def test_encode_decode_roundtrip(self):
        isa = elaborate(DOTPROD)
        enc = isa.instructions["dotp"].encoding
        word = enc.encode({"rs1": 7, "rs2": 13, "rd": 21})
        assert enc.matches(word)
        assert enc.decode(word) == {"rs1": 7, "rs2": 13, "rd": 21}

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_encode_decode_property(self, rs1, rs2, rd):
        isa = elaborate(DOTPROD)
        enc = isa.instructions["dotp"].encoding
        word = enc.encode({"rs1": rs1, "rs2": rs2, "rd": rd})
        assert enc.decode(word) == {"rs1": rs1, "rs2": rs2, "rd": rd}

    def test_wrong_total_width_rejected(self):
        text = """
        InstructionSet A {
          instructions { bad { encoding: 7'd0 :: 7'b0001011; behavior: {} } }
        }
        """
        with pytest.raises(CoreDSLError, match="bits"):
            elaborate(text)

    def test_split_immediate_field(self):
        """A field split across two placements (like RISC-V S-type imm)."""
        text = """
        InstructionSet A {
          instructions {
            s {
              encoding: imm[11:5] :: 10'd0 :: imm[4:0] :: 3'd0 :: 7'b0100011;
              behavior: { unsigned<12> v = imm; }
            }
          }
        }
        """
        isa = elaborate(text)
        enc = isa.instructions["s"].encoding
        assert enc.fields["imm"].width == 12
        word = enc.encode({"imm": 0xABC})
        assert enc.decode(word)["imm"] == 0xABC

    def test_overlap_detection(self):
        pattern_a = parse_description(
            "InstructionSet A { instructions {"
            " x { encoding: 25'd0 :: 7'b0001011; behavior: {} }"
            " y { encoding: 25'd0 :: 7'b0001011; behavior: {} }"
            " } }"
        )
        isa = elaborate(
            "InstructionSet A { instructions {"
            " x { encoding: 25'd0 :: 7'b0001011; behavior: {} }"
            " y { encoding: 25'd0 :: 7'b0001011; behavior: {} }"
            " } }"
        )
        assert isa.check_encoding_conflicts() == [("x", "y")]

    def test_distinct_encodings_no_conflict(self):
        isa = elaborate(
            "InstructionSet A { instructions {"
            " x { encoding: 22'd0 :: 3'd0 :: 7'b0001011; behavior: {} }"
            " y { encoding: 22'd0 :: 3'd1 :: 7'b0001011; behavior: {} }"
            " } }"
        )
        assert isa.check_encoding_conflicts() == []

    def test_field_shadowing_state_rejected(self):
        text = """
        import "RV32I.core_desc"
        InstructionSet A extends RV32I {
          instructions {
            bad { encoding: PC[24:0] :: 7'b0001011; behavior: {} }
          }
        }
        """
        with pytest.raises(CoreDSLError, match="shadows"):
            elaborate(text)


class TestSpawnDetection:
    def test_has_spawn_flag(self):
        text = """
        import "RV32I.core_desc"
        InstructionSet A extends RV32I {
          instructions {
            sqrt {
              encoding: 15'd0 :: rs1[4:0] :: rd[4:0] :: 7'b0001011;
              behavior: {
                unsigned<32> v = X[rs1];
                spawn { X[rd] = v; }
              }
            }
          }
        }
        """
        isa = elaborate(text)
        assert isa.instructions["sqrt"].has_spawn
