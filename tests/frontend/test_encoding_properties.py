"""Property-based tests of the encoding machinery over random layouts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ast_nodes as ast
from repro.frontend.elaboration import Encoding


@st.composite
def random_encoding_layout(draw):
    """A random legal 32-bit layout: constant runs and field slices."""
    components = []
    remaining = 32
    field_counter = 0
    while remaining > 0:
        width = draw(st.integers(1, min(remaining, 12)))
        if draw(st.booleans()) or field_counter >= 6:
            value = draw(st.integers(0, (1 << width) - 1))
            components.append(ast.EncBits(width=width, value=value))
        else:
            name = f"f{field_counter}"
            field_counter += 1
            lo = draw(st.integers(0, 4))
            components.append(
                ast.EncField(name=name, hi=lo + width - 1, lo=lo)
            )
        remaining -= width
    return components


@settings(max_examples=80, deadline=None)
@given(random_encoding_layout(), st.data())
def test_encode_decode_roundtrip(components, data):
    encoding = Encoding(components)
    values = {
        name: data.draw(st.integers(0, (1 << field.width) - 1),
                        label=f"field {name}")
        for name, field in encoding.fields.items()
    }
    # Mask out bits not covered by any placement (a field declared at
    # [lo+w-1:lo] with lo>0 never encodes its low bits).
    covered = {}
    for name, field in encoding.fields.items():
        mask = 0
        for placement in field.placements:
            for bit in range(placement.field_lo, placement.field_hi + 1):
                mask |= 1 << bit
        covered[name] = mask
    word = encoding.encode(values)
    decoded = encoding.decode(word)
    for name in values:
        assert decoded[name] == values[name] & covered[name]
    assert encoding.matches(word)


@settings(max_examples=60, deadline=None)
@given(random_encoding_layout())
def test_pattern_matches_mask(components):
    encoding = Encoding(components)
    pattern = encoding.pattern
    assert len(pattern) == 32
    for index, char in enumerate(pattern):
        bit = 31 - index
        if char == "-":
            assert not (encoding.mask >> bit) & 1
        else:
            assert (encoding.mask >> bit) & 1
            assert int(char) == (encoding.match >> bit) & 1


@settings(max_examples=60, deadline=None)
@given(random_encoding_layout(), st.integers(0, 2 ** 32 - 1))
def test_matches_iff_fixed_bits_agree(components, word):
    encoding = Encoding(components)
    expected = (word & encoding.mask) == encoding.match
    assert encoding.matches(word) == expected


@settings(max_examples=40, deadline=None)
@given(random_encoding_layout(), random_encoding_layout())
def test_overlap_is_symmetric(a_components, b_components):
    a = Encoding(a_components)
    b = Encoding(b_components)
    assert a.overlaps(b) == b.overlaps(a)
    assert a.overlaps(a)
