"""Tests for the SCAIE-V abstraction: interfaces (Table 1), datasheets,
cores, configs (Figures 8/9), modes, hazard, arbitration, integration."""

import pytest

from repro.scaiev import (
    CORES,
    InterfaceTiming,
    IsaxConfig,
    VirtualDatasheet,
    core_datasheet,
    standard_interfaces,
)
from repro.scaiev.arbitration import plan_arbitration
from repro.scaiev.config import Functionality, RegisterRequest, ScheduleEntry
from repro.scaiev.hazard import plan_scoreboard
from repro.scaiev.integrate import IntegrationError, integrate
from repro.scaiev.interfaces import (
    address_width,
    base_interface_of,
    custom_register_interfaces,
)
from repro.scaiev.regfile import CustomRegisterFile, build_register_files


class TestTable1:
    def test_all_rows_present(self):
        interfaces = standard_interfaces()
        expected = {
            "RdInstr", "RdRS1", "RdRS2", "RdCustReg", "RdPC", "RdMem",
            "WrRD", "WrCustReg.addr", "WrCustReg.data", "WrPC", "WrMem",
            "RdIValid", "RdStall", "RdFlush", "WrStall", "WrFlush",
        }
        assert set(interfaces) == expected

    def test_signatures(self):
        interfaces = standard_interfaces()
        assert interfaces["RdInstr"].results == (("instr", 32),)
        assert interfaces["WrMem"].operands == (
            ("address", 32), ("value", 32), ("pred", 1)
        )
        assert interfaces["RdMem"].operands == (("address", 32), ("pred", 1))

    def test_per_stage_exception(self):
        """Stall/flush may be instantiated per stage; others may not."""
        interfaces = standard_interfaces()
        per_stage = {n for n, i in interfaces.items() if i.per_stage}
        assert per_stage == {"RdIValid", "RdStall", "RdFlush", "WrStall",
                             "WrFlush"}

    def test_address_width(self):
        assert address_width(1) == 1
        assert address_width(2) == 1
        assert address_width(32) == 5
        assert address_width(33) == 6

    def test_custom_register_interfaces(self):
        subs = custom_register_interfaces("COUNT", 1, 32)
        names = [s.name for s in subs]
        assert names == ["RdCOUNT", "WrCOUNT.addr", "WrCOUNT.data"]

    def test_base_interface_classification(self):
        assert base_interface_of("RdRS1") == "RdRS1"
        assert base_interface_of("RdCOUNT") == "RdCustReg"
        assert base_interface_of("WrCOUNT.addr") == "WrCustReg.addr"
        assert base_interface_of("WrCOUNT.data") == "WrCustReg.data"


class TestDatasheets:
    def test_four_cores(self):
        assert set(CORES) == {"ORCA", "Piccolo", "PicoRV32", "VexRiscv"}

    def test_pipeline_depths_match_paper(self):
        """Section 5.2: ORCA and VexRiscv 5-stage, Piccolo 3-stage, PicoRV32
        non-pipelined (FSM)."""
        assert core_datasheet("ORCA").stages == 5
        assert core_datasheet("VexRiscv").stages == 5
        assert core_datasheet("Piccolo").stages == 3
        assert core_datasheet("PicoRV32").is_fsm

    def test_table4_baselines(self):
        """Base-core anchors from Table 4."""
        expected = {
            "ORCA": (6612.0, 996.0),
            "Piccolo": (26098.0, 420.0),
            "PicoRV32": (4745.0, 1278.0),
            "VexRiscv": (9052.0, 701.0),
        }
        for name, (area, freq) in expected.items():
            ds = core_datasheet(name)
            assert ds.base_area_um2 == area
            assert ds.base_freq_mhz == freq

    def test_vexriscv_figure9_windows(self):
        """Figure 9: instruction word in stages 1..4, regfile in 2..4."""
        ds = core_datasheet("VexRiscv")
        assert (ds.timing("RdInstr").earliest, ds.timing("RdInstr").latest) == (1, 4)
        assert (ds.timing("RdRS1").earliest, ds.timing("RdRS1").latest) == (2, 4)

    def test_orca_late_operands(self):
        """Section 5.4: ORCA register operands available in stage 3."""
        ds = core_datasheet("ORCA")
        assert ds.timing("RdRS1").earliest == 3
        assert ds.forwarding_from_last_stage

    def test_unknown_core(self):
        with pytest.raises(KeyError):
            core_datasheet("BOOM")

    def test_yaml_roundtrip(self):
        ds = core_datasheet("VexRiscv")
        restored = VirtualDatasheet.from_yaml(ds.to_yaml())
        assert restored.core_name == ds.core_name
        assert restored.stages == ds.stages
        assert restored.timings == ds.timings
        assert restored.base_area_um2 == ds.base_area_um2

    def test_cycle_time(self):
        ds = core_datasheet("VexRiscv")
        assert ds.cycle_time_ns == pytest.approx(1000.0 / 701.0)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            InterfaceTiming(earliest=3, latest=1)
        with pytest.raises(ValueError):
            InterfaceTiming(earliest=-1, latest=2)


class TestConfig:
    def zol_config(self):
        return IsaxConfig(
            name="zol",
            registers=[RegisterRequest("COUNT", 32, 1)],
            functionalities=[
                Functionality(
                    kind="instruction", name="setup_zol",
                    mask="-----------------101000000001011",
                    schedule=[
                        ScheduleEntry("RdPC", 1),
                        ScheduleEntry("WrCOUNT.addr", 1),
                        ScheduleEntry("WrCOUNT.data", 1, has_valid=True),
                    ],
                ),
                Functionality(
                    kind="always", name="zol",
                    schedule=[
                        ScheduleEntry("RdPC", 0, mode="always"),
                        ScheduleEntry("WrPC", 0, has_valid=True, mode="always"),
                        ScheduleEntry("RdCOUNT", 0, mode="always"),
                        ScheduleEntry("WrCOUNT.addr", 0, mode="always"),
                        ScheduleEntry("WrCOUNT.data", 0, has_valid=True,
                                      mode="always"),
                    ],
                ),
            ],
        )

    def test_yaml_roundtrip(self):
        config = self.zol_config()
        restored = IsaxConfig.from_yaml(config.to_yaml())
        assert restored.name == "zol"
        assert restored.registers == config.registers
        assert len(restored.functionalities) == 2
        assert restored.functionalities[0].mask == config.functionalities[0].mask
        assert restored.functionalities[1].schedule == \
            config.functionalities[1].schedule

    def test_figure8_yaml_shape(self):
        """The emitted YAML contains the Figure 8 ingredients."""
        text = self.zol_config().to_yaml()
        assert "{register: COUNT, width: 32, elements: 1}" in text
        assert "instruction: setup_zol" in text
        assert "always: zol" in text
        assert "has_valid: 1" in text

    def test_queries(self):
        config = self.zol_config()
        assert [f.name for f in config.instructions] == ["setup_zol"]
        assert [f.name for f in config.always_blocks] == ["zol"]
        assert "WrPC" in config.interfaces_used()
        assert not config.is_decoupled()


class TestHazard:
    def decoupled_config(self):
        return IsaxConfig(
            name="sqrt",
            functionalities=[
                Functionality(
                    kind="instruction", name="sqrt",
                    mask="0" * 32,
                    schedule=[
                        ScheduleEntry("RdRS1", 2),
                        ScheduleEntry("WrRD", 12, has_valid=True,
                                      mode="decoupled"),
                    ],
                ),
            ],
        )

    def test_scoreboard_for_decoupled_wrrd(self):
        plan = plan_scoreboard(self.decoupled_config(),
                               core_datasheet("VexRiscv"))
        assert plan.enabled
        assert len(plan.entries) == 1
        assert plan.entries[0].target == "rd"
        # 4 pending slots of (5-bit address + valid) + 2-deep commit buffer.
        assert plan.storage_bits == 4 * 6 + 2 * 37
        # 5 address bits x 2 read ports x 4 slots x 5 stages.
        assert plan.comparator_bits == 5 * 2 * 4 * 5

    def test_disabled_scoreboard_costs_nothing(self):
        """Table 4's 'without data-hazard handling' ablation."""
        plan = plan_scoreboard(self.decoupled_config(),
                               core_datasheet("VexRiscv"), enabled=False)
        assert plan.storage_bits == 0
        assert plan.comparator_bits == 0

    def test_in_pipeline_needs_no_scoreboard(self):
        config = IsaxConfig(
            name="x",
            functionalities=[Functionality(
                kind="instruction", name="x", mask="0" * 32,
                schedule=[ScheduleEntry("WrRD", 4, has_valid=True)],
            )],
        )
        plan = plan_scoreboard(config, core_datasheet("VexRiscv"))
        assert not plan.entries


class TestArbitration:
    def test_shared_interface_muxed(self):
        configs = [
            IsaxConfig("a", functionalities=[Functionality(
                "instruction", "ia", "0" * 32,
                [ScheduleEntry("WrRD", 4, has_valid=True)],
            )]),
            IsaxConfig("b", functionalities=[Functionality(
                "instruction", "ib", "1" * 32,
                [ScheduleEntry("WrRD", 4, has_valid=True)],
            )]),
        ]
        plan = plan_arbitration(configs)
        mux = plan.mux_for("WrRD")
        assert mux.ways == 2
        assert mux.width == 32

    def test_priority_is_deterministic(self):
        configs = [
            IsaxConfig("b", functionalities=[Functionality(
                "instruction", "ib", "1" * 32,
                [ScheduleEntry("WrRD", 4, has_valid=True)],
            )]),
            IsaxConfig("a", functionalities=[Functionality(
                "instruction", "ia", "0" * 32,
                [ScheduleEntry("WrRD", 4, has_valid=True)],
            )]),
        ]
        plan = plan_arbitration(configs)
        assert plan.mux_for("WrRD").users == ["a:ia", "b:ib"]

    def test_decoupled_ranks_behind_in_pipeline(self):
        configs = [
            IsaxConfig("a", functionalities=[Functionality(
                "instruction", "slow", "0" * 32,
                [ScheduleEntry("WrRD", 9, has_valid=True, mode="decoupled")],
            )]),
            IsaxConfig("b", functionalities=[Functionality(
                "instruction", "fast", "1" * 32,
                [ScheduleEntry("WrRD", 4, has_valid=True)],
            )]),
        ]
        plan = plan_arbitration(configs)
        assert plan.mux_for("WrRD").users == ["b:fast", "a:slow"]

    def test_single_user_no_mux(self):
        configs = [IsaxConfig("a", functionalities=[Functionality(
            "instruction", "ia", "0" * 32,
            [ScheduleEntry("WrRD", 4, has_valid=True)],
        )])]
        plan = plan_arbitration(configs)
        with pytest.raises(KeyError):
            plan.mux_for("WrRD")


class TestRegfile:
    def test_storage(self):
        regfile = CustomRegisterFile(RegisterRequest("BUF", 16, 8))
        assert regfile.storage_bits == 128
        assert regfile.address_width == 3

    def test_read_write(self):
        regfile = CustomRegisterFile(RegisterRequest("R", 8, 2))
        regfile.write(0x1FF, 1)
        assert regfile.read(1) == 0xFF  # truncated to width
        assert regfile.read(0) == 0
        assert regfile.read(5) == 0     # out of range

    def test_build_from_config(self):
        config = IsaxConfig("x", registers=[
            RegisterRequest("A", 32, 1), RegisterRequest("B", 8, 4),
        ])
        files = build_register_files(config)
        assert set(files) == {"A", "B"}


class TestIntegration:
    def valid_config(self, name="a", mask=None):
        mask = mask or ("0" * 25 + "0001011")
        return IsaxConfig(name, functionalities=[Functionality(
            "instruction", f"i_{name}", mask,
            [ScheduleEntry("RdRS1", 2), ScheduleEntry("WrRD", 4, has_valid=True)],
        )])

    def test_basic_integration(self):
        result = integrate(core_datasheet("VexRiscv"),
                           [(self.valid_config(), None)])
        assert result.core_name == "VexRiscv"
        assert result.glue_bits("decode") > 0
        assert result.glue_bits("valid_pipe") > 0

    def test_encoding_conflict_detected(self):
        mask = "0" * 25 + "0001011"
        with pytest.raises(IntegrationError, match="conflict"):
            integrate(core_datasheet("VexRiscv"), [
                (self.valid_config("a", mask), None),
                (self.valid_config("b", mask), None),
            ])

    def test_distinct_encodings_ok(self):
        result = integrate(core_datasheet("VexRiscv"), [
            (self.valid_config("a", "0" * 20 + "11111" + "0001011"), None),
            (self.valid_config("b", "0" * 20 + "00000" + "0001011"), None),
        ])
        assert len(result.configs) == 2

    def test_always_write_without_valid_rejected(self):
        config = IsaxConfig("z", functionalities=[Functionality(
            "always", "z", None, [ScheduleEntry("WrPC", 0)],
        )])
        with pytest.raises(IntegrationError, match="valid"):
            integrate(core_datasheet("VexRiscv"), [(config, None)])

    def test_shared_custom_state_allowed(self):
        """Shared state between ISAXes (paper Section 6 contrast with CX)."""
        reg = RegisterRequest("SHARED", 32, 1)
        config_a = IsaxConfig("a", registers=[reg], functionalities=[
            Functionality("instruction", "ia", "0" * 25 + "0001011",
                          [ScheduleEntry("WrSHARED.data", 2, has_valid=True)]),
        ])
        config_b = IsaxConfig("b", registers=[reg], functionalities=[
            Functionality("instruction", "ib", "1" * 25 + "0001011",
                          [ScheduleEntry("RdSHARED", 2)]),
        ])
        result = integrate(core_datasheet("VexRiscv"),
                           [(config_a, None), (config_b, None)])
        assert list(result.register_files) == ["SHARED"]

    def test_conflicting_shared_register_rejected(self):
        config_a = IsaxConfig("a", registers=[RegisterRequest("R", 32, 1)],
                              functionalities=[])
        config_b = IsaxConfig("b", registers=[RegisterRequest("R", 16, 1)],
                              functionalities=[])
        with pytest.raises(IntegrationError, match="conflicting"):
            integrate(core_datasheet("VexRiscv"),
                      [(config_a, None), (config_b, None)])

    def test_hazard_ablation_reduces_glue(self):
        config = IsaxConfig("sqrt", functionalities=[Functionality(
            "instruction", "sqrt", "0" * 25 + "0001011",
            [ScheduleEntry("RdRS1", 2),
             ScheduleEntry("WrRD", 12, has_valid=True, mode="decoupled")],
        )])
        with_hazard = integrate(core_datasheet("VexRiscv"), [(config, None)])
        without = integrate(core_datasheet("VexRiscv"), [(config, None)],
                            hazard_handling=False)
        assert without.glue_bits() < with_hazard.glue_bits()
        assert without.glue_bits("comparator") == 0
