"""core_datasheet() memoization: factories run once per process, yet no
mutable state leaks between the datasheets handed to different jobs."""

import pytest

from repro.scaiev import cores
from repro.scaiev.datasheet import InterfaceTiming


@pytest.fixture(autouse=True)
def fresh_cache():
    cores.clear_datasheet_cache()
    yield
    cores.clear_datasheet_cache()


def test_factory_runs_once(monkeypatch):
    calls = []
    original = cores._FACTORIES["VexRiscv"]

    def counting():
        calls.append(1)
        return original()

    monkeypatch.setitem(cores._FACTORIES, "VexRiscv", counting)
    first = cores.core_datasheet("VexRiscv")
    second = cores.core_datasheet("VexRiscv")
    assert len(calls) == 1
    assert first is not second


def test_timings_mutation_does_not_leak():
    sheet = cores.core_datasheet("ORCA")
    sheet.timings["RdRS1"] = InterfaceTiming(0, 0)
    sheet.timings["Bogus"] = InterfaceTiming(0, 0)
    fresh = cores.core_datasheet("ORCA")
    assert fresh.timings["RdRS1"].earliest == 3
    assert "Bogus" not in fresh.timings


def test_scalar_mutation_does_not_leak():
    sheet = cores.core_datasheet("Piccolo")
    sheet.base_freq_mhz = 1.0
    sheet.stages = 99
    fresh = cores.core_datasheet("Piccolo")
    assert fresh.base_freq_mhz == 420.0
    assert fresh.stages == 3


def test_unknown_core_still_raises():
    with pytest.raises(KeyError, match="unknown core"):
        cores.core_datasheet("Rocket")
