"""Tests for execution-mode selection (paper Sections 3.2 / 4.3)."""

import pytest

from repro.ir.core import Graph, Operation
from repro.ir.builder import Builder
from repro.scaiev import core_datasheet
from repro.scaiev.modes import ExecutionMode, select_mode


def make_write_rd(spawn=False):
    graph = Graph("g")
    builder = Builder.at(graph)
    value = builder.constant(0, 32)
    pred = builder.constant(1, 1)
    attrs = {"spawn": True} if spawn else {}
    return builder.create("lil.write_rd", [value, pred], [], attrs)


def make_read_pc():
    graph = Graph("g")
    builder = Builder.at(graph)
    return builder.create("lil.read_pc", [], [(32, None)])


class TestSelectMode:
    """The Section 4.3 rule: in-window -> in-pipeline; later and inside a
    spawn-block -> decoupled; later otherwise -> tightly-coupled."""

    def setup_method(self):
        self.datasheet = core_datasheet("VexRiscv")  # WrRD window [2, 4]

    def test_within_window_is_in_pipeline(self):
        op = make_write_rd()
        for stage in (2, 3, 4):
            assert select_mode(op, stage, self.datasheet) == \
                ExecutionMode.IN_PIPELINE

    def test_late_without_spawn_is_tightly_coupled(self):
        op = make_write_rd()
        assert select_mode(op, 9, self.datasheet) == \
            ExecutionMode.TIGHTLY_COUPLED

    def test_late_with_spawn_is_decoupled(self):
        op = make_write_rd(spawn=True)
        assert select_mode(op, 9, self.datasheet) == ExecutionMode.DECOUPLED

    def test_always_mode_wins(self):
        op = make_write_rd()
        assert select_mode(op, 0, self.datasheet, in_always=True) == \
            ExecutionMode.ALWAYS

    def test_too_early_rejected(self):
        op = make_write_rd()
        with pytest.raises(ValueError, match="earliest"):
            select_mode(op, 1, self.datasheet)

    def test_non_decouplable_interface_rejected_when_late(self):
        """Only WrRD/RdMem/WrMem (and custom-register writes) support the
        tightly-coupled/decoupled mechanisms (Section 3.2)."""
        op = make_read_pc()
        with pytest.raises(ValueError, match="native window"):
            select_mode(op, 9, self.datasheet)

    def test_mode_string_roundtrip(self):
        assert str(ExecutionMode.TIGHTLY_COUPLED) == "tightly_coupled"
        assert ExecutionMode("decoupled") is ExecutionMode.DECOUPLED
