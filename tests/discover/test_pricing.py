"""Pricing runner: gates, records, cache keys, executor fan-out."""

import pytest

from repro.discover.enumerate import enumerate_candidates
from repro.discover.kernel import resolve_kernel
from repro.discover.pricing import (
    PricingRequest,
    build_specs,
    price_candidates,
    run_pricing_payload,
)
from repro.service.cache import ArtifactCache
from repro.service.executor import BatchExecutor


@pytest.fixture(scope="module")
def kernel():
    return resolve_kernel("array_sum", n=16)


@pytest.fixture(scope="module")
def full_cover(kernel):
    return enumerate_candidates(kernel)[0]


def _request(candidate, fold=False, **overrides):
    fields = dict(kernel="array_sum", params={"n": 16},
                  candidate=candidate, fold=fold, core="VexRiscv",
                  trials=2, seed=0)
    fields.update(overrides)
    return PricingRequest(**fields)


class TestRunnerRecord:
    def test_successful_record_is_complete(self, full_cover):
        record = run_pricing_payload(_request(full_cover).payload())
        assert record["ok"] is True
        assert record["failed_gate"] is None
        for key in ("source", "speedup", "area_um2", "cycles",
                    "baseline_cycles", "makespan", "instructions",
                    "freq_mhz", "area_overhead_pct"):
            assert key in record, key
        assert record["speedup"] > 1.0
        assert record["lint_warnings"] == 0

    def test_fold_variant_beats_plain(self, full_cover):
        plain = run_pricing_payload(_request(full_cover).payload())
        fold = run_pricing_payload(_request(full_cover, fold=True).payload())
        assert fold["ok"] and plain["ok"]
        assert fold["speedup"] > plain["speedup"]

    def test_gate_failures_are_records_not_raises(self):
        kernel = resolve_kernel("audio_ml", words=4)
        small = next(c for c in enumerate_candidates(kernel) if c.size <= 3)
        payload = {
            "kernel": "audio_ml", "params": {"words": 4},
            "nodes": list(small.nodes), "fold": True,
            "core": "VexRiscv", "trials": 2, "seed": 0,
        }
        record = run_pricing_payload(payload)
        assert record["ok"] is False
        assert record["failed_gate"] == "codegen"
        assert "zero-overhead" in record["error"]


class TestCacheKeys:
    def test_key_is_stable_and_hex(self, full_cover):
        request = _request(full_cover)
        key = request.cache_key("fp")
        assert key == request.cache_key("fp")
        int(key, 16)

    def test_key_varies_with_fold_core_and_kernel(self, full_cover):
        base = _request(full_cover).cache_key("fp")
        assert _request(full_cover, fold=True).cache_key("fp") != base
        assert _request(full_cover, core="ORCA").cache_key("fp") != base
        assert _request(full_cover).cache_key("other-fp") != base

    def test_specs_carry_keys_and_labels(self, full_cover):
        specs = build_specs([_request(full_cover, fold=True)], "fp")
        assert len(specs) == 1
        assert specs[0].label.endswith("+zol@VexRiscv")
        assert specs[0].key == _request(full_cover,
                                        fold=True).cache_key("fp")


class TestFanOut:
    def test_warm_rerun_is_all_cache_hits(self, kernel, full_cover,
                                          tmp_path):
        requests = [_request(full_cover), _request(full_cover, fold=True)]
        fingerprint = kernel.fingerprint()

        cold_exec = BatchExecutor(workers=1,
                                  cache=ArtifactCache(tmp_path / "c"))
        records, stats = price_candidates(requests, fingerprint,
                                          executor=cold_exec)
        assert [r["ok"] for r in records] == [True, True]
        assert stats == {"requested": 2, "executed": 2, "cached": 0,
                         "failed": 0}

        warm_exec = BatchExecutor(workers=1,
                                  cache=ArtifactCache(tmp_path / "c"))
        warm_records, warm_stats = price_candidates(
            requests, fingerprint, executor=warm_exec)
        assert warm_stats == {"requested": 2, "executed": 0, "cached": 2,
                              "failed": 0}
        assert warm_records[0]["speedup"] == records[0]["speedup"]

    def test_transport_failure_becomes_synthetic_record(self, full_cover,
                                                        kernel):
        bad = _request(full_cover, kernel="not_registered")
        records, stats = price_candidates([bad], kernel.fingerprint())
        assert len(records) == 1
        assert records[0]["ok"] is False
        assert records[0]["failed_gate"] == "transport"
        assert stats["failed"] == 1
