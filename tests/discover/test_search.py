"""End-to-end discovery search, Pareto selection, report round-trips."""

import json

import pytest

from repro.discover.search import (
    DiscoveryConfig,
    discover,
    dominates,
    pareto_front,
    render_report,
    write_report,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    config = DiscoveryConfig(kernel="array_sum", params={"n": 16},
                             budget=6, trials=2, cache_dir=str(cache))
    return discover(config)


class TestDominance:
    def test_strictly_better_dominates(self):
        a = {"speedup": 2.0, "area_um2": 100.0}
        b = {"speedup": 1.5, "area_um2": 200.0}
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_points_do_not_dominate(self):
        fast_big = {"speedup": 2.0, "area_um2": 500.0}
        slow_small = {"speedup": 1.2, "area_um2": 50.0}
        assert not dominates(fast_big, slow_small)
        assert not dominates(slow_small, fast_big)

    def test_equal_points_do_not_dominate(self):
        a = {"speedup": 1.0, "area_um2": 10.0}
        assert not dominates(a, dict(a))

    def test_front_filters_failed_and_dominated(self):
        records = [
            {"ok": True, "speedup": 2.0, "area_um2": 100.0},
            {"ok": True, "speedup": 1.5, "area_um2": 200.0},  # dominated
            {"ok": True, "speedup": 1.0, "area_um2": 50.0},
            {"ok": False, "failed_gate": "cosim"},
        ]
        front = pareto_front(records)
        assert front == [records[0], records[2]]


class TestDiscoverEndToEnd:
    def test_finds_a_verified_winner(self, report):
        assert report.winner is not None
        assert report.winner["ok"]
        assert report.winner["speedup"] > 1.0
        assert report.candidates_enumerated >= 3
        assert report.variants_priced <= 6

    def test_pareto_members_are_nondominated(self, report):
        for member in report.pareto:
            for other in report.verified:
                assert not dominates(other, member) or other is member

    def test_winner_is_the_fastest_front_member(self, report):
        best = max(report.pareto, key=lambda r: r["speedup"])
        assert report.winner["speedup"] == best["speedup"]

    def test_budget_caps_variants(self, tmp_path):
        config = DiscoveryConfig(kernel="array_sum", params={"n": 16},
                                 budget=2, trials=2,
                                 cache_dir=str(tmp_path))
        capped = discover(config)
        assert capped.variants_priced == 2

    def test_report_roundtrips_to_json(self, report):
        blob = json.dumps(report.to_dict())
        parsed = json.loads(blob)
        assert parsed["winner"]["digest"] == report.winner["digest"]
        assert parsed["config"]["kernel"] == "array_sum"

    def test_render_mentions_winner_and_stats(self, report):
        text = render_report(report)
        assert report.winner["label"] in text
        assert "from cache" in text

    def test_write_report_persists_winner_coredsl(self, report, tmp_path):
        paths = write_report(report, tmp_path)
        assert paths["report"].exists()
        winner = paths["winner"].read_text()
        assert winner == report.winner["source"]
        assert "InstructionSet" in winner or "instructions" in winner


class TestConfigPayload:
    def test_roundtrip(self):
        config = DiscoveryConfig(kernel="audio_ml", params={"words": 8},
                                 core="ORCA", budget=3)
        clone = DiscoveryConfig.from_payload(config.to_payload())
        assert clone == config

    def test_server_url_never_ships(self):
        config = DiscoveryConfig(kernel="array_sum",
                                 server_url="http://example:1")
        payload = config.to_payload()
        assert "server_url" not in payload
        assert DiscoveryConfig.from_payload(
            dict(payload, server_url="http://evil:1")).server_url is None

    def test_kernel_required(self):
        with pytest.raises(ValueError):
            DiscoveryConfig.from_payload({"budget": 4})

    def test_params_coerced_to_int(self):
        config = DiscoveryConfig.from_payload(
            {"kernel": "array_sum", "params": {"n": "32"}})
        assert config.params == {"n": 32}

    def test_non_dict_params_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig.from_payload(
                {"kernel": "array_sum", "params": [1, 2]})
