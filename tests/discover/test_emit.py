"""CoreDSL emission: every mined candidate must satisfy the frontend."""

import pytest

from repro.analysis.verifier import verify_artifact_ir
from repro.discover.emit import EmitError, emit_candidate
from repro.discover.enumerate import enumerate_candidates
from repro.discover.kernel import resolve_kernel
from repro.discover.pricing import rebuild_candidate
from repro.hls.longnail import compile_isax


def _full_cover(kernel):
    return enumerate_candidates(kernel)[0]


class TestArraySumEmission:
    @pytest.fixture(scope="class")
    def kernel(self):
        return resolve_kernel("array_sum", n=16)

    def test_compiles_lints_and_verifies(self, kernel):
        emitted = emit_candidate(kernel, _full_cover(kernel))
        artifact = compile_isax(emitted.source, "VexRiscv", opt=2)
        errors = [d for d in artifact.diagnostics
                  if getattr(d, "severity", "") == "error"]
        assert errors == []
        assert verify_artifact_ir(artifact) == []

    def test_setup_instructions_cover_state(self, kernel):
        candidate = _full_cover(kernel)
        emitted = emit_candidate(kernel, candidate)
        kinds = {s.kind for s in emitted.setups}
        # one load pointer and one accumulator to initialise
        assert kinds == {"load", "carry"}
        assert emitted.get is not None      # promoted result needs a reader

    def test_fold_variant_adds_the_loop_pair(self, kernel):
        emitted = emit_candidate(kernel, _full_cover(kernel),
                                 fold_loop=True)
        assert emitted.loop is not None
        assert emitted.fold_loop
        assert "always" in emitted.source
        artifact = compile_isax(emitted.source, "VexRiscv", opt=2)
        assert emitted.loop in artifact.functionalities

    def test_instruction_names_share_the_digest_prefix(self, kernel):
        candidate = _full_cover(kernel)
        emitted = emit_candidate(kernel, candidate)
        assert emitted.step.startswith(emitted.prefix)
        for setup in emitted.setups:
            assert setup.mnemonic.startswith(emitted.prefix)


class TestAudioEmission:
    def test_lane_mac_candidate_compiles(self):
        kernel = resolve_kernel("audio_ml", words=4)
        candidates = enumerate_candidates(kernel)
        lane = next(c for c in candidates
                    if {kernel.node_by_id[i].op for i in c.nodes}
                    >= {"extract", "sext", "mul"})
        emitted = emit_candidate(kernel, lane)
        artifact = compile_isax(emitted.source, "VexRiscv", opt=2)
        errors = [d for d in artifact.diagnostics
                  if getattr(d, "severity", "") == "error"]
        assert errors == []


class TestEmitRejections:
    def test_no_visible_effect_is_an_emit_error(self):
        kernel = resolve_kernel("audio_ml", words=4)
        # A pure slice of compute whose value stays internal: force it by
        # rebuilding a candidate with promotion re-derived, then lying
        # about the interface via a node set that covers nothing visible.
        # The extract feeding a sext has one internal reader only when
        # both are excluded from promotion paths, so craft directly:
        from repro.discover.enumerate import Candidate
        node = next(n for n in kernel.op_nodes() if n.op == "extract")
        bogus = Candidate(nodes=(node.id,), inputs=(node.operands[0],),
                          output=None, carries=(), loads=(),
                          digest="deadbeef00")
        with pytest.raises(EmitError):
            emit_candidate(kernel, bogus)

    def test_rebuild_rejects_multi_output_sets(self):
        kernel = resolve_kernel("audio_ml", words=4)
        by_op = {}
        for node in kernel.op_nodes():
            by_op.setdefault(node.op, []).append(node.id)
        # two disjoint extracts escape to two external readers -> 2 writes
        two_lanes = by_op["extract"][:2]
        with pytest.raises(ValueError):
            rebuild_candidate(kernel, two_lanes)
