"""Subgraph enumeration: convexity, interface limits, canonical dedup."""

import pytest

from repro.discover.enumerate import (
    Candidate,
    canonical_digest,
    classify_io,
    enumerate_candidates,
)
from repro.discover.kernel import KernelBuilder, resolve_kernel


def _diamond_kernel():
    """a -> (b, c) -> d with an op on only one branch: covering {shl, add2}
    without the mul between them would be non-convex."""
    build = KernelBuilder("diamond")
    build.array("A", base=0x1000, data=[3, 5, 7, 9])
    acc = build.carry("ACC", init=0)
    x = build.load("A")
    left = build.shift("shl", x, 1)
    right = build.mul(x, x)
    joined = build.add(left, right)
    build.set_carry("ACC", build.add(acc, joined))
    build.result("ACC")
    return build.build(trip_count=4)


class TestLegality:
    def test_every_candidate_is_convex_and_connected(self):
        kernel = _diamond_kernel()
        from repro.discover.enumerate import _Analysis
        analysis = _Analysis(kernel)
        for candidate in enumerate_candidates(kernel):
            subset = frozenset(candidate.nodes)
            assert analysis.is_convex(subset), candidate
            assert analysis.is_connected(subset), candidate

    def test_interface_limits_hold(self):
        kernel = resolve_kernel("audio_ml", words=4)
        for candidate in enumerate_candidates(kernel, max_inputs=2,
                                              max_outputs=1, max_mem=1):
            assert len(candidate.inputs) <= 2
            assert len(candidate.loads) <= 1
            # exactly one visible effect path: rd, or promoted state
            assert candidate.output is not None or candidate.carries

    def test_nonconvex_subset_never_emitted(self):
        kernel = _diamond_kernel()
        # load (1) and the join add (4) without the shl/mul in between:
        # both branch ops have an ancestor and a descendant inside.
        bad = frozenset({1, 4})
        from repro.discover.enumerate import _Analysis
        assert not _Analysis(kernel).is_convex(bad)
        for candidate in enumerate_candidates(kernel):
            assert frozenset(candidate.nodes) != bad

    def test_max_mem_zero_excludes_loads(self):
        kernel = resolve_kernel("array_sum", n=8)
        for candidate in enumerate_candidates(kernel, max_mem=0):
            assert not candidate.loads


class TestClassifyIO:
    def test_full_cover_promotes_the_accumulator(self):
        kernel = resolve_kernel("array_sum", n=8)
        subset = frozenset(n.id for n in kernel.op_nodes())
        inputs, outputs, promoted, loads = classify_io(kernel, subset)
        assert promoted == ["ACC"]
        assert outputs == []        # value lives in custom state
        assert len(loads) == 1

    def test_promotion_disabled_exposes_register_write(self):
        kernel = resolve_kernel("array_sum", n=8)
        subset = frozenset(n.id for n in kernel.op_nodes())
        inputs, outputs, promoted, loads = classify_io(
            kernel, subset, promote_state=False)
        assert promoted == []
        assert len(outputs) == 1    # unpromoted carry update needs rd


class TestCanonicalDedup:
    def test_audio_lane_macs_collapse_to_one(self):
        # The audio kernel has four isomorphic (extract, sext) x2 -> mul
        # lane trees differing only in the extract "lo" position; they
        # must be priced once.
        kernel = resolve_kernel("audio_ml", words=4)
        candidates = enumerate_candidates(kernel)
        lane_shapes = [c for c in candidates
                       if {kernel.node_by_id[i].op for i in c.nodes}
                       == {"extract", "sext", "mul"}]
        digests = {c.digest for c in lane_shapes}
        assert len(lane_shapes) == len(digests)
        # at least the 5-node single-lane MAC exists, deduplicated
        assert any(c.size == 5 for c in lane_shapes)

    def test_digest_ignores_lane_position(self):
        kernel = resolve_kernel("audio_ml", words=4)
        by_op = {}
        for node in kernel.op_nodes():
            by_op.setdefault(node.op, []).append(node.id)
        extracts = sorted(by_op["extract"])
        # one-node subsets for two different lanes of the same stream
        same = {
            canonical_digest(kernel, frozenset({extracts[0]}), [], []),
            canonical_digest(kernel, frozenset({extracts[1]}), [], []),
        }
        assert len(same) == 1

    def test_largest_candidates_rank_first(self):
        kernel = resolve_kernel("array_sum", n=8)
        candidates = enumerate_candidates(kernel)
        sizes = [c.size for c in candidates]
        assert sizes == sorted(sizes, reverse=True)

    def test_candidates_are_frozen_records(self):
        import dataclasses

        kernel = resolve_kernel("array_sum", n=8)
        candidate = enumerate_candidates(kernel)[0]
        assert isinstance(candidate, Candidate)
        with pytest.raises(dataclasses.FrozenInstanceError):
            candidate.digest = "tampered"
