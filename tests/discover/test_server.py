"""``POST /v1/discover`` and the allow-listed pricing runner."""

import asyncio

from repro.discover.pricing import DISCOVER_RUNNER, DISCOVER_SEARCH_RUNNER
from repro.server import (
    CompileServer,
    CompileServerApp,
    CompileServerClient,
    CompileServerError,
)
from repro.server.http import DEFAULT_ALLOWED_RUNNERS


def run_http(coro_fn, **core_kwargs):
    core_kwargs.setdefault("backend", "thread")

    async def _body():
        core = CompileServer(**core_kwargs)
        app = CompileServerApp(core)
        host, port = await app.start("127.0.0.1", 0)
        client = CompileServerClient(f"http://{host}:{port}",
                                     timeout_s=300.0)
        try:
            await coro_fn(client)
        finally:
            await app.close(drain=False)

    asyncio.run(_body())


def test_discover_runners_are_allow_listed():
    assert DISCOVER_RUNNER in DEFAULT_ALLOWED_RUNNERS
    assert DISCOVER_SEARCH_RUNNER in DEFAULT_ALLOWED_RUNNERS


def test_discover_route_end_to_end_and_warm_cache():
    async def body(client):
        job = await client.discover("array_sum", params={"n": 16},
                                    budget=4, trials=2, workers=1)
        assert job["state"] == "ok"
        report = job["result"]
        assert report["winner"] is not None
        assert report["winner"]["speedup"] > 1.0
        assert report["config"]["kernel"] == "array_sum"

        # identical search -> served from the warm cache tier
        warm = await client.discover("array_sum", params={"n": 16},
                                     budget=4, trials=2, workers=1)
        assert warm["state"] == "ok"
        assert warm["cached"] == "memory"
        assert (warm["result"]["winner"]["digest"]
                == report["winner"]["digest"])

    run_http(body, workers=2)


def test_discover_route_validates_payload():
    async def body(client):
        # unknown kernel name: submission is accepted, the job fails
        job = await client.discover("not_a_kernel", budget=1)
        assert job["state"] == "failed"
        assert "unknown kernel" in str(job.get("error"))
        # missing kernel entirely -> 400 from DiscoveryConfig.from_payload
        try:
            await client._request("POST", "/v1/discover", {"budget": 2})
            raise AssertionError("missing kernel must be rejected")
        except CompileServerError as err:
            assert err.status == 400
            assert "kernel" in str(err)

    run_http(body, workers=1)


def test_pricing_runner_via_tasks_route():
    async def body(client):
        from repro.discover.enumerate import enumerate_candidates
        from repro.discover.kernel import resolve_kernel
        from repro.discover.pricing import PricingRequest

        kernel = resolve_kernel("array_sum", n=16)
        candidate = enumerate_candidates(kernel)[0]
        request = PricingRequest(kernel="array_sum", params={"n": 16},
                                 candidate=candidate, fold=False,
                                 core="VexRiscv", trials=2, seed=0)
        job = await client.submit_task(
            runner=DISCOVER_RUNNER, payload=request.payload(),
            key=request.cache_key(kernel.fingerprint()),
            label=request.label())
        assert job["state"] == "ok"
        assert job["result"]["ok"] is True
        assert job["result"]["speedup"] > 1.0

    run_http(body, workers=1)
