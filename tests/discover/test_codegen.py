"""Generated RV32 programs: baseline and candidate must both compute the
kernel's reference result, and the ZOL-folded body must stay encodable."""

import pytest

from repro.discover import codegen
from repro.discover.emit import emit_candidate
from repro.discover.enumerate import enumerate_candidates
from repro.discover.kernel import resolve_kernel, run_reference
from repro.hls.longnail import compile_isax


@pytest.mark.parametrize("name,params", [
    ("array_sum", {"n": 16}),
    ("audio_ml", {"words": 4}),
    ("random", {"seed": 2}),
])
def test_baseline_reproduces_reference(name, params):
    kernel = resolve_kernel(name, **params)
    program = codegen.baseline_program(kernel)
    report, result = codegen.run_program(kernel, program, "VexRiscv")
    assert result == run_reference(kernel)
    assert report.cycles > 0


class TestCandidateProgram:
    @pytest.fixture(scope="class")
    def kernel(self):
        return resolve_kernel("array_sum", n=16)

    @pytest.fixture(scope="class")
    def candidate(self, kernel):
        return enumerate_candidates(kernel)[0]

    def test_plain_rewrite_matches_reference(self, kernel, candidate):
        emitted = emit_candidate(kernel, candidate)
        artifact = compile_isax(emitted.source, "VexRiscv", opt=2)
        program = codegen.candidate_program(kernel, candidate, emitted)
        report, result = codegen.run_program(
            kernel, program, "VexRiscv", artifacts=[artifact])
        assert result == run_reference(kernel)
        assert report.isax_busy_cycles > 0

    def test_folded_rewrite_is_faster(self, kernel, candidate):
        emitted = emit_candidate(kernel, candidate)
        folded = emit_candidate(kernel, candidate, fold_loop=True)
        plain_art = compile_isax(emitted.source, "VexRiscv", opt=2)
        fold_art = compile_isax(folded.source, "VexRiscv", opt=2)

        plain = codegen.candidate_program(kernel, candidate, emitted)
        fold = codegen.candidate_program(kernel, candidate, folded)
        _, plain_result = codegen.run_program(
            kernel, plain, "VexRiscv", artifacts=[plain_art])
        plain_report, _ = codegen.run_program(
            kernel, plain, "VexRiscv", artifacts=[plain_art])
        fold_report, fold_result = codegen.run_program(
            kernel, fold, "VexRiscv", artifacts=[fold_art])
        assert plain_result == fold_result == run_reference(kernel)
        assert fold_report.cycles < plain_report.cycles
        assert fold.loop_body_words is not None

    def test_baseline_beats_nothing_but_matches(self, kernel):
        # The generated baseline should stay within a few percent of the
        # hand-scheduled Section 5.5 loop (same load-use filling trick).
        from repro.sim.riscv.assembler import assemble
        from repro.sim.riscv.core_model import CoreTimingModel
        from repro.scaiev.cores import core_datasheet
        from repro.workloads import ARRAY_BASE, array_sum_baseline, \
            array_sum_data

        hand = CoreTimingModel(core_datasheet("VexRiscv"))
        hand.load_program(assemble(array_sum_baseline(16)))
        hand.load_data(array_sum_data(16), ARRAY_BASE)
        hand_cycles = hand.run().cycles

        program = codegen.baseline_program(kernel)
        report, _ = codegen.run_program(kernel, program, "VexRiscv")
        assert report.cycles <= hand_cycles * 1.05


class TestEncodingLimits:
    def test_oversized_fold_body_raises(self):
        # uimmS is 5 bits: a small candidate leaves most of the audio
        # loop in software, the body exceeds the ZOL span, and codegen
        # must raise instead of silently mis-encoding — pricing turns
        # this into an ok=false record with the "codegen" gate.
        kernel = resolve_kernel("audio_ml", words=4)
        small = next(c for c in enumerate_candidates(kernel)
                     if c.size <= 3)
        emitted = emit_candidate(kernel, small, fold_loop=True)
        with pytest.raises(codegen.CodegenError, match="zero-overhead"):
            codegen.candidate_program(kernel, small, emitted)

    def test_full_cover_fold_body_fits(self):
        kernel = resolve_kernel("array_sum", n=16)
        full = enumerate_candidates(kernel)[0]
        emitted = emit_candidate(kernel, full, fold_loop=True)
        program = codegen.candidate_program(kernel, full, emitted)
        assert program.loop_body_words is not None
        assert program.loop_body_words <= 14
