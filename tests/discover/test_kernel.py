"""Kernel IR: builder, evaluator, registry, fingerprints."""

import pytest

from repro.discover.kernel import (
    KernelBuilder,
    KernelError,
    kernel_names,
    resolve_kernel,
    run_reference,
)


def _toy_kernel(n=4):
    build = KernelBuilder("toy")
    build.array("A", base=0x1000, data=list(range(1, n + 1)))
    acc = build.carry("ACC", init=0)
    x = build.load("A")
    build.set_carry("ACC", build.add(acc, x))
    build.result("ACC")
    return build.build(trip_count=n)


class TestBuilderAndReference:
    def test_toy_sum(self):
        kernel = _toy_kernel(4)
        assert run_reference(kernel) == 1 + 2 + 3 + 4

    def test_array_sum_matches_python_sum(self):
        kernel = resolve_kernel("array_sum", n=16)
        from repro.workloads import array_sum_data
        assert run_reference(kernel) == sum(array_sum_data(16)) & 0xFFFFFFFF

    def test_audio_ml_is_32bit(self):
        kernel = resolve_kernel("audio_ml", words=4)
        value = run_reference(kernel)
        assert 0 <= value <= 0xFFFFFFFF

    def test_evaluator_wraps_to_32_bits(self):
        build = KernelBuilder("wrap")
        build.array("A", base=0x1000, data=[0xFFFFFFFF])
        acc = build.carry("ACC", init=1)
        build.set_carry("ACC", build.add(acc, build.load("A")))
        build.result("ACC")
        assert run_reference(build.build(trip_count=1)) == 0

    def test_unknown_operand_rejected_at_build(self):
        build = KernelBuilder("bad")
        build.array("A", base=0x1000, data=[1])
        acc = build.carry("ACC", init=0)
        build.set_carry("ACC", build.add(acc, 99))
        build.result("ACC")
        with pytest.raises(KernelError):
            build.build(trip_count=1)

    def test_non_binary_op_rejected(self):
        build = KernelBuilder("bad")
        with pytest.raises(KernelError):
            build.binary("nand", 0, 0)


class TestRegistry:
    def test_builtin_kernels_registered(self):
        names = kernel_names()
        assert "array_sum" in names
        assert "audio_ml" in names
        assert "random" in names

    def test_unknown_kernel_raises(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            resolve_kernel("definitely_not_registered")

    def test_params_reach_the_kernel(self):
        small = resolve_kernel("array_sum", n=8)
        large = resolve_kernel("array_sum", n=64)
        assert small.trip_count == 8
        assert large.trip_count == 64
        assert small.fingerprint() != large.fingerprint()

    def test_fingerprint_is_deterministic(self):
        a = resolve_kernel("array_sum", n=16)
        b = resolve_kernel("array_sum", n=16)
        assert a.fingerprint() == b.fingerprint()


class TestRandomKernel:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_every_node_is_live(self, seed):
        # Dead compute would let the enumerator mine candidates with no
        # architectural effect; the generator must never produce any.
        kernel = resolve_kernel("random", seed=seed)
        update = kernel.carries["ACC"].update
        live = {update}
        stack = [update]
        by_id = kernel.node_by_id
        while stack:
            for operand in by_id[stack.pop()].operands:
                if operand not in live:
                    live.add(operand)
                    stack.append(operand)
        for node in kernel.op_nodes():
            assert node.id in live, f"node {node.id} ({node.op}) is dead"

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_reference_evaluates(self, seed):
        kernel = resolve_kernel("random", seed=seed)
        assert 0 <= run_reference(kernel) <= 0xFFFFFFFF

    def test_same_seed_same_kernel(self):
        assert (resolve_kernel("random", seed=5).fingerprint()
                == resolve_kernel("random", seed=5).fingerprint())
