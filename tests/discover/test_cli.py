"""The ``repro-longnail discover`` subcommand."""

from repro.cli import main


class TestDiscoverCommand:
    def test_list_kernels(self, capsys):
        assert main(["discover", "--list-kernels"]) == 0
        out = capsys.readouterr().out.split()
        assert "array_sum" in out
        assert "audio_ml" in out

    def test_end_to_end_writes_winner(self, tmp_path, capsys):
        code = main([
            "discover", "--kernel", "array_sum", "--param", "n=16",
            "--budget", "4", "--trials", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "-o", str(tmp_path / "out"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Pareto front" in out
        assert (tmp_path / "out" / "discover_array_sum.json").exists()
        winner = tmp_path / "out" / "array_sum_winner.core_desc"
        assert winner.exists() and winner.read_text().strip()

    def test_unknown_kernel_is_a_clean_error(self, tmp_path, capsys):
        code = main(["discover", "--kernel", "nope",
                     "-o", str(tmp_path / "out")])
        assert code == 1
        assert "unknown kernel" in capsys.readouterr().err

    def test_malformed_param_is_a_usage_error(self, tmp_path, capsys):
        code = main(["discover", "--kernel", "array_sum",
                     "--param", "n16", "-o", str(tmp_path / "out")])
        assert code == 2
        assert "NAME=VALUE" in capsys.readouterr().err
