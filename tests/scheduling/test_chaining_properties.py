"""Property-based tests of chain breaking on random dataflow DAGs.

The invariant chain breaking guarantees: in the resulting schedule, no
combinational path within any single time step accumulates more delay than
the cycle time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    LongnailProblem,
    OperatorType,
    compute_chain_breakers,
    compute_start_times_in_cycle,
)
from repro.scheduling import ilp


@st.composite
def random_dag_problem(draw):
    """A random acyclic dataflow problem with mixed operator delays."""
    node_count = draw(st.integers(3, 18))
    cycle_time = draw(st.sampled_from([1.0, 1.5, 2.5, 4.0]))
    problem = LongnailProblem()
    delays = [0.0, 0.2, 0.4, 0.8]
    for delay in delays:
        problem.add_operator_type(OperatorType(
            f"d{delay}", incoming_delay=delay, outgoing_delay=delay
        ))
    nodes = []
    for index in range(node_count):
        delay = draw(st.sampled_from(delays))
        name = f"n{index}"
        problem.add_operation(name, f"d{delay}")
        # Edges only to earlier nodes: acyclic by construction.
        if nodes:
            predecessor_count = draw(st.integers(0, min(3, len(nodes))))
            chosen = draw(st.permutations(nodes))[:predecessor_count]
            for pred in chosen:
                problem.add_dependence(pred, name)
        nodes.append(name)
    return problem, cycle_time


def max_step_delay(problem: LongnailProblem) -> float:
    """Longest accumulated combinational path within any single step."""
    worst = 0.0
    for op in problem.operations:
        lot = problem.linked_operator_type(op)
        finish = problem.start_time_in_cycle[op] + lot.outgoing_delay
        worst = max(worst, finish)
    return worst


@settings(max_examples=60, deadline=None)
@given(random_dag_problem())
def test_chain_breaking_bounds_step_delay(case):
    problem, cycle_time = case
    problem.check()
    for src, dst in compute_chain_breakers(problem, cycle_time):
        problem.add_dependence(src, dst, is_chain_breaker=True)
    ilp.solve(problem, "asap")
    compute_start_times_in_cycle(problem)
    problem.verify()
    assert max_step_delay(problem) <= cycle_time + 1e-9


@settings(max_examples=30, deadline=None)
@given(random_dag_problem())
def test_milp_also_respects_breakers(case):
    problem, cycle_time = case
    problem.check()
    for src, dst in compute_chain_breakers(problem, cycle_time):
        problem.add_dependence(src, dst, is_chain_breaker=True)
    ilp.solve(problem, "milp")
    compute_start_times_in_cycle(problem)
    problem.verify()


@settings(max_examples=30, deadline=None)
@given(random_dag_problem())
def test_breakers_monotone_in_cycle_time(case):
    """A more relaxed clock never needs more chain breakers."""
    problem, cycle_time = case
    tight = len(compute_chain_breakers(problem, cycle_time))
    relaxed = len(compute_chain_breakers(problem, cycle_time * 2))
    assert relaxed <= tight
