"""Fast-path engine cross-check: the LP-free solver must reproduce the
Figure 7 MILP's weighted objective on every benchmark ISAX, every core,
and a cycle-time grid — plus randomized DAG property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import elaborate
from repro.isaxes import ALL_ISAXES
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scaiev.cores import CORES, EXPERIMENTAL_CORES
from repro.scheduling import (
    LongnailProblem,
    OperatorType,
    ScheduleCache,
    ScheduleError,
    build_problem,
    solve_fastpath,
    solve_problem,
)
from repro.scheduling import ilp
from repro.scheduling.chaining import compute_start_times_in_cycle

ALL_CORES = CORES + EXPERIMENTAL_CORES
CYCLE_SCALES = (1.0, 2.0, 4.0)


class FakeOp:
    """Stand-in operation carrying just a result width (lifetime weight)."""

    def __init__(self, tag, width):
        self.tag = tag
        self.results = [type("Res", (), {"width": width})()]

    def __repr__(self):
        return f"op{self.tag}"


def benchmark_problems(core):
    """Yield every (isax, functionality, problem) for a core/scale grid."""
    datasheet = core_datasheet(core)
    for isax_name, source in ALL_ISAXES.items():
        isa = elaborate(source)
        lowered = lower_isa(isa)
        for func_name, container in lowered.instructions.items():
            graph = convert_to_lil(isa, container)
            for scale in CYCLE_SCALES:
                problem = build_problem(
                    graph, datasheet,
                    cycle_time_ns=datasheet.cycle_time_ns * scale,
                )
                yield f"{isax_name}/{func_name}@x{scale:g}", problem


@pytest.mark.parametrize("core", ALL_CORES)
class TestBenchmarkGrid:
    def test_fastpath_matches_milp_objective(self, core):
        """The tentpole claim: exact equality of the weighted Figure 7
        objective on all 8 ISAXes x this core x a 3-point cycle grid."""
        for label, problem in benchmark_problems(core):
            exact = ilp.solve_milp(problem)
            fast = solve_fastpath(problem)
            want = ilp.weighted_objective_of(problem, exact)
            got = ilp.weighted_objective_of(problem, fast)
            assert got == pytest.approx(want), label

    def test_fastpath_is_feasible_and_earliest(self, core):
        """Fast-path solutions verify and are componentwise <= the MILP's
        (the canonical earliest point of the optimal face)."""
        for label, problem in benchmark_problems(core):
            exact = ilp.solve_milp(problem)
            fast = solve_fastpath(problem)
            problem.start_time = fast
            compute_start_times_in_cycle(problem)
            problem.verify()
            assert all(fast[op] <= exact[op] for op in problem.operations), \
                label


class TestSolveProblemStack:
    """solve_problem = decomposition + cache + engine + optional oracle."""

    def grid_problem(self):
        datasheet = core_datasheet("VexRiscv")
        isa = elaborate(ALL_ISAXES["dotprod"])
        lowered = lower_isa(isa)
        graph = convert_to_lil(isa, lowered.instructions["dotp"])
        return build_problem(graph, datasheet)

    def test_auto_resolves_to_fastpath(self):
        problem = self.grid_problem()
        stats = solve_problem(problem, "auto", cache=False)
        assert stats.engine == "fastpath"
        assert stats.operations == len(problem.operations)
        assert stats.components >= 1

    def test_cache_hit_reproduces_solution(self):
        cache = ScheduleCache()
        first = self.grid_problem()
        stats1 = solve_problem(first, "auto", cache=cache)
        assert stats1.cache_hits == 0
        assert stats1.cache_misses == stats1.components
        second = self.grid_problem()
        stats2 = solve_problem(second, "auto", cache=cache)
        assert stats2.cache_hits == stats2.components
        assert stats2.cache_misses == 0
        for a, b in zip(first.operations, second.operations):
            assert first.start_time[a] == second.start_time[b]

    def test_milp_engine_shares_cache_with_fastpath(self):
        cache = ScheduleCache()
        solve_problem(self.grid_problem(), "fastpath", cache=cache)
        stats = solve_problem(self.grid_problem(), "milp", cache=cache)
        assert stats.cache_hits >= 1

    def test_asap_engine_bypasses_cache(self):
        cache = ScheduleCache()
        stats = solve_problem(self.grid_problem(), "asap", cache=cache)
        assert stats.engine == "asap"
        assert len(cache) == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ScheduleError, match="unknown scheduler engine"):
            solve_problem(self.grid_problem(), "simplex")

    def test_verify_oracle_runs_when_requested(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_VERIFY", "1")
        stats = solve_problem(self.grid_problem(), "auto", cache=False)
        assert stats.verified

    def test_verify_oracle_covers_cache_hits(self, monkeypatch):
        cache = ScheduleCache()
        solve_problem(self.grid_problem(), "auto", cache=cache)
        monkeypatch.setenv("REPRO_SCHED_VERIFY", "1")
        stats = solve_problem(self.grid_problem(), "auto", cache=cache)
        assert stats.cache_hits >= 1
        assert stats.verified


def random_problem(rng, n):
    problem = LongnailProblem()
    ops = []
    for i in range(n):
        latency = rng.choice([0, 0, 0, 1, 2])
        earliest = rng.choice([0, 0, 1, 2, 3])
        latest = rng.choice(
            [float("inf"), float("inf"), earliest + rng.randint(0, 5)]
        )
        lot = OperatorType(
            f"t{i}", latency=latency, earliest=earliest, latest=latest,
            incoming_delay=0.0 if latency else 0.5, outgoing_delay=0.5,
        )
        problem.add_operator_type(lot)
        op = FakeOp(i, rng.choice([1, 8, 32, 64, 128]))
        ops.append(op)
        problem.add_operation(op, lot.name)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.2:
                problem.add_dependence(
                    ops[i], ops[j], is_chain_breaker=rng.random() < 0.15
                )
    return problem, ops


class TestRandomDAGs:
    @settings(deadline=None, max_examples=60)
    @given(st.integers(0, 10_000), st.integers(1, 20))
    def test_fastpath_matches_milp_on_random_dags(self, seed, n):
        problem, ops = random_problem(random.Random(seed), n)
        try:
            exact = ilp.solve_milp(problem)
        except ScheduleError:
            # Infeasible window combination; the fast path must agree.
            with pytest.raises(ScheduleError):
                solve_fastpath(problem)
            return
        fast = solve_fastpath(problem)
        want = ilp.weighted_objective_of(problem, exact)
        got = ilp.weighted_objective_of(problem, fast)
        assert got == pytest.approx(want)
        problem.start_time = fast
        compute_start_times_in_cycle(problem)
        problem.verify()
        assert all(fast[op] <= exact[op] for op in ops)

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 10_000), st.integers(1, 20))
    def test_fastpath_is_deterministic(self, seed, n):
        problem, _ = random_problem(random.Random(seed), n)
        try:
            first = solve_fastpath(problem)
        except ScheduleError:
            return
        assert solve_fastpath(problem) == first
