"""Scheduler tests: the Figure 7 ILP, chain breaking, engines, and the
Figure 6 end-to-end example."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import elaborate
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scheduling import (
    LongnailProblem,
    LongnailScheduler,
    OperatorType,
    ScheduleError,
    compute_chain_breakers,
    uniform_delay_model,
)
from repro.scheduling import ilp
from repro.scheduling.chaining import compute_start_times_in_cycle

ADDI = '''
import "RV32I.core_desc"
InstructionSet addi_only extends RV32I {
  instructions {
    ADDI {
      encoding: imm[11:0] :: rs1[4:0] :: 3'b000 :: rd[4:0] :: 7'b0010011;
      behavior: { X[rd] = (unsigned<32>) (X[rs1] + (signed) imm); }
    }
  }
}
'''


def addi_graph():
    isa = elaborate(ADDI)
    lowered = lower_isa(isa)
    return convert_to_lil(isa, lowered.instructions["ADDI"])


def find(graph, name):
    return next(op for op in graph.operations if op.name == name)


class TestFigure6:
    """Scheduling ADDI for the 5-stage VexRiscv at 3.5 ns (paper Figure 6)."""

    def schedule(self, engine="milp"):
        graph = addi_graph()
        scheduler = LongnailScheduler(
            core_datasheet("VexRiscv"), cycle_time_ns=3.5, engine=engine,
            delay_model=uniform_delay_model(),
        )
        return graph, scheduler.schedule(graph)

    def test_write_rd_pushed_to_stage_3(self):
        graph, result = self.schedule()
        write = find(graph, "lil.write_rd")
        assert result.stage_of(write) == 3

    def test_reads_at_native_stages(self):
        graph, result = self.schedule()
        assert result.stage_of(find(graph, "lil.instr_word")) == 1
        assert result.stage_of(find(graph, "lil.read_rs1")) == 2

    def test_chain_breakers_present(self):
        _, result = self.schedule()
        assert result.chain_breakers >= 1

    def test_solution_verifies(self):
        _, result = self.schedule()
        result.problem.verify()  # does not raise

    def test_asap_engine_agrees_on_feasibility(self):
        graph, result = self.schedule(engine="asap")
        assert result.engine == "asap"
        result.problem.verify()

    def test_milp_objective_not_worse_than_asap(self):
        _, milp_result = self.schedule(engine="milp")
        _, asap_result = self.schedule(engine="asap")
        assert milp_result.objective <= asap_result.objective


class TestEngines:
    def small_problem(self):
        problem = LongnailProblem()
        problem.add_operator_type(OperatorType("read", earliest=2, latest=4))
        problem.add_operator_type(OperatorType("logic"))
        problem.add_operator_type(
            OperatorType("write", earliest=2, latest=float("inf"))
        )
        problem.add_operation("r", "read")
        problem.add_operation("c", "logic")
        problem.add_operation("w", "write")
        problem.add_dependence("r", "c")
        problem.add_dependence("c", "w")
        return problem

    def test_asap_respects_earliest(self):
        problem = self.small_problem()
        start = ilp.solve_asap(problem)
        assert start["r"] == 2
        assert start["c"] >= 2 and start["w"] >= start["c"]

    def test_milp_matches_asap_when_lifetimes_trivial(self):
        problem = self.small_problem()
        asap = ilp.solve_asap(problem)
        problem2 = self.small_problem()
        exact = ilp.solve_milp(problem2)
        assert sum(exact.values()) <= sum(asap.values())

    def test_infeasible_window_detected(self):
        problem = LongnailProblem()
        problem.add_operator_type(OperatorType("late", latency=3,
                                               incoming_delay=0.0,
                                               outgoing_delay=0.0))
        problem.add_operator_type(OperatorType("narrow", earliest=0, latest=1))
        problem.add_operation("a", "late")
        problem.add_operation("b", "narrow")
        problem.add_dependence("a", "b")
        with pytest.raises(ScheduleError):
            ilp.solve_asap(problem)
        with pytest.raises(ScheduleError):
            ilp.solve_milp(problem)

    def test_unknown_engine(self):
        with pytest.raises(ScheduleError):
            ilp.solve(LongnailProblem(), engine="quantum")

    def test_empty_problem(self):
        problem = LongnailProblem()
        assert ilp.solve_milp(problem) == {}

    @settings(deadline=None, max_examples=25)
    @given(st.integers(1, 6), st.integers(0, 3))
    def test_milp_feasible_on_random_chains(self, length, earliest):
        problem = LongnailProblem()
        problem.add_operator_type(OperatorType("src", earliest=earliest,
                                               latest=earliest + 2))
        problem.add_operator_type(OperatorType("logic"))
        problem.add_operation("s", "src")
        previous = "s"
        for i in range(length):
            problem.add_operation(f"n{i}", "logic")
            problem.add_dependence(previous, f"n{i}")
            previous = f"n{i}"
        start = ilp.solve_milp(problem)
        problem.start_time = start
        compute_start_times_in_cycle(problem)
        problem.verify()


class TestChainBreaking:
    def chain_problem(self, n, delay, cycle_time):
        problem = LongnailProblem()
        problem.add_operator_type(OperatorType(
            "logic", incoming_delay=delay, outgoing_delay=delay
        ))
        previous = None
        for i in range(n):
            problem.add_operation(f"n{i}", "logic")
            if previous is not None:
                problem.add_dependence(previous, f"n{i}")
            previous = f"n{i}"
        return problem

    def test_no_breakers_when_chain_fits(self):
        problem = self.chain_problem(3, 1.0, 10.0)
        assert compute_chain_breakers(problem, 10.0) == []

    def test_breakers_split_long_chain(self):
        problem = self.chain_problem(10, 1.0, 2.5)
        breakers = compute_chain_breakers(problem, 2.5)
        # 2 ops fit per 2.5ns cycle; 10 ops need 5 cycles -> 4+ breakers.
        assert len(breakers) >= 4

    def test_operator_slower_than_cycle_rejected(self):
        problem = self.chain_problem(2, 3.0, 2.0)
        with pytest.raises(ScheduleError, match="exceeds"):
            compute_chain_breakers(problem, 2.0)

    def test_schedule_distributes_chain(self):
        problem = self.chain_problem(10, 1.0, 2.5)
        for src, dst in compute_chain_breakers(problem, 2.5):
            problem.add_dependence(src, dst, is_chain_breaker=True)
        ilp.solve(problem, "milp")
        compute_start_times_in_cycle(problem)
        problem.verify()
        spread = max(problem.start_time.values())
        assert spread >= 4


class TestAlwaysScheduling:
    ZOL = '''
    import "RV32I.core_desc"
    InstructionSet zol extends RV32I {
      architectural_state { register unsigned<32> START_PC, END_PC, COUNT; }
      always {
        zol {
          if (COUNT != 0 && END_PC == PC) {
            PC = START_PC;
            --COUNT;
          }
        }
      }
    }
    '''

    def test_always_all_in_stage_zero(self):
        isa = elaborate(self.ZOL)
        lowered = lower_isa(isa)
        graph = convert_to_lil(isa, lowered.always_blocks["zol"])
        scheduler = LongnailScheduler(core_datasheet("VexRiscv"),
                                      cycle_time_ns=10.0)
        result = scheduler.schedule(graph)
        for op in graph.operations:
            if op.name == "lil.sink":
                continue
            assert result.stage_of(op) == 0

    def test_always_too_slow_rejected(self):
        isa = elaborate(self.ZOL)
        lowered = lower_isa(isa)
        graph = convert_to_lil(isa, lowered.always_blocks["zol"])
        scheduler = LongnailScheduler(
            core_datasheet("VexRiscv"),
            cycle_time_ns=1.0,
            delay_model=uniform_delay_model(0.9),
        )
        with pytest.raises(ScheduleError, match="exceeds the cycle time"):
            scheduler.schedule(graph)
