"""Tests for the Problem/ChainingProblem/LongnailProblem hierarchy
(paper Table 2)."""

import pytest

from repro.scheduling.problem import (
    ChainingProblem,
    LongnailProblem,
    OperatorType,
    Problem,
    ScheduleError,
)


def two_op_problem(cls=Problem, latency=0):
    problem = cls()
    problem.add_operator_type(OperatorType("op", latency=latency,
                                           incoming_delay=1.0,
                                           outgoing_delay=1.0))
    problem.add_operation("a", "op")
    problem.add_operation("b", "op")
    problem.add_dependence("a", "b")
    return problem


class TestOperatorType:
    def test_negative_latency_rejected(self):
        with pytest.raises(ScheduleError):
            OperatorType("x", latency=-1)

    def test_zero_latency_needs_equal_delays(self):
        with pytest.raises(ScheduleError):
            OperatorType("x", latency=0, incoming_delay=1.0, outgoing_delay=2.0)

    def test_multicycle_delays_may_differ(self):
        OperatorType("x", latency=2, incoming_delay=1.0, outgoing_delay=2.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ScheduleError):
            OperatorType("x", earliest=3, latest=1)

    def test_defaults(self):
        lot = OperatorType("x")
        assert lot.earliest == 0
        assert lot.latest == float("inf")


class TestBaseProblem:
    def test_unknown_operator_type(self):
        problem = Problem()
        with pytest.raises(ScheduleError):
            problem.add_operation("a", "nope")

    def test_unregistered_dependence_endpoint(self):
        problem = Problem()
        problem.add_operator_type(OperatorType("op"))
        problem.add_operation("a", "op")
        problem.add_dependence("a", "ghost")
        with pytest.raises(ScheduleError):
            problem.check()

    def test_cycle_detected(self):
        problem = two_op_problem()
        problem.add_dependence("b", "a")
        with pytest.raises(ScheduleError, match="cycle"):
            problem.check()

    def test_precedence_verified(self):
        problem = two_op_problem(latency=1)
        problem.start_time = {"a": 0, "b": 0}
        with pytest.raises(ScheduleError, match="precedence"):
            problem.verify()
        problem.start_time = {"a": 0, "b": 1}
        problem.verify()

    def test_chain_breaker_adds_one(self):
        problem = two_op_problem(latency=0)
        problem.dependences[0] = type(problem.dependences[0])(
            "a", "b", is_chain_breaker=True
        )
        problem.start_time = {"a": 0, "b": 0}
        with pytest.raises(ScheduleError):
            problem.verify()
        problem.start_time = {"a": 0, "b": 1}
        problem.verify()

    def test_conflicting_operator_type_redefinition(self):
        problem = Problem()
        problem.add_operator_type(OperatorType("op", latency=1,
                                               incoming_delay=1.0,
                                               outgoing_delay=1.0))
        with pytest.raises(ScheduleError):
            problem.add_operator_type(OperatorType("op", latency=2))


class TestChainingProblem:
    def test_same_cycle_chaining_violation(self):
        problem = two_op_problem(ChainingProblem)
        problem.start_time = {"a": 0, "b": 0}
        problem.start_time_in_cycle = {"a": 0.0, "b": 0.5}
        with pytest.raises(ScheduleError, match="chaining"):
            problem.verify()

    def test_same_cycle_chaining_ok(self):
        problem = two_op_problem(ChainingProblem)
        problem.start_time = {"a": 0, "b": 0}
        problem.start_time_in_cycle = {"a": 0.0, "b": 1.0}
        problem.verify()

    def test_cycle_boundary_outgoing_delay(self):
        problem = ChainingProblem()
        problem.add_operator_type(OperatorType("slow", latency=1,
                                               incoming_delay=0.5,
                                               outgoing_delay=2.0))
        problem.add_operator_type(OperatorType("fast", incoming_delay=0.5,
                                               outgoing_delay=0.5))
        problem.add_operation("a", "slow")
        problem.add_operation("b", "fast")
        problem.add_dependence("a", "b")
        problem.start_time = {"a": 0, "b": 1}
        problem.start_time_in_cycle = {"a": 0.0, "b": 0.0}
        with pytest.raises(ScheduleError, match="boundary"):
            problem.verify()
        problem.start_time_in_cycle = {"a": 0.0, "b": 2.0}
        problem.verify()


class TestLongnailProblem:
    def test_interface_window_enforced(self):
        """The Table 2 solution constraint:
        earliest <= startTime <= latest."""
        problem = LongnailProblem()
        problem.add_operator_type(OperatorType("iface", earliest=2, latest=4))
        problem.add_operation("read", "iface")
        problem.start_time = {"read": 1}
        problem.start_time_in_cycle = {"read": 0.0}
        with pytest.raises(ScheduleError, match="interface"):
            problem.verify()
        problem.start_time = {"read": 5}
        with pytest.raises(ScheduleError, match="interface"):
            problem.verify()
        problem.start_time = {"read": 3}
        problem.verify()

    def test_makespan(self):
        problem = LongnailProblem()
        problem.add_operator_type(OperatorType("op", latency=2,
                                               incoming_delay=0.0,
                                               outgoing_delay=0.0))
        problem.add_operation("a", "op")
        problem.start_time = {"a": 3}
        assert problem.makespan() == 5
