"""Schedule-cache and decomposition tests: fingerprint canonicalization,
LRU accounting, component solving, and the build_problem satellites
(interface incoming delays, linear read->write serialization)."""

import pytest

from repro.frontend import elaborate
from repro.isaxes import ALL_ISAXES
from repro.lowering import convert_to_lil, lower_isa
from repro.scaiev import core_datasheet
from repro.scheduling import (
    LongnailProblem,
    OperatorType,
    ScheduleCache,
    build_problem,
    decompose,
    global_schedule_cache,
    schedule_fingerprint,
    solve_problem,
)
from repro.scheduling import ilp


class FakeOp:
    def __init__(self, tag, width=32):
        self.tag = tag
        self.results = [type("Res", (), {"width": width})()]

    def __repr__(self):
        return f"op{self.tag}"


def chain_problem(tags, latency=0, breaker_after=None, delay=1.0):
    problem = LongnailProblem()
    lot = OperatorType("logic", latency=latency,
                       incoming_delay=0.0 if latency else delay,
                       outgoing_delay=delay)
    problem.add_operator_type(lot)
    ops = [FakeOp(tag) for tag in tags]
    for op in ops:
        problem.add_operation(op, "logic")
    for prev, cur in zip(ops, ops[1:]):
        problem.add_dependence(
            prev, cur, is_chain_breaker=prev.tag == breaker_after
        )
    return problem, ops


class TestFingerprint:
    def test_identical_problems_share_a_fingerprint(self):
        first, _ = chain_problem("abc")
        second, _ = chain_problem("xyz")  # different op identities
        assert schedule_fingerprint(first) == schedule_fingerprint(second)

    def test_chain_breaker_changes_fingerprint(self):
        plain, _ = chain_problem("abc")
        broken, _ = chain_problem("abc", breaker_after="a")
        assert schedule_fingerprint(plain) != schedule_fingerprint(broken)

    def test_propagation_delay_does_not_change_fingerprint(self):
        """Two cycle-time candidates whose chain-breaker sets coincide map
        to the same entry — the whole point of the cross-sweep cache."""
        fast, _ = chain_problem("abc", delay=0.5)
        slow, _ = chain_problem("abc", delay=2.0)
        assert schedule_fingerprint(fast) == schedule_fingerprint(slow)

    def test_latency_and_width_change_fingerprint(self):
        base, _ = chain_problem("abc")
        latent, _ = chain_problem("abc", latency=1)
        assert schedule_fingerprint(base) != schedule_fingerprint(latent)
        wide = LongnailProblem()
        wide.add_operator_type(OperatorType("logic", incoming_delay=1.0,
                                            outgoing_delay=1.0))
        ops = [FakeOp(t, width=64) for t in "abc"]
        for op in ops:
            wide.add_operation(op, "logic")
        for prev, cur in zip(ops, ops[1:]):
            wide.add_dependence(prev, cur)
        assert schedule_fingerprint(base) != schedule_fingerprint(wide)


class TestScheduleCache:
    def test_hit_miss_accounting(self):
        cache = ScheduleCache()
        assert cache.get("k") is None
        cache.put("k", [0, 1, 2])
        assert cache.get("k") == (0, 1, 2)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["evictions"] == 0

    def test_lru_eviction(self):
        cache = ScheduleCache(max_entries=2)
        cache.put("a", [0])
        cache.put("b", [1])
        assert cache.get("a") == (0,)   # refresh "a": "b" is now oldest
        cache.put("c", [2])
        assert cache.get("b") is None
        assert cache.get("a") == (0,)
        assert cache.evictions == 1

    def test_clear_resets_counters(self):
        cache = ScheduleCache()
        cache.put("a", [0])
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ScheduleCache(max_entries=0)

    def test_global_cache_disabled_by_env(self, monkeypatch):
        problem, _ = chain_problem("abc")
        monkeypatch.setenv("REPRO_SCHED_CACHE", "0")
        before = global_schedule_cache().stats()
        solve_problem(problem, "auto")
        assert global_schedule_cache().stats() == before


class TestDecompose:
    def test_connected_problem_is_returned_unchanged(self):
        problem, _ = chain_problem("abc")
        parts = decompose(problem)
        assert parts == [problem]

    def test_empty_problem(self):
        assert decompose(LongnailProblem()) == []

    def test_disconnected_components_split_and_merge(self):
        problem = LongnailProblem()
        lot = OperatorType("logic", incoming_delay=1.0, outgoing_delay=1.0)
        problem.add_operator_type(lot)
        chains = [[FakeOp(f"{c}{i}") for i in range(3)] for c in "pq"]
        for chain in chains:
            for op in chain:
                problem.add_operation(op, "logic")
            for prev, cur in zip(chain, chain[1:]):
                problem.add_dependence(prev, cur)
        parts = decompose(problem)
        assert len(parts) == 2
        assert sorted(len(p.operations) for p in parts) == [3, 3]
        stats = solve_problem(problem, "auto", cache=False)
        assert stats.components == 2
        assert len(problem.start_time) == 6

    def test_component_solution_matches_whole_problem_milp(self):
        problem = LongnailProblem()
        lot = OperatorType("logic", incoming_delay=1.0, outgoing_delay=1.0)
        problem.add_operator_type(lot)
        chains = [[FakeOp(f"{c}{i}") for i in range(4)] for c in "pqr"]
        for chain in chains:
            for op in chain:
                problem.add_operation(op, "logic")
            for prev, cur in zip(chain, chain[1:]):
                problem.add_dependence(prev, cur)
        solve_problem(problem, "auto", cache=False)
        decomposed = ilp.weighted_objective_value(problem)
        whole = ilp.weighted_objective_of(problem, ilp.solve_milp(problem))
        assert decomposed == pytest.approx(whole)


class TestBuildProblemSatellites:
    def memory_graph(self, reads=2, writes=2):
        """A raw lil graph with several independent loads followed by
        several stores (the frontend caps each sub-interface at one use
        per instruction, so the many-access case is built directly)."""
        from repro.ir.core import Graph, Operation

        graph = Graph("memtest")
        const = graph.append(Operation("comb.constant", [], [(32, False)],
                                       {"value": 0}))
        addr = const.results[0]
        read_ops = [
            graph.append(Operation("lil.read_mem", [addr], [(32, None)],
                                   {"size_bits": 32}))
            for _ in range(reads)
        ]
        write_ops = [
            graph.append(Operation("lil.write_mem", [addr, addr], [],
                                   {"size_bits": 32}))
            for _ in range(writes)
        ]
        return graph, read_ops, write_ops

    def test_reads_serialize_before_first_write_only(self):
        """Satellite: read->write ordering is the linear chain (each read
        before the first subsequent write, writes chained), not all pairs.
        The stores take no read results, so every read->write dependence
        here is a serialization edge."""
        graph, reads, writes = self.memory_graph(reads=3, writes=3)
        problem = build_problem(graph, core_datasheet("VexRiscv"))
        mem_deps = {
            (dep.source, dep.target) for dep in problem.dependences
            if dep.source in reads + writes and dep.target in writes
        }
        expected = {(read, writes[0]) for read in reads}
        expected |= {(writes[i], writes[i + 1]) for i in range(len(writes) - 1)}
        assert mem_deps == expected

    def test_edge_count_is_linear_not_quadratic(self):
        graph, reads, writes = self.memory_graph(reads=6, writes=6)
        problem = build_problem(graph, core_datasheet("VexRiscv"))
        serial = sum(
            1 for dep in problem.dependences
            if dep.source in reads + writes and dep.target in writes
        )
        assert serial == len(reads) + len(writes) - 1   # not reads * writes

    def test_multi_cycle_interface_has_no_incoming_delay(self):
        """Satellite: a latency > 0 sub-interface latches its request at
        the stage boundary — delay is charged on the result side only."""
        graph, reads, writes = self.memory_graph()
        problem = build_problem(graph, core_datasheet("VexRiscv"))
        saw_multi_cycle = saw_comb = False
        for op in graph.operations:
            lot = problem.linked_operator_type(op)
            if lot.latency > 0:
                saw_multi_cycle = True
                assert lot.incoming_delay == 0.0
                assert lot.outgoing_delay > 0.0
            elif lot.name.startswith("iface_"):
                saw_comb = True
                assert lot.incoming_delay == lot.outgoing_delay
        assert saw_multi_cycle or saw_comb

    def test_autoinc_multi_cycle_load_pins_incoming_delay(self):
        """Regression for the one-armed ternary: the multi-cycle RdMem
        operator type of a real ISAX must charge zero incoming delay."""
        isa = elaborate(ALL_ISAXES["autoinc"])
        lowered = lower_isa(isa)
        graph = convert_to_lil(isa, lowered.instructions["lw_ai"])
        problem = build_problem(graph, core_datasheet("VexRiscv"))
        multi_cycle = [
            problem.linked_operator_type(op) for op in graph.operations
            if op.name != "lil.sink"
            and problem.linked_operator_type(op).latency > 0
        ]
        assert multi_cycle, "lw_ai should use a multi-cycle sub-interface"
        for lot in multi_cycle:
            assert lot.incoming_delay == 0.0
            assert lot.outgoing_delay > 0.0

    def test_memory_schedule_stays_feasible(self):
        from repro.scheduling import LongnailScheduler

        graph, _, writes = self.memory_graph()
        scheduler = LongnailScheduler(core_datasheet("VexRiscv"))
        result = scheduler.schedule(graph)
        result.problem.verify()
        stages = [result.stage_of(op) for op in writes]
        assert stages == sorted(stages)
