"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main
from repro.isaxes import ZOL


@pytest.fixture()
def zol_file(tmp_path):
    path = tmp_path / "zol.core_desc"
    path.write_text(ZOL, encoding="utf-8")
    return path


class TestCompile:
    def test_compile_writes_artifacts(self, zol_file, tmp_path, capsys):
        rc = main(["compile", str(zol_file), "--core", "VexRiscv",
                   "-o", str(tmp_path / "build")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compiled for VexRiscv" in out
        sv = (tmp_path / "build" / "zol.sv").read_text()
        cfg = (tmp_path / "build" / "zol.scaiev.yaml").read_text()
        assert "module setup_zol(" in sv
        assert "always: zol" in cfg

    def test_compile_with_cycle_time(self, zol_file, tmp_path, capsys):
        rc = main(["compile", str(zol_file), "--cycle-time", "5.0",
                   "-o", str(tmp_path)])
        assert rc == 0

    def test_compile_asap_engine(self, zol_file, tmp_path):
        assert main(["compile", str(zol_file), "--engine", "asap",
                     "-o", str(tmp_path)]) == 0

    def test_missing_file_is_error(self, tmp_path, capsys):
        rc = main(["compile", str(tmp_path / "nope.core_desc")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_coredsl_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.core_desc"
        path.write_text("InstructionSet Broken {", encoding="utf-8")
        rc = main(["compile", str(path), "-o", str(tmp_path)])
        assert rc == 1


class TestInfoCommands:
    def test_datasheet(self, capsys):
        assert main(["datasheet", "ORCA"]) == 0
        out = capsys.readouterr().out
        assert "core: ORCA" in out
        assert "forwarding_from_last_stage: true" in out

    def test_isaxes_list(self, capsys):
        assert main(["isaxes"]) == 0
        out = capsys.readouterr().out
        for name in ("autoinc", "dotprod", "zol"):
            assert name in out

    def test_isaxes_source(self, capsys):
        assert main(["isaxes", "dotprod"]) == 0
        assert "InstructionSet X_DOTP" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "RdCustReg" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "sqrt_decoupled" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_program(self, tmp_path, capsys):
        prog = tmp_path / "p.s"
        prog.write_text("li t0, 21\nadd t1, t0, t0\necall\n")
        rc = main(["simulate", str(prog), "--core", "VexRiscv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "x6   = 0x0000002a" in out

    def test_simulate_with_isax(self, tmp_path, capsys):
        prog = tmp_path / "p.s"
        prog.write_text(
            "li t0, 0x01010101\nli t1, 0x03030303\ndotp t2, t0, t1\necall\n"
        )
        rc = main(["simulate", str(prog), "--isax", "dotprod"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "x7   = 0x0000000c" in out  # 4 lanes of 1*3


class TestLint:
    WARNY = '''
import "RV32I.core_desc"
InstructionSet X_WARNY extends RV32I {
  architectural_state {
    register unsigned<32> GHOST;
  }
  instructions {
    warny {
        encoding: 7'd0 :: rs2[4:0] :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = X[rs1] ^ X[rs2]; }
    }
  }
}
'''

    @pytest.fixture()
    def warny_file(self, tmp_path):
        path = tmp_path / "warny.core_desc"
        path.write_text(self.WARNY, encoding="utf-8")
        return path

    def test_lint_reports_warnings_exit_zero(self, warny_file, capsys):
        rc = main(["lint", str(warny_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[LN005]" in out
        assert "1 warning" in out

    def test_werror_fails_on_warnings(self, warny_file, capsys):
        assert main(["lint", str(warny_file), "--werror"]) == 1

    NOTEY = '''
import "RV32I.core_desc"
InstructionSet X_NOTEY extends RV32I {
  instructions {
    notey {
        encoding: 7'd0 :: imm[4:1] :: 1'b0 :: rs1[4:0] :: 3'd1 :: rd[4:0]
                  :: 7'b0001011;
        behavior: { X[rd] = (unsigned<32>)(X[rs1] + imm); }
    }
  }
}
'''

    def test_note_findings_never_gate_werror(self, tmp_path, capsys):
        # LN015 carries NOTE severity: reported, but --werror stays green.
        path = tmp_path / "notey.core_desc"
        path.write_text(self.NOTEY, encoding="utf-8")
        rc = main(["lint", str(path), "--werror"])
        out = capsys.readouterr().out
        assert "[LN015]" in out
        assert rc == 0

    def test_disable_silences_rule(self, warny_file, capsys):
        rc = main(["lint", str(warny_file), "--disable", "LN005",
                   "--werror"])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_unknown_rule_code(self, warny_file, capsys):
        rc = main(["lint", str(warny_file), "--enable", "LN999"])
        assert rc == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_json_format(self, warny_file, capsys):
        import json as json_mod
        assert main(["lint", str(warny_file), "--format", "json"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["counts"]["warning"] == 1
        assert doc["diagnostics"][0]["code"] == "LN005"

    def test_sarif_format(self, warny_file, capsys):
        import json as json_mod
        assert main(["lint", str(warny_file), "--format", "sarif"]) == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "LN005"

    def test_benchmark_isaxes_clean_with_ir_verify(self, capsys):
        rc = main(["lint", "--all-isaxes", "--core", "PicoRV32",
                   "--werror"])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_nothing_to_lint(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_cross_isax_overlap_detected(self, tmp_path, capsys):
        a = tmp_path / "a.core_desc"
        b = tmp_path / "b.core_desc"
        a.write_text(self.WARNY.replace("X_WARNY", "X_A")
                     .replace("warny {", "ia {"), encoding="utf-8")
        b.write_text(self.WARNY.replace("X_WARNY", "X_B")
                     .replace("warny {", "ib {"), encoding="utf-8")
        rc = main(["lint", str(a), str(b)])
        assert rc == 0   # LN011 is a warning
        assert "[LN011]" in capsys.readouterr().out
