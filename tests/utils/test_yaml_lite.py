"""Round-trip and conformance tests for the YAML subset used by the
Longnail <-> SCAIE-V metadata exchange (paper Section 4.6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import yaml_lite


class TestScalars:
    @pytest.mark.parametrize(
        "value", [0, 1, -5, 3.5, True, False, None, "RdPC", "hello world"]
    )
    def test_roundtrip_scalar(self, value):
        assert yaml_lite.loads(yaml_lite.dumps(value)) == value

    def test_string_with_colon_quoted(self):
        text = yaml_lite.dumps({"k": "a: b"})
        assert yaml_lite.loads(text) == {"k": "a: b"}

    def test_infinity(self):
        assert yaml_lite.loads(yaml_lite.dumps(float("inf"))) == float("inf")

    def test_keywordish_strings(self):
        for s in ("true", "false", "null"):
            assert yaml_lite.loads(yaml_lite.dumps({"k": s})) == {"k": s}


class TestStructures:
    def test_flat_mapping(self):
        data = {"interface": "RdPC", "stage": 1}
        assert yaml_lite.loads(yaml_lite.dumps(data)) == data

    def test_nested_mapping(self):
        data = {"core": {"name": "VexRiscv", "stages": 5}, "version": 2}
        assert yaml_lite.loads(yaml_lite.dumps(data)) == data

    def test_list_of_flat_dicts(self):
        data = {
            "schedule": [
                {"interface": "RdPC", "stage": 1},
                {"interface": "WrCOUNT.data", "stage": 1, "has_valid": 1},
            ]
        }
        assert yaml_lite.loads(yaml_lite.dumps(data)) == data

    def test_deeply_nested(self):
        data = {
            "isax": {
                "instructions": [
                    {"name": "setup_zol", "mask": "101000000001011"},
                ],
                "registers": [{"register": "COUNT", "width": 32, "elements": 1}],
            }
        }
        assert yaml_lite.loads(yaml_lite.dumps(data)) == data

    def test_empty_containers(self):
        assert yaml_lite.loads(yaml_lite.dumps({"a": [], "b": {}})) == {
            "a": [],
            "b": {},
        }

    def test_list_of_scalars(self):
        data = {"stages": [0, 1, 2, 3, 4]}
        assert yaml_lite.loads(yaml_lite.dumps(data)) == data

    def test_figure8_style_document(self):
        """The ZOL configuration excerpt structure from paper Figure 8."""
        doc = {
            "registers": [{"register": "COUNT", "width": 32, "elements": 1}],
            "functionalities": [
                {
                    "instruction": "setup_zol",
                    "mask": "-----------------101000000001011",
                    "schedule": [
                        {"interface": "RdPC", "stage": 1},
                        {"interface": "WrCOUNT.addr", "stage": 1},
                        {"interface": "WrCOUNT.data", "stage": 1, "has_valid": 1},
                    ],
                },
                {
                    "always": "zol",
                    "schedule": [
                        {"interface": "RdPC", "stage": 0},
                        {"interface": "WrPC", "stage": 0, "has_valid": 1},
                    ],
                },
            ],
        }
        assert yaml_lite.loads(yaml_lite.dumps(doc)) == doc

    def test_comments_are_ignored(self):
        text = "a: 1  # trailing comment\n# full-line comment\nb: 2\n"
        assert yaml_lite.loads(text) == {"a": 1, "b": 2}

    def test_parse_hand_written_flow(self):
        assert yaml_lite.loads("x: {a: 1, b: [1, 2]}") == {"x": {"a": 1, "b": [1, 2]}}


_scalars = st.one_of(
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                               whitelist_characters="_-. "),
        max_size=12,
    ),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Lu", "Ll")),
                min_size=1, max_size=8,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)


@given(_values)
def test_roundtrip_property(value):
    assert yaml_lite.loads(yaml_lite.dumps(value)) == value
