"""Tests for the structured diagnostics layer."""

import json

import pytest

from repro.utils.diagnostics import (
    CoreDSLError,
    Diagnostic,
    DiagnosticEngine,
    Note,
    Severity,
    SourceLocation,
    count_by_severity,
    render_json,
    render_sarif,
    render_text,
    sort_diagnostics,
)


def diag(code="LN001", severity=Severity.WARNING, message="msg",
         loc=None, **kwargs):
    return Diagnostic(code, severity, message, loc, **kwargs)


class TestSeverity:
    def test_rank_orders_most_severe_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.NOTE.rank

    def test_str(self):
        assert str(Severity.WARNING) == "warning"


class TestDiagnostic:
    def test_render_with_location_and_code(self):
        d = diag(loc=SourceLocation("a.core_desc", 3, 7))
        assert d.render() == "a.core_desc:3:7: warning: msg [LN001]"

    def test_render_without_location(self):
        assert diag(loc=None).render() == "warning: msg [LN001]"

    def test_render_includes_notes_and_hint(self):
        d = diag(fix_hint="do the thing")
        d.with_note("declared here", SourceLocation("a", 1, 2))
        text = d.render()
        assert "  a:1:2: note: declared here" in text
        assert "  hint: do the thing" in text

    def test_is_error(self):
        assert diag(severity=Severity.ERROR).is_error
        assert not diag(severity=Severity.WARNING).is_error

    def test_to_dict_round_trips_via_json(self):
        d = diag(loc=SourceLocation("a", 2, 4), rule="some-rule",
                 fix_hint="h")
        doc = json.loads(json.dumps(d.to_dict()))
        assert doc["code"] == "LN001"
        assert doc["severity"] == "warning"
        assert doc["rule"] == "some-rule"
        assert doc["location"] == {"file": "a", "line": 2, "column": 4}
        assert doc["fix_hint"] == "h"


class TestSortingAndCounting:
    def test_sort_by_file_then_line_then_severity(self):
        a = diag(loc=SourceLocation("b", 1, 1))
        b = diag(loc=SourceLocation("a", 9, 1))
        c = diag(loc=SourceLocation("a", 2, 1), severity=Severity.ERROR)
        d = diag(loc=SourceLocation("a", 2, 1), severity=Severity.WARNING)
        assert sort_diagnostics([a, b, d, c]) == [c, d, b, a]

    def test_count_by_severity(self):
        counts = count_by_severity([
            diag(severity=Severity.ERROR),
            diag(severity=Severity.WARNING),
            diag(severity=Severity.WARNING),
        ])
        assert counts == {"error": 1, "warning": 2, "note": 0}


class TestRenderers:
    def test_text_has_summary_line(self):
        text = render_text([diag(), diag(severity=Severity.ERROR)])
        assert text.splitlines()[-1] == "1 error, 1 warning"

    def test_text_empty(self):
        assert render_text([]) == "no findings"

    def test_json_renders_counts_and_records(self):
        doc = json.loads(render_json([diag()]))
        assert doc["counts"]["warning"] == 1
        assert doc["diagnostics"][0]["code"] == "LN001"

    def test_sarif_structure(self):
        doc = json.loads(render_sarif(
            [diag(loc=SourceLocation("x.core_desc", 5, 3), rule="r")]))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["rules"][0]["id"] == "LN001"
        result = run["results"][0]
        assert result["ruleId"] == "LN001"
        assert result["level"] == "warning"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 5, "startColumn": 3}


class TestDiagnosticEngine:
    def test_default_mode_raises_on_error(self):
        engine = DiagnosticEngine()
        with pytest.raises(CoreDSLError, match="boom"):
            engine.error("boom")

    def test_warn_and_note_never_raise(self):
        engine = DiagnosticEngine()
        engine.warn("w")
        engine.note("n")
        assert len(engine.diagnostics) == 2
        assert not engine.has_errors

    def test_collect_mode_accumulates_errors(self):
        engine = DiagnosticEngine(collect_errors=True)
        engine.error("one")
        engine.error("two")
        assert engine.error_count == 2
        assert engine.has_errors
        assert [d.message for d in engine.errors] == ["one", "two"]

    def test_collect_mode_caps_at_max_errors(self):
        engine = DiagnosticEngine(collect_errors=True, max_errors=3)
        engine.error("1")
        engine.error("2")
        with pytest.raises(CoreDSLError, match="too many errors"):
            engine.error("3")
        assert engine.error_count == 3

    def test_max_errors_must_be_positive(self):
        with pytest.raises(ValueError):
            DiagnosticEngine(collect_errors=True, max_errors=0)

    def test_backcompat_string_views(self):
        engine = DiagnosticEngine()
        engine.warn("careful", SourceLocation("f", 1, 1))
        assert engine.warnings == ["f:1:1: warning: careful"]


class TestNote:
    def test_render(self):
        assert Note("hi", SourceLocation("f", 2, 3)).render() \
            == "f:2:3: note: hi"
        assert Note("hi").render() == "note: hi"
