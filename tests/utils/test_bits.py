"""Unit and property tests for two's-complement helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bits


class TestMaskTruncate:
    def test_mask_zero(self):
        assert bits.mask(0) == 0

    def test_mask_values(self):
        assert bits.mask(1) == 1
        assert bits.mask(8) == 0xFF
        assert bits.mask(32) == 0xFFFFFFFF

    def test_mask_negative_raises(self):
        with pytest.raises(ValueError):
            bits.mask(-1)

    def test_truncate(self):
        assert bits.truncate(0x1FF, 8) == 0xFF
        assert bits.truncate(-1, 4) == 0xF


class TestSignedness:
    def test_to_signed_positive(self):
        assert bits.to_signed(5, 8) == 5

    def test_to_signed_negative(self):
        assert bits.to_signed(0xFF, 8) == -1
        assert bits.to_signed(0x80, 8) == -128

    def test_to_unsigned(self):
        assert bits.to_unsigned(-1, 8) == 0xFF
        assert bits.to_unsigned(-128, 8) == 0x80

    def test_to_signed_width_zero_raises(self):
        with pytest.raises(ValueError):
            bits.to_signed(0, 0)

    def test_sign_extend(self):
        assert bits.sign_extend(0x8, 4, 8) == 0xF8
        assert bits.sign_extend(0x7, 4, 8) == 0x07

    def test_sign_extend_narrowing_raises(self):
        with pytest.raises(ValueError):
            bits.sign_extend(1, 8, 4)

    @given(st.integers(min_value=1, max_value=64), st.integers())
    def test_roundtrip_signed_unsigned(self, width, value):
        raw = bits.to_unsigned(value, width)
        assert bits.to_unsigned(bits.to_signed(raw, width), width) == raw

    @given(st.integers(min_value=1, max_value=63))
    def test_to_signed_range(self, width):
        for raw in (0, 1, (1 << width) - 1, 1 << (width - 1)):
            signed = bits.to_signed(raw, width)
            assert -(1 << (width - 1)) <= signed < (1 << (width - 1))


class TestBitLengths:
    def test_unsigned_lengths(self):
        assert bits.bit_length_unsigned(0) == 1
        assert bits.bit_length_unsigned(1) == 1
        assert bits.bit_length_unsigned(42) == 6
        assert bits.bit_length_unsigned(0xCAFE) == 16

    def test_unsigned_negative_raises(self):
        with pytest.raises(ValueError):
            bits.bit_length_unsigned(-1)

    def test_signed_lengths(self):
        assert bits.bit_length_signed(0) == 1
        assert bits.bit_length_signed(-1) == 1
        assert bits.bit_length_signed(127) == 8
        assert bits.bit_length_signed(-128) == 8
        assert bits.bit_length_signed(128) == 9

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_signed_length_is_minimal(self, value):
        width = bits.bit_length_signed(value)
        assert -(1 << (width - 1)) <= value < (1 << (width - 1))
        if width > 1:
            smaller = width - 1
            fits = -(1 << (smaller - 1)) <= value < (1 << (smaller - 1))
            assert not fits


class TestExtractConcat:
    def test_extract(self):
        assert bits.extract_bits(0b101100, 3, 2) == 0b11
        assert bits.extract_bits(0xDEADBEEF, 31, 16) == 0xDEAD

    def test_extract_single(self):
        assert bits.extract_bits(0b100, 2, 2) == 1

    def test_extract_invalid_range(self):
        with pytest.raises(ValueError):
            bits.extract_bits(0, 1, 2)

    def test_replicate(self):
        assert bits.replicate_bits(1, 1, 4) == 0b1111
        assert bits.replicate_bits(0b10, 2, 3) == 0b101010

    def test_concat(self):
        assert bits.concat_bits((0b11, 2), (0b00, 2)) == 0b1100
        assert bits.concat_bits((1, 1), (0, 1), (1, 1)) == 0b101

    @given(
        st.integers(min_value=0, max_value=2 ** 16 - 1),
        st.integers(min_value=0, max_value=2 ** 16 - 1),
    )
    def test_concat_then_extract(self, hi, lo):
        word = bits.concat_bits((hi, 16), (lo, 16))
        assert bits.extract_bits(word, 31, 16) == hi
        assert bits.extract_bits(word, 15, 0) == lo
